//! # sle — the stable leader-election service, whole
//!
//! The façade crate of the workspace reproducing Schiper & Toueg, *"A
//! Robust and Lightweight Stable Leader Election Service for Dynamic
//! Systems"* (DSN 2008): every crate re-exported under one roof, so an
//! application can depend on `sle` alone. See the README's Architecture
//! section for the crate-by-crate map onto the paper's services, and
//! `docs/WIRE.md` for the UDP datagram format spoken by [`udp`]/[`wire`].
//!
//! ```
//! use sle::core::{GroupId, JoinConfig};
//!
//! // The paper's per-join parameters: candidacy, notification style, QoS.
//! let join = JoinConfig::candidate();
//! assert!(join.candidate);
//! assert_eq!(GroupId::from(7).to_string(), "g7");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use sle_adaptive as adaptive;
pub use sle_chaos as chaos;
pub use sle_core as core;
pub use sle_election as election;
pub use sle_fd as fd;
pub use sle_harness as harness;
pub use sle_net as net;
pub use sle_sim as sim;
pub use sle_udp as udp;
pub use sle_wire as wire;
