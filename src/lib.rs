pub use sle_core as core;
pub use sle_election as election;
pub use sle_fd as fd;
pub use sle_harness as harness;
pub use sle_net as net;
pub use sle_sim as sim;
