//! End-to-end over real sockets: the full service stack (wire codec + UDP
//! transport + failure detector + elector + service) running as three
//! real-time nodes on 127.0.0.1, exactly the daemon-per-workstation
//! deployment of the paper, but on one machine.

use std::time::{Duration, Instant};

use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_sim::NodeId;
use sle_udp::bind_loopback_mesh;

const GROUP: GroupId = GroupId(1);

#[test]
fn three_udp_nodes_elect_and_survive_a_leader_crash() {
    let n = 3u32;
    let endpoints = bind_loopback_mesh::<ServiceMessage>(n as usize).expect("bind loopback");
    let stats = endpoints[0].stats_handle();
    let cluster = Cluster::start_with_endpoints(endpoints, ElectorKind::OmegaLc);

    for i in 0..n {
        cluster
            .handle(NodeId(i))
            .unwrap()
            .join(GROUP, JoinConfig::candidate())
            .expect("join over UDP");
    }

    // Initial, stable election over real sockets.
    let leader = cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .expect("initial election");

    // The leadership must be *stable*: with no crash, the same leader must
    // still hold office a moment later.
    std::thread::sleep(Duration::from_secs(1));
    assert_eq!(
        cluster.agreed_leader(GROUP, None),
        Some(leader),
        "leadership changed without any failure"
    );

    // Kill the leader and require a re-election within the configured QoS
    // bound. The paper-default FD budget is T_D^U = 1 s of detection; the
    // service adds its self-election grace and the survivors must then
    // converge. A 10 s wall-clock ceiling covers that with generous
    // scheduling slack — the in-simulator figures put recovery around the
    // detection bound itself.
    assert_eq!(
        QosSpec::paper_default().detection_time(),
        sle_sim::time::SimDuration::from_secs(1)
    );
    cluster.crash(leader.node);
    let crashed_at = Instant::now();
    let new_leader = cluster
        .await_agreement(GROUP, Some(leader.node), Duration::from_secs(10))
        .expect("re-election within the detection + grace bound");
    assert_ne!(new_leader.node, leader.node, "old leader was not demoted");

    // Belt and braces: the bound actually held, with room to spare.
    assert!(
        crashed_at.elapsed() <= Duration::from_secs(10),
        "re-election exceeded the configured bound"
    );

    cluster.shutdown();

    // Real datagrams flowed, and the codec rejected none of our own
    // traffic (every peer speaks the same wire version, and every message
    // the protocol emits fits one datagram).
    let snapshot = stats.snapshot();
    assert!(snapshot.delivered > 0, "no datagrams were delivered");
    assert_eq!(snapshot.dropped_malformed, 0);
    assert_eq!(snapshot.dropped_oversized, 0);
    assert_eq!(snapshot.dropped_misaddressed, 0);
    assert_eq!(snapshot.send_unencodable, 0);
}

#[test]
fn udp_cluster_matches_mesh_cluster_behaviour() {
    // The same protocol over the two transports must produce the same
    // outcome: each cluster reaches agreement on one leader, and that
    // leadership is stable (no spurious demotion while nothing fails).
    let endpoints = bind_loopback_mesh::<ServiceMessage>(2).expect("bind loopback");
    let over_udp = Cluster::start_with_endpoints(endpoints, ElectorKind::OmegaL);
    let over_mesh = Cluster::start(2, ElectorKind::OmegaL);

    for cluster in [&over_udp, &over_mesh] {
        for i in 0..2 {
            cluster
                .handle(NodeId(i))
                .unwrap()
                .join(GROUP, JoinConfig::candidate())
                .expect("join");
        }
    }
    let udp_leader = over_udp
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .expect("no leader over UDP");
    let mesh_leader = over_mesh
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .expect("no leader over the in-memory mesh");

    // Both leaderships hold under continued observation.
    std::thread::sleep(Duration::from_millis(500));
    assert_eq!(
        over_udp.agreed_leader(GROUP, None),
        Some(udp_leader),
        "UDP leadership was not stable"
    );
    assert_eq!(
        over_mesh.agreed_leader(GROUP, None),
        Some(mesh_leader),
        "mesh leadership was not stable"
    );

    over_udp.shutdown();
    over_mesh.shutdown();
}
