//! Cross-transport conformance: the in-process mesh and real UDP loopback
//! must execute the identical protocol state machine.
//!
//! The same deterministic 5-node scenario — staggered joins so the rank
//! order is unambiguous, a stable election, a leader crash, a re-election —
//! runs once over `sle-net`'s in-memory mesh and once over `sle-udp`
//! sockets on 127.0.0.1. The two runs must produce **identical elected
//! leaders** at every checkpoint, and their leader-view traces must earn
//! **equivalent verdicts from the chaos invariant checker** (both clean:
//! eventual agreement, stability, mistake budget, single leadership).
//!
//! This is the regression net under the scale-out refactors: a timer-wheel,
//! fan-out-batching or shared-monitor change that altered election
//! behaviour on either transport would break the leader equalities or hand
//! one of the traces a violation the other does not have.

use std::time::{Duration, Instant};

use sle_chaos::{check_trace, InvariantSpec, TraceEvent, TraceEventKind, Violation};
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, GroupId, JoinConfig, ProcessId, ServiceEvent};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::{InMemoryMesh, MessageEndpoint};
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::NodeId;
use sle_udp::bind_loopback_mesh;

const NODES: usize = 5;
const GROUP: GroupId = GroupId(1);
/// The stagger between joins: large enough that clock skew between node
/// threads (milliseconds at worst) can never reorder the candidates'
/// accusation-time ranks.
const JOIN_STAGGER: Duration = Duration::from_millis(500);

/// What one transport's run of the scenario produced.
struct Outcome {
    transport: &'static str,
    /// The leader after the initial, staggered election.
    initial_leader: ProcessId,
    /// The leader after the initial leader's host crashed.
    recovered_leader: ProcessId,
    /// The invariant checker's verdict over the run's leader-view trace.
    violations: Vec<Violation>,
}

/// Runs the conformance scenario over whatever transport the endpoints
/// implement, recording every leader-change notification as a trace event.
fn run_scenario<E>(endpoints: Vec<E>, transport: &'static str) -> Outcome
where
    E: MessageEndpoint<ServiceMessage> + Send + 'static,
{
    assert_eq!(endpoints.len(), NODES);
    let started = Instant::now();
    let cluster = Cluster::start_with_endpoints(endpoints, ElectorKind::OmegaL);
    let mut trace: Vec<TraceEvent> = Vec::new();

    let now_virtual =
        |started: &Instant| SimInstant::from_nanos(started.elapsed().as_nanos() as u64);
    let drain = |trace: &mut Vec<TraceEvent>| {
        while let Some(event) = cluster.next_event(Duration::from_millis(1)) {
            let ServiceEvent::LeaderChanged { group, leader } = event.event;
            if group == GROUP {
                trace.push(TraceEvent {
                    at: now_virtual(&started),
                    kind: TraceEventKind::View {
                        node: event.node,
                        leader,
                    },
                });
            }
        }
    };

    // Node 0 joins alone and, after the self-election grace period, must
    // elect itself.
    let handle0 = cluster.handle(NodeId(0)).expect("node 0");
    let p0 = handle0
        .join(GROUP, JoinConfig::candidate())
        .expect("join 0");
    let deadline = Instant::now() + Duration::from_secs(8);
    while handle0.leader_of(GROUP) != Some(p0) {
        assert!(
            Instant::now() < deadline,
            "{transport}: node 0 never elected itself"
        );
        drain(&mut trace);
        std::thread::sleep(Duration::from_millis(25));
    }

    // The remaining candidates join strictly later, in id order, so the
    // stable algorithm's rank order (accusation time, then id) is fixed by
    // construction: 0 before 1 before 2, ...
    for i in 1..NODES as u32 {
        std::thread::sleep(JOIN_STAGGER);
        cluster
            .handle(NodeId(i))
            .expect("handle")
            .join(GROUP, JoinConfig::candidate())
            .expect("join");
        drain(&mut trace);
    }

    let initial_leader = cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{transport}: no initial agreement: {e}"));
    drain(&mut trace);

    // Crash the leader's workstation; the survivors must re-elect.
    cluster.crash(initial_leader.node);
    trace.push(TraceEvent {
        at: now_virtual(&started),
        kind: TraceEventKind::Crashed {
            node: initial_leader.node,
        },
    });
    let recovered_leader = cluster
        .await_agreement(GROUP, Some(initial_leader.node), Duration::from_secs(15))
        .unwrap_or_else(|e| panic!("{transport}: no re-election: {e}"));
    drain(&mut trace);

    let end = now_virtual(&started);
    cluster.shutdown();

    // The same invariant checker the chaos sweeps use, over the wall-clock
    // trace: eventual agreement, leader stability (the crash justifies the
    // one demotion), the mistake-recurrence budget, single leadership.
    let spec = InvariantSpec {
        algorithm: ElectorKind::OmegaL,
        nodes: NODES,
        qos: QosSpec::paper_default(),
        settle: SimDuration::from_secs(10),
        end,
    };
    let violations = check_trace(&trace, &spec);

    Outcome {
        transport,
        initial_leader,
        recovered_leader,
        violations,
    }
}

#[test]
fn mesh_and_udp_execute_the_identical_state_machine() {
    // Transport 1: the in-process mesh (perfect links).
    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(NODES, LinkSpec::perfect(), 7);
    let mesh_endpoints: Vec<_> = (0..NODES)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect();
    let mesh_run = run_scenario(mesh_endpoints, "mesh");

    // Transport 2: real UDP datagrams on loopback.
    let udp_endpoints = bind_loopback_mesh::<ServiceMessage>(NODES).expect("bind loopback");
    let udp_run = run_scenario(udp_endpoints, "udp");

    for run in [&mesh_run, &udp_run] {
        // The staggered construction pins the outcome: node 0 wins the
        // initial election, and after its crash the earliest surviving
        // rank — node 1 — takes over.
        assert_eq!(
            run.initial_leader.node,
            NodeId(0),
            "{}: wrong initial leader",
            run.transport
        );
        assert_eq!(
            run.recovered_leader.node,
            NodeId(1),
            "{}: wrong recovered leader",
            run.transport
        );
        assert!(
            run.violations.is_empty(),
            "{}: invariant violations: {:?}",
            run.transport,
            run.violations
        );
    }

    // Identical elected leaders across transports, and equivalent
    // invariant-checker verdicts (both clean).
    assert_eq!(mesh_run.initial_leader, udp_run.initial_leader);
    assert_eq!(mesh_run.recovered_leader, udp_run.recovered_leader);
    assert_eq!(mesh_run.violations, udp_run.violations);
}
