//! Cross-transport and cross-driver conformance: the full
//! {mesh, udp-legacy, udp-shared} × {legacy, sharded} matrix must execute
//! the identical protocol state machine.
//!
//! The same deterministic 5-node scenario — staggered joins so the rank
//! order is unambiguous, a stable election, a leader crash, a re-election —
//! runs over `sle-net`'s in-memory mesh, over `sle-udp`'s legacy
//! one-socket-per-node endpoints, and over the shared-socket demultiplexing
//! plane (`SharedUdpPlane`, 5 nodes behind 2 sockets), each both in the
//! legacy shape (`workers = n`) and on a 2-worker shard pool. Every one of
//! the six cells must produce **identical elected leaders** at every
//! checkpoint, and its leader-view trace must earn an **equivalent verdict
//! from the chaos invariant checker** (all clean: eventual agreement,
//! stability, mistake budget, single leadership).
//!
//! This is the regression net under the scale-out refactors: a timer-wheel,
//! mailbox, fan-out-batching, shared-monitor, demux or send-coalescing
//! change that altered election behaviour on any transport or driver would
//! break the leader equalities or hand one of the traces a violation the
//! others do not have.

use std::time::{Duration, Instant};

use sle_chaos::{check_trace, InvariantSpec, TraceEvent, TraceEventKind, Violation};
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig, ProcessId, ServiceEvent};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::{InMemoryMesh, MessageEndpoint};
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::NodeId;
use sle_udp::{bind_loopback_mesh, SharedUdpPlane};

const NODES: usize = 5;
const GROUP: GroupId = GroupId(1);
/// The stagger between joins: large enough that clock skew between node
/// threads (milliseconds at worst) can never reorder the candidates'
/// accusation-time ranks.
const JOIN_STAGGER: Duration = Duration::from_millis(500);

/// Which runtime shape drives the scenario.
#[derive(Clone, Copy)]
enum Driver {
    /// The historical one-worker-per-node shape (`workers = n`).
    Legacy,
    /// The sharded fixed-pool runtime.
    Sharded(usize),
}

/// What one transport's run of the scenario produced.
struct Outcome {
    transport: String,
    /// The leader after the initial, staggered election.
    initial_leader: ProcessId,
    /// The leader after the initial leader's host crashed.
    recovered_leader: ProcessId,
    /// The invariant checker's verdict over the run's leader-view trace.
    violations: Vec<Violation>,
}

/// Runs the conformance scenario over whatever transport the endpoints
/// implement, recording every leader-change notification as a trace event.
fn run_scenario<E>(endpoints: Vec<E>, transport: String, driver: Driver) -> Outcome
where
    E: MessageEndpoint<ServiceMessage> + Send + 'static,
{
    assert_eq!(endpoints.len(), NODES);
    let started = Instant::now();
    let mut config = ClusterConfig::new(ElectorKind::OmegaL);
    if let Driver::Sharded(workers) = driver {
        config = config.with_workers(workers);
    }
    let cluster = Cluster::start_endpoints_with_config(endpoints, config);
    let mut trace: Vec<TraceEvent> = Vec::new();

    let now_virtual =
        |started: &Instant| SimInstant::from_nanos(started.elapsed().as_nanos() as u64);
    let drain = |trace: &mut Vec<TraceEvent>| {
        while let Some(event) = cluster.next_event(Duration::from_millis(1)) {
            let ServiceEvent::LeaderChanged { group, leader } = event.event;
            if group == GROUP {
                trace.push(TraceEvent {
                    at: now_virtual(&started),
                    kind: TraceEventKind::View {
                        node: event.node,
                        leader,
                    },
                });
            }
        }
    };

    // Node 0 joins alone and, after the self-election grace period, must
    // elect itself.
    let handle0 = cluster.handle(NodeId(0)).expect("node 0");
    let p0 = handle0
        .join(GROUP, JoinConfig::candidate())
        .expect("join 0");
    let deadline = Instant::now() + Duration::from_secs(8);
    while handle0.leader_of(GROUP) != Some(p0) {
        assert!(
            Instant::now() < deadline,
            "{transport}: node 0 never elected itself"
        );
        drain(&mut trace);
        std::thread::sleep(Duration::from_millis(25));
    }

    // The remaining candidates join strictly later, in id order, so the
    // stable algorithm's rank order (accusation time, then id) is fixed by
    // construction: 0 before 1 before 2, ...
    for i in 1..NODES as u32 {
        std::thread::sleep(JOIN_STAGGER);
        cluster
            .handle(NodeId(i))
            .expect("handle")
            .join(GROUP, JoinConfig::candidate())
            .expect("join");
        drain(&mut trace);
    }

    let initial_leader = cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{transport}: no initial agreement: {e}"));
    drain(&mut trace);

    // Crash the leader's workstation; the survivors must re-elect.
    cluster.crash(initial_leader.node);
    trace.push(TraceEvent {
        at: now_virtual(&started),
        kind: TraceEventKind::Crashed {
            node: initial_leader.node,
        },
    });
    let recovered_leader = cluster
        .await_agreement(GROUP, Some(initial_leader.node), Duration::from_secs(15))
        .unwrap_or_else(|e| panic!("{transport}: no re-election: {e}"));
    drain(&mut trace);

    let end = now_virtual(&started);
    cluster.shutdown();

    // The same invariant checker the chaos sweeps use, over the wall-clock
    // trace: eventual agreement, leader stability (the crash justifies the
    // one demotion), the mistake-recurrence budget, single leadership.
    let spec = InvariantSpec {
        algorithm: ElectorKind::OmegaL,
        nodes: NODES,
        qos: QosSpec::paper_default(),
        settle: SimDuration::from_secs(10),
        end,
    };
    let violations = check_trace(&trace, &spec);

    Outcome {
        transport,
        initial_leader,
        recovered_leader,
        violations,
    }
}

fn mesh_endpoints() -> Vec<sle_net::transport::Endpoint<ServiceMessage>> {
    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(NODES, LinkSpec::perfect(), 7);
    (0..NODES)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect()
}

/// The shared-socket plane cell: 5 nodes demultiplexed behind 2 sockets.
/// The endpoints keep the plane (and its reader threads) alive; it shuts
/// down when the cluster drops them. A handle to the plane is returned
/// alongside so the caller can audit it after the run.
fn udp_shared_endpoints() -> (
    SharedUdpPlane<ServiceMessage>,
    Vec<sle_udp::SharedUdpEndpoint<ServiceMessage>>,
) {
    let plane = SharedUdpPlane::bind_loopback(NODES, 2).expect("bind shared plane");
    let endpoints = plane.endpoints();
    (plane, endpoints)
}

/// After the cluster has shut down (dropping its endpoints), no coalescing
/// cell may still hold buffered bytes: every send path — runtime batch
/// boundaries, endpoint drop, plane drop — must have flushed. A non-zero
/// backlog means a datagram was composed but never handed to the socket.
fn assert_no_stranded_sends(plane: &SharedUdpPlane<ServiceMessage>, transport: &str) {
    assert_eq!(
        plane.pending_backlog(),
        0,
        "{transport}: coalesced sends stranded in the plane after shutdown"
    );
}

/// Asserts the scenario's pinned outcome: the staggered construction makes
/// node 0 win the initial election, and after its crash the earliest
/// surviving rank — node 1 — takes over, with a clean invariant verdict.
fn assert_expected_outcome(run: &Outcome) {
    assert_eq!(
        run.initial_leader.node,
        NodeId(0),
        "{}: wrong initial leader",
        run.transport
    );
    assert_eq!(
        run.recovered_leader.node,
        NodeId(1),
        "{}: wrong recovered leader",
        run.transport
    );
    assert!(
        run.violations.is_empty(),
        "{}: invariant violations: {:?}",
        run.transport,
        run.violations
    );
}

fn assert_identical(a: &Outcome, b: &Outcome) {
    assert_eq!(a.initial_leader, b.initial_leader);
    assert_eq!(a.recovered_leader, b.recovered_leader);
    assert_eq!(a.violations, b.violations);
}

/// Asserts one driver's row of the matrix: every cell has the pinned
/// outcome, and all pairs are identical (leaders *and* invariant-checker
/// verdicts). The pinned outcome also equalizes the rows against each
/// other: a cell in the other row that diverged would fail its own pinned
/// assertion, so passing both tests proves all six cells identical.
fn assert_matrix_row(runs: &[Outcome]) {
    for run in runs {
        assert_expected_outcome(run);
    }
    for (i, a) in runs.iter().enumerate() {
        for b in &runs[i + 1..] {
            assert_identical(a, b);
        }
    }
}

#[test]
fn legacy_driver_matrix_executes_the_identical_state_machine() {
    // The legacy one-worker-per-node row: in-process mesh, one-socket-per-
    // node UDP, and the shared-socket plane (which auto-flushes per send in
    // pull mode — no runtime is around to signal batch boundaries).
    let (plane, shared) = udp_shared_endpoints();
    let runs = [
        run_scenario(mesh_endpoints(), "mesh/legacy".into(), Driver::Legacy),
        run_scenario(
            bind_loopback_mesh::<ServiceMessage>(NODES).expect("bind loopback"),
            "udp-legacy/legacy".into(),
            Driver::Legacy,
        ),
        run_scenario(shared, "udp-shared/legacy".into(), Driver::Legacy),
    ];
    assert_no_stranded_sends(&plane, "udp-shared/legacy");
    assert_matrix_row(&runs);
}

#[test]
fn sharded_driver_matrix_executes_the_identical_state_machine() {
    // The 2-worker shard-pool row. On the shared plane this is the full
    // production shape: push-mode delivery into shard mailboxes plus
    // coalesced sends flushed at the runtime's batch boundaries.
    let (plane, shared) = udp_shared_endpoints();
    let runs = [
        run_scenario(mesh_endpoints(), "mesh/sharded".into(), Driver::Sharded(2)),
        run_scenario(
            bind_loopback_mesh::<ServiceMessage>(NODES).expect("bind loopback"),
            "udp-legacy/sharded".into(),
            Driver::Sharded(2),
        ),
        run_scenario(shared, "udp-shared/sharded".into(), Driver::Sharded(2)),
    ];
    assert_no_stranded_sends(&plane, "udp-shared/sharded");
    assert_matrix_row(&runs);
}
