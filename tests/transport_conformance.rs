//! Cross-transport and cross-driver conformance: the in-process mesh and
//! real UDP loopback — under both the legacy one-worker-per-node driver and
//! the sharded fixed-pool driver — must execute the identical protocol
//! state machine.
//!
//! The same deterministic 5-node scenario — staggered joins so the rank
//! order is unambiguous, a stable election, a leader crash, a re-election —
//! runs over `sle-net`'s in-memory mesh and over `sle-udp` sockets on
//! 127.0.0.1, each both in the legacy shape (`workers = n`) and on a
//! 2-worker shard pool. Every run must produce **identical elected
//! leaders** at every checkpoint, and its leader-view trace must earn an
//! **equivalent verdict from the chaos invariant checker** (all clean:
//! eventual agreement, stability, mistake budget, single leadership).
//!
//! This is the regression net under the scale-out refactors: a timer-wheel,
//! mailbox, fan-out-batching or shared-monitor change that altered election
//! behaviour on either transport or driver would break the leader
//! equalities or hand one of the traces a violation the others do not have.

use std::time::{Duration, Instant};

use sle_chaos::{check_trace, InvariantSpec, TraceEvent, TraceEventKind, Violation};
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig, ProcessId, ServiceEvent};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::{InMemoryMesh, MessageEndpoint};
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::NodeId;
use sle_udp::bind_loopback_mesh;

const NODES: usize = 5;
const GROUP: GroupId = GroupId(1);
/// The stagger between joins: large enough that clock skew between node
/// threads (milliseconds at worst) can never reorder the candidates'
/// accusation-time ranks.
const JOIN_STAGGER: Duration = Duration::from_millis(500);

/// Which runtime shape drives the scenario.
#[derive(Clone, Copy)]
enum Driver {
    /// The historical one-worker-per-node shape (`workers = n`).
    Legacy,
    /// The sharded fixed-pool runtime.
    Sharded(usize),
}

/// What one transport's run of the scenario produced.
struct Outcome {
    transport: String,
    /// The leader after the initial, staggered election.
    initial_leader: ProcessId,
    /// The leader after the initial leader's host crashed.
    recovered_leader: ProcessId,
    /// The invariant checker's verdict over the run's leader-view trace.
    violations: Vec<Violation>,
}

/// Runs the conformance scenario over whatever transport the endpoints
/// implement, recording every leader-change notification as a trace event.
fn run_scenario<E>(endpoints: Vec<E>, transport: String, driver: Driver) -> Outcome
where
    E: MessageEndpoint<ServiceMessage> + Send + 'static,
{
    assert_eq!(endpoints.len(), NODES);
    let started = Instant::now();
    let mut config = ClusterConfig::new(ElectorKind::OmegaL);
    if let Driver::Sharded(workers) = driver {
        config = config.with_workers(workers);
    }
    let cluster = Cluster::start_endpoints_with_config(endpoints, config);
    let mut trace: Vec<TraceEvent> = Vec::new();

    let now_virtual =
        |started: &Instant| SimInstant::from_nanos(started.elapsed().as_nanos() as u64);
    let drain = |trace: &mut Vec<TraceEvent>| {
        while let Some(event) = cluster.next_event(Duration::from_millis(1)) {
            let ServiceEvent::LeaderChanged { group, leader } = event.event;
            if group == GROUP {
                trace.push(TraceEvent {
                    at: now_virtual(&started),
                    kind: TraceEventKind::View {
                        node: event.node,
                        leader,
                    },
                });
            }
        }
    };

    // Node 0 joins alone and, after the self-election grace period, must
    // elect itself.
    let handle0 = cluster.handle(NodeId(0)).expect("node 0");
    let p0 = handle0
        .join(GROUP, JoinConfig::candidate())
        .expect("join 0");
    let deadline = Instant::now() + Duration::from_secs(8);
    while handle0.leader_of(GROUP) != Some(p0) {
        assert!(
            Instant::now() < deadline,
            "{transport}: node 0 never elected itself"
        );
        drain(&mut trace);
        std::thread::sleep(Duration::from_millis(25));
    }

    // The remaining candidates join strictly later, in id order, so the
    // stable algorithm's rank order (accusation time, then id) is fixed by
    // construction: 0 before 1 before 2, ...
    for i in 1..NODES as u32 {
        std::thread::sleep(JOIN_STAGGER);
        cluster
            .handle(NodeId(i))
            .expect("handle")
            .join(GROUP, JoinConfig::candidate())
            .expect("join");
        drain(&mut trace);
    }

    let initial_leader = cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{transport}: no initial agreement: {e}"));
    drain(&mut trace);

    // Crash the leader's workstation; the survivors must re-elect.
    cluster.crash(initial_leader.node);
    trace.push(TraceEvent {
        at: now_virtual(&started),
        kind: TraceEventKind::Crashed {
            node: initial_leader.node,
        },
    });
    let recovered_leader = cluster
        .await_agreement(GROUP, Some(initial_leader.node), Duration::from_secs(15))
        .unwrap_or_else(|e| panic!("{transport}: no re-election: {e}"));
    drain(&mut trace);

    let end = now_virtual(&started);
    cluster.shutdown();

    // The same invariant checker the chaos sweeps use, over the wall-clock
    // trace: eventual agreement, leader stability (the crash justifies the
    // one demotion), the mistake-recurrence budget, single leadership.
    let spec = InvariantSpec {
        algorithm: ElectorKind::OmegaL,
        nodes: NODES,
        qos: QosSpec::paper_default(),
        settle: SimDuration::from_secs(10),
        end,
    };
    let violations = check_trace(&trace, &spec);

    Outcome {
        transport,
        initial_leader,
        recovered_leader,
        violations,
    }
}

fn mesh_endpoints() -> Vec<sle_net::transport::Endpoint<ServiceMessage>> {
    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(NODES, LinkSpec::perfect(), 7);
    (0..NODES)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect()
}

/// Asserts the scenario's pinned outcome: the staggered construction makes
/// node 0 win the initial election, and after its crash the earliest
/// surviving rank — node 1 — takes over, with a clean invariant verdict.
fn assert_expected_outcome(run: &Outcome) {
    assert_eq!(
        run.initial_leader.node,
        NodeId(0),
        "{}: wrong initial leader",
        run.transport
    );
    assert_eq!(
        run.recovered_leader.node,
        NodeId(1),
        "{}: wrong recovered leader",
        run.transport
    );
    assert!(
        run.violations.is_empty(),
        "{}: invariant violations: {:?}",
        run.transport,
        run.violations
    );
}

fn assert_identical(a: &Outcome, b: &Outcome) {
    assert_eq!(a.initial_leader, b.initial_leader);
    assert_eq!(a.recovered_leader, b.recovered_leader);
    assert_eq!(a.violations, b.violations);
}

#[test]
fn mesh_and_udp_execute_the_identical_state_machine() {
    // Transport 1: the in-process mesh (perfect links), legacy driver.
    let mesh_run = run_scenario(mesh_endpoints(), "mesh".into(), Driver::Legacy);

    // Transport 2: real UDP datagrams on loopback, legacy driver.
    let udp_endpoints = bind_loopback_mesh::<ServiceMessage>(NODES).expect("bind loopback");
    let udp_run = run_scenario(udp_endpoints, "udp".into(), Driver::Legacy);

    assert_expected_outcome(&mesh_run);
    assert_expected_outcome(&udp_run);

    // Identical elected leaders across transports, and equivalent
    // invariant-checker verdicts (both clean).
    assert_identical(&mesh_run, &udp_run);
}

#[test]
fn sharded_driver_matches_legacy_on_mesh() {
    // The same scenario on a 2-worker shard pool: the fixed-pool runtime
    // must elect the identical leaders with an equally clean verdict.
    let legacy = run_scenario(mesh_endpoints(), "mesh/legacy".into(), Driver::Legacy);
    let sharded = run_scenario(mesh_endpoints(), "mesh/sharded".into(), Driver::Sharded(2));
    assert_expected_outcome(&legacy);
    assert_expected_outcome(&sharded);
    assert_identical(&legacy, &sharded);
}

#[test]
fn sharded_driver_matches_legacy_on_udp() {
    let legacy_endpoints = bind_loopback_mesh::<ServiceMessage>(NODES).expect("bind loopback");
    let legacy = run_scenario(legacy_endpoints, "udp/legacy".into(), Driver::Legacy);
    let sharded_endpoints = bind_loopback_mesh::<ServiceMessage>(NODES).expect("bind loopback");
    let sharded = run_scenario(sharded_endpoints, "udp/sharded".into(), Driver::Sharded(2));
    assert_expected_outcome(&legacy);
    assert_expected_outcome(&sharded);
    assert_identical(&legacy, &sharded);
}
