//! Real-time scale smoke for the sharded runtime: 200 workstations ×
//! 16 groups on a 4-worker shard pool must elect everywhere within a bound
//! derived from the configured failure-detection QoS.
//!
//! This is the integration-test-sized sibling of `bench_runtime` (the
//! 1000-node macro-benchmark in `sle-bench`): big enough that a
//! thread-per-node runtime or a timer-scanning hot loop would blow the
//! bound, small enough for every `cargo test` run.

use std::time::{Duration, Instant};

use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig, ServiceConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_harness::deploy::{membership, strided_groups};
use sle_net::link::LinkSpec;
use sle_net::transport::InMemoryMesh;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

const NODES: usize = 200;
const GROUPS: usize = 16;
const MEMBERS: usize = 12;
const WORKERS: usize = 4;

#[test]
fn two_hundred_nodes_elect_within_the_qos_bound_on_four_workers() {
    let qos = QosSpec::paper_default();
    // The bound, derived from the QoS: a freshly joined candidate waits out
    // the self-election grace (2 × T_D^U) before claiming leadership, and
    // convergence of everyone's view takes at most another detection time
    // of gossip; the rest is scheduling slack for a loaded CI machine.
    let t_d = Duration::from_nanos(qos.detection_time().as_nanos());
    let bound = t_d * 4 + Duration::from_secs(2);

    let groups = strided_groups(NODES, GROUPS, MEMBERS);
    let deployment = membership(NODES, &groups);

    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(NODES, LinkSpec::perfect(), 11);
    let endpoints: Vec<_> = (0..NODES)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect();
    let configs: Vec<ServiceConfig> = (0..NODES)
        .map(|i| {
            // A workstation in no group still needs itself as a peer.
            let mut peers = deployment.peers_of[i].clone();
            if peers.is_empty() {
                peers.push(NodeId(i as u32));
            }
            let mut config = ServiceConfig::new(NodeId(i as u32), peers, ElectorKind::OmegaL)
                .with_hello_interval(SimDuration::from_millis(200));
            for &group in &deployment.groups_of[i] {
                config = config.with_auto_join(group, JoinConfig::candidate().with_qos(qos));
            }
            config
        })
        .collect();

    let started = Instant::now();
    let options = ClusterConfig::new(ElectorKind::OmegaL).with_workers(WORKERS);
    let cluster = Cluster::start_with_service_configs(endpoints, configs, &options);
    assert_eq!(cluster.workers(), WORKERS);

    // Poll until every group's members agree on a leader.
    let deadline = started + bound;
    let mut pending: Vec<usize> = (0..GROUPS).collect();
    while !pending.is_empty() {
        pending.retain(|&g| {
            cluster
                .agreed_leader_among(GroupId(g as u32 + 1), &groups[g])
                .is_none()
        });
        if pending.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "groups {pending:?} had not elected within the QoS-derived bound {bound:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let elected_in = started.elapsed();
    assert!(
        elected_in < bound,
        "all groups elected, but only after {elected_in:?} (bound {bound:?})"
    );

    // The runtime earned it the right way: no polling loops. Idle wakeups
    // (a worker waking with nothing to do) must be a rarity, not a cadence.
    let stats = cluster.runtime_stats();
    let idle_per_sec = stats.idle_wakeups as f64 / elected_in.as_secs_f64();
    assert!(
        idle_per_sec < 100.0,
        "shard workers idle-woke {idle_per_sec:.0}/s ({stats:?})"
    );
    cluster.shutdown();
}
