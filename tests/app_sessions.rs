//! Cross-transport conformance of the client tier: the *same* session
//! scenario — install fenced counters, elect, serve a workload, crash the
//! leader, serve another workload through the re-election — runs unmodified
//! over the in-memory mesh, the legacy one-socket-per-node UDP transport
//! and the shared-socket UDP plane. The [`ClientHub`] only sees the
//! [`MessageEndpoint`] seam, so one generic function covers all three.
//!
//! Every run must finish its workload (no lost sessions), and the shared
//! [`FencingAudit`] must record zero violations: across the forced leader
//! change, accepted writes carried monotonically non-decreasing fencing
//! tokens on every replica.

use std::sync::Arc;
use std::time::Duration;

use sle_app::{ClientConfig, ClientHub, FencedCounter, FencingAudit};
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::{InMemoryMesh, MessageEndpoint};
use sle_sim::time::SimDuration;
use sle_sim::NodeId;
use sle_udp::{bind_loopback_mesh, SharedUdpPlane};

const SERVERS: usize = 3;
const GROUP: GroupId = GroupId(1);
const SESSIONS: u64 = 100;
const PER_SESSION: u64 = 5;

/// The scenario, generic over the transport: `endpoints` holds one endpoint
/// per service node (ids `0..SERVERS`) *plus* one extra endpoint (id
/// `SERVERS`) for the client hub, all wired to each other.
fn run_sessions_over<E>(mut endpoints: Vec<E>, transport: &str)
where
    E: MessageEndpoint<ServiceMessage> + Send + 'static,
{
    assert_eq!(endpoints.len(), SERVERS + 1);
    let client_endpoint = endpoints.pop().expect("client endpoint");

    // A tight detection bound keeps the forced re-election (and the lease
    // TTL riding on T_D) short enough for a test.
    let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(250));
    let cluster =
        Cluster::start_endpoints_with_config(endpoints, ClusterConfig::new(ElectorKind::OmegaL));
    let audit = FencingAudit::shared();
    for i in 0..SERVERS as u32 {
        let handle = cluster.handle(NodeId(i)).expect("handle");
        assert!(
            handle.install_app(Box::new(FencedCounter::with_audit(Arc::clone(&audit)))),
            "{transport}: install_app failed on node {i}"
        );
        handle
            .join(GROUP, JoinConfig::candidate().with_qos(qos))
            .expect("join");
    }
    let leader = cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .unwrap_or_else(|e| panic!("{transport}: no initial agreement: {e}"));

    let servers: Vec<NodeId> = (0..SERVERS as u32).map(NodeId).collect();
    let mut config = ClientConfig::new(GROUP, servers);
    config.deadline = Some(Duration::from_secs(60));
    let mut hub = ClientHub::new(client_endpoint, config);

    // First workload against the settled leader: every request completes.
    let first = hub.run_workload(SESSIONS, PER_SESSION, 1);
    assert!(!first.gave_up, "{transport}: first workload gave up");
    assert_eq!(first.completed, SESSIONS * PER_SESSION, "{transport}");

    // Crash the serving leader; the hub's next sends time out, it probes
    // afresh, follows the survivors' redirects and finishes the workload
    // against the re-elected leader — transparently to its sessions.
    cluster.crash(leader.node);
    let second = hub.run_workload(SESSIONS, PER_SESSION, 1);
    assert!(
        !second.gave_up,
        "{transport}: second workload gave up: completed={} rejected={} redirects={} timeouts={} dup={} attempts={}",
        second.completed,
        second.rejected_replies,
        second.redirects,
        second.timeouts,
        second.duplicate_replies,
        second.attempts,
    );
    assert_eq!(second.completed, SESSIONS * PER_SESSION, "{transport}");
    assert!(
        second.timeouts + second.redirects > 0,
        "{transport}: the crash should force at least one retry"
    );

    cluster.shutdown();

    // The safety property the tier exists for: across both leaderships,
    // no replica ever accepted a write under a regressed fencing token,
    // and at-least-once delivery means completions never exceed accepts.
    let snapshot = audit.snapshot();
    assert_eq!(snapshot.violations, 0, "{transport}: fencing violated");
    assert!(
        snapshot.accepts >= 2 * SESSIONS * PER_SESSION,
        "{transport}: only {} accepts recorded",
        snapshot.accepts
    );
}

#[test]
fn client_sessions_survive_leader_crash_over_the_in_memory_mesh() {
    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(SERVERS + 1, LinkSpec::perfect(), 11);
    let endpoints = (0..=SERVERS)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect();
    run_sessions_over(endpoints, "mesh");
}

#[test]
fn client_sessions_survive_leader_crash_over_legacy_udp() {
    let endpoints = bind_loopback_mesh::<ServiceMessage>(SERVERS + 1).expect("bind loopback mesh");
    run_sessions_over(endpoints, "udp-legacy");
}

#[test]
fn client_sessions_survive_leader_crash_over_the_shared_udp_plane() {
    // Client tier over the production transport shape: the hub's endpoint
    // is just one more identity demultiplexed behind the shared sockets.
    let plane =
        SharedUdpPlane::<ServiceMessage>::bind_loopback(SERVERS + 1, 2).expect("bind plane");
    run_sessions_over(plane.endpoints(), "udp-shared");
    assert_eq!(
        plane.pending_backlog(),
        0,
        "udp-shared: coalesced sends stranded after the session run"
    );
}
