//! End-to-end integration tests spanning all crates: the full service stack
//! (simulator + network models + failure detector + electors + service)
//! exercised under the workloads of the paper.

use sle_core::{GroupId, JoinConfig, ProcessId, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_harness::{CrashPlan, CrashProfile, MetricsCollector, Scenario, EXPERIMENT_GROUP};
use sle_net::link::{LinkCrashSpec, LinkSpec};
use sle_net::network::NetworkModel;
use sle_sim::prelude::*;

const GROUP: GroupId = GroupId(1);

fn build_world(
    n: usize,
    algorithm: ElectorKind,
    link: LinkSpec,
    seed: u64,
) -> World<ServiceNode, sle_net::network::SimulatedNetwork> {
    let medium = NetworkModel::new(link).build(seed.wrapping_add(99));
    World::new(
        n,
        Box::new(move |node, _| {
            ServiceNode::new(
                ServiceConfig::full_mesh(node, n, algorithm)
                    .with_auto_join(GROUP, JoinConfig::candidate()),
            )
        }),
        medium,
        seed,
    )
}

fn agreed_leader(
    world: &World<ServiceNode, sle_net::network::SimulatedNetwork>,
) -> Option<ProcessId> {
    let mut leader = None;
    for i in 0..world.num_nodes() {
        let node = NodeId(i as u32);
        if !world.is_up(node) {
            continue;
        }
        let view = world.actor(node)?.leader_of(GROUP)?;
        match leader {
            None => leader = Some(view),
            Some(l) if l == view => {}
            _ => return None,
        }
    }
    leader
}

#[test]
fn every_algorithm_elects_over_a_lossy_network() {
    for algorithm in ElectorKind::all() {
        let mut world = build_world(6, algorithm, LinkSpec::from_paper_tuple(10.0, 0.01), 5);
        let mut obs = NullObserver;
        world.run_for(SimDuration::from_secs(10), &mut obs);
        let leader = agreed_leader(&world);
        assert!(
            leader.is_some(),
            "{algorithm}: no agreed leader over lossy links"
        );
    }
}

#[test]
fn recovery_time_is_close_to_the_detection_bound() {
    // Crash the leader explicitly and measure how long the group stays
    // leaderless: it should be near T_D^U = 1s, never more than a couple of
    // seconds (paper Figures 4/5).
    for algorithm in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        let mut world = build_world(6, algorithm, LinkSpec::lan(), 17);
        let mut collector = MetricsCollector::new(GROUP, 6, SimInstant::ZERO);
        world.run_for(SimDuration::from_secs(10), &mut collector);
        let leader = agreed_leader(&world).expect("initial leader");
        world.schedule_crash(leader.node, world.now() + SimDuration::from_millis(1));
        world.run_for(SimDuration::from_secs(10), &mut collector);
        let metrics = collector.finish(world.now());
        assert_eq!(metrics.leader_crashes, 1);
        assert_eq!(
            metrics.recovery.count, 1,
            "{algorithm}: missing recovery sample"
        );
        assert!(
            metrics.recovery.mean < 2.5,
            "{algorithm}: recovery took {}s",
            metrics.recovery.mean
        );
    }
}

#[test]
fn stable_algorithms_make_no_mistakes_under_churn() {
    // 20 virtual minutes of the paper's churn (crash every 10 minutes per
    // node) over a lossy network: S2 and S3 must not demote a healthy leader.
    for algorithm in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        let metrics = Scenario::paper_default(
            "integration",
            algorithm,
            LinkSpec::from_paper_tuple(10.0, 0.01),
        )
        .with_nodes(8)
        .with_duration(SimDuration::from_secs(1200))
        .with_seed(23)
        .run();
        assert_eq!(
            metrics.unjustified_demotions, 0,
            "{algorithm} demoted a healthy leader"
        );
        assert!(
            metrics.leader_availability > 0.99,
            "{algorithm}: availability {}",
            metrics.leader_availability
        );
    }
}

#[test]
fn omega_id_is_unstable_under_churn() {
    let metrics = Scenario::paper_default("integration", ElectorKind::OmegaId, LinkSpec::lan())
        .with_nodes(8)
        .with_duration(SimDuration::from_secs(1800))
        .with_seed(29)
        .run();
    assert!(
        metrics.unjustified_demotions > 0,
        "Omega_id should demote leaders when smaller ids rejoin"
    );
}

#[test]
fn omega_l_uses_far_less_bandwidth_than_omega_lc() {
    let s2 = Scenario::paper_default("s2", ElectorKind::OmegaLc, LinkSpec::lan())
        .without_workstation_crashes()
        .with_duration(SimDuration::from_secs(300))
        .run();
    let s3 = Scenario::paper_default("s3", ElectorKind::OmegaL, LinkSpec::lan())
        .without_workstation_crashes()
        .with_duration(SimDuration::from_secs(300))
        .run();
    assert!(
        s3.kbytes_per_sec_per_node * 2.0 < s2.kbytes_per_sec_per_node,
        "S3 ({:.2} KB/s) should be far cheaper than S2 ({:.2} KB/s)",
        s3.kbytes_per_sec_per_node,
        s2.kbytes_per_sec_per_node
    );
}

#[test]
fn omega_lc_availability_beats_omega_l_under_link_crashes() {
    // The Figure 7 trade-off, in miniature: with links crashing every minute
    // the forwarding-based S2 keeps a much higher availability than S3.
    let crashes = LinkCrashSpec::from_paper_uptime_secs(60);
    let s2 = Scenario::paper_default("s2", ElectorKind::OmegaLc, LinkSpec::lan())
        .with_link_crashes(crashes)
        .with_duration(SimDuration::from_secs(900))
        .with_seed(41)
        .run();
    let s3 = Scenario::paper_default("s3", ElectorKind::OmegaL, LinkSpec::lan())
        .with_link_crashes(crashes)
        .with_duration(SimDuration::from_secs(900))
        .with_seed(41)
        .run();
    assert!(
        s2.leader_availability > s3.leader_availability,
        "S2 ({:.4}) should be more available than S3 ({:.4}) under link crashes",
        s2.leader_availability,
        s3.leader_availability
    );
    // The paper reports 98.78% for S2 in this setting; our reproduction lands
    // a few points lower (see EXPERIMENTS.md) but must stay well above S3's.
    assert!(
        s2.leader_availability > 0.90,
        "S2 availability {}",
        s2.leader_availability
    );
}

#[test]
fn faster_detection_bound_gives_faster_recovery() {
    let slow = Scenario::paper_default("slow", ElectorKind::OmegaL, LinkSpec::lan())
        .with_duration(SimDuration::from_secs(1800))
        .with_seed(47)
        .run();
    let fast = Scenario::paper_default("fast", ElectorKind::OmegaL, LinkSpec::lan())
        .with_qos(QosSpec::paper_default_with_detection(
            SimDuration::from_millis(250),
        ))
        .with_duration(SimDuration::from_secs(1800))
        .with_seed(47)
        .run();
    assert!(fast.recovery.count > 0 && slow.recovery.count > 0);
    assert!(
        fast.recovery.mean < slow.recovery.mean,
        "T_D=250ms gave {}s, T_D=1s gave {}s",
        fast.recovery.mean,
        slow.recovery.mean
    );
}

#[test]
fn crash_plan_installs_into_a_running_world() {
    let mut world = build_world(4, ElectorKind::OmegaLc, LinkSpec::lan(), 53);
    let plan = CrashPlan::generate(
        4,
        SimDuration::from_secs(600),
        CrashProfile::paper_default(),
        53,
    );
    plan.install(&mut world);
    let mut counting = CountingObserver::new();
    world.run_for(SimDuration::from_secs(600), &mut counting);
    assert_eq!(counting.crashes as usize, {
        // Crashes scheduled strictly before the horizon all fire.
        plan.events()
            .iter()
            .filter(|e| e.is_crash && e.at <= SimInstant::ZERO + SimDuration::from_secs(600))
            .count()
    });
}

#[test]
fn experiment_group_constant_matches_harness() {
    assert_eq!(EXPERIMENT_GROUP, GroupId(1));
}

#[test]
fn duplicated_stale_accusation_causes_no_extra_mistake() {
    // Regression for the stale-epoch accusation hole: over a duplicating
    // network, one ACCUSE against the healthy leader arrives twice. The
    // first copy is current and is honoured — one justified-by-protocol
    // demotion. The duplicate carries the now-stale epoch and must be
    // dropped; before the epoch guard it was honoured again, re-ranking the
    // deposed leader a second time and forging a fencing-token regression.
    let link = LinkSpec::lossy(SimDuration::from_millis(2), 0.0).with_duplication(1.0);
    let mut world = build_world(3, ElectorKind::OmegaLc, link, 71);
    let mut collector = MetricsCollector::new(GROUP, 3, SimInstant::ZERO);
    world.run_for(SimDuration::from_secs(10), &mut collector);
    let old_leader = agreed_leader(&world).expect("settled leader");
    let accuser = NodeId((old_leader.node.0 + 1) % 3);

    // One ACCUSE sent over the network: the medium duplicates it.
    world.with_actor(accuser, &mut collector, |_, ctx| {
        ctx.send(
            old_leader.node,
            sle_core::ServiceMessage::Accuse {
                group: GROUP,
                epoch: 0,
            },
        );
    });
    world.run_for(SimDuration::from_secs(5), &mut collector);

    // Exactly one of the two copies was honoured; the replay was dropped.
    let stale = world
        .actor(old_leader.node)
        .expect("accused node alive")
        .stale_accusations_ignored();
    assert_eq!(stale, 1, "the duplicated stale ACCUSE was not dropped");

    // The honoured copy demoted the leader once; the duplicate must not
    // move leadership again. The group has re-settled on a new leader…
    let new_leader = agreed_leader(&world).expect("re-settled leader");
    assert_ne!(new_leader, old_leader, "the honoured ACCUSE should demote");
    // …and stays there: no further mistakes accrue.
    world.run_for(SimDuration::from_secs(5), &mut collector);
    assert_eq!(agreed_leader(&world), Some(new_leader));
    let metrics = collector.finish(world.now());
    assert_eq!(
        metrics.unjustified_demotions, 1,
        "only the first ACCUSE copy may demote the healthy leader"
    );
}

#[test]
fn await_agreement_fails_fast_when_every_member_crashed() {
    use sle_core::Cluster;
    use std::time::{Duration, Instant};

    let cluster = Cluster::start(3, ElectorKind::OmegaLc);
    let group = GroupId(9);
    for i in 0..3u32 {
        cluster
            .handle(NodeId(i))
            .unwrap()
            .join(group, JoinConfig::candidate())
            .unwrap();
    }
    cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect("initial agreement");
    for i in 0..3u32 {
        cluster.crash(NodeId(i));
    }
    // With every member crashed there is nobody left to agree: the call
    // must give up promptly (not burn its whole timeout polling parked
    // nodes) and still carry the last votes for diagnosis.
    let started = Instant::now();
    let err = cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect_err("agreement over an all-crashed group");
    let waited = started.elapsed();
    assert!(
        waited < Duration::from_secs(2),
        "all-crashed await_agreement took {waited:?}"
    );
    assert_eq!(err.group, group);
    assert_eq!(err.votes.len(), 3, "votes: {err}");
    cluster.shutdown();
}
