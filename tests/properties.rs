//! Randomised property tests of the core data structures and invariants:
//! candidate ranking, the failure-detector configurator, the link-quality
//! estimator, the freshness monitor, the adaptive tuner and simulator
//! determinism.
//!
//! Cases are generated from the workspace's own deterministic [`SimRng`]
//! (seeded per test), so every run checks the same cases and failures are
//! reproducible without any external property-testing framework.

use sle_adaptive::{AdaptiveTuner, Tuner, TunerConfig};
use sle_election::{AlivePayload, LeaderElector, OmegaL, OmegaLc, Rank};
use sle_fd::{FdConfigurator, LinkQuality, LinkQualityEstimator, PeerMonitor, QosSpec};
use sle_sim::actor::NodeId;
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};

const CASES: usize = 200;

fn instant(nanos: u64) -> SimInstant {
    SimInstant::from_nanos(nanos)
}

/// Rank ordering is total, antisymmetric and prefers earlier accusation
/// times regardless of identifiers.
#[test]
fn rank_ordering_is_consistent() {
    let mut rng = SimRng::seed_from(101);
    for _ in 0..CASES {
        let a_acc = rng.next_u64() % 1_000_000;
        let b_acc = rng.next_u64() % 1_000_000;
        let a_id = (rng.next_u64() % 64) as u32;
        let b_id = (rng.next_u64() % 64) as u32;
        let a = Rank::new(instant(a_acc), NodeId(a_id));
        let b = Rank::new(instant(b_acc), NodeId(b_id));
        // Total order.
        assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Earlier accusation time always wins.
        if a_acc < b_acc {
            assert!(a < b);
        }
        // Equal components means equal ranks.
        if a_acc == b_acc && a_id == b_id {
            assert_eq!(a, b);
        }
    }
}

/// The configurator always respects the detection bound (η + δ = T_D^U)
/// and its interval floor, whatever the link looks like.
#[test]
fn configurator_respects_detection_bound() {
    let mut rng = SimRng::seed_from(102);
    let configurator = FdConfigurator::default();
    for _ in 0..CASES {
        let loss = rng.uniform_range(0.0, 0.9);
        let delay_ms = rng.uniform_range(0.0, 500.0);
        let jitter_ms = rng.uniform_range(0.0, 500.0);
        let detection_ms = 50 + rng.next_u64() % 4_950;
        let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(detection_ms));
        let quality = LinkQuality::from_parts(
            loss,
            SimDuration::from_millis_f64(delay_ms),
            SimDuration::from_millis_f64(jitter_ms),
        );
        let params = configurator.compute(&qos, &quality);
        assert_eq!(params.interval + params.shift, qos.detection_time());
        assert!(
            params.interval
                >= configurator
                    .options()
                    .min_interval
                    .min(qos.detection_time())
        );
        assert!(params.interval <= qos.detection_time());
    }
}

/// The estimator's loss probability stays within [0, 1] and its delay
/// estimates are never negative, for arbitrary arrival patterns.
#[test]
fn estimator_outputs_are_well_formed() {
    let mut rng = SimRng::seed_from(103);
    for _ in 0..CASES {
        let mut estimator = LinkQualityEstimator::new(64);
        let n = 1 + rng.uniform_usize(99);
        for _ in 0..n {
            let seq = rng.next_u64() % 500;
            let delay = SimDuration::from_micros(rng.next_u64() % 1_000_000);
            let sent = instant(seq * 1_000_000);
            estimator.record(seq, sent, sent + delay);
        }
        let quality = estimator.estimate();
        assert!((0.0..=1.0).contains(&quality.loss_probability));
        assert!(quality.delay_mean >= SimDuration::ZERO);
        assert!(quality.delay_std_dev >= SimDuration::ZERO);
    }
}

/// NFD-S monitor invariant: after a heartbeat sent at time s with
/// interval η, the peer cannot stay trusted past s + η + δ without any
/// further heartbeat (the crash-detection bound of Chen et al.).
#[test]
fn monitor_never_trusts_past_the_freshness_horizon() {
    let mut rng = SimRng::seed_from(104);
    for _ in 0..CASES {
        let interval_ms = 10 + rng.next_u64() % 990;
        let heartbeats = 1 + rng.uniform_usize(49);
        let qos = QosSpec::paper_default();
        let mut monitor = PeerMonitor::new(qos, SimInstant::ZERO);
        let interval = SimDuration::from_millis(interval_ms);
        let mut now = SimInstant::ZERO;
        let mut last_sent = SimInstant::ZERO;
        for seq in 0..heartbeats as u64 {
            now += interval;
            last_sent = now;
            monitor.on_heartbeat(seq, last_sent, interval, now);
        }
        // The freshness horizon never exceeds last_sent + clamped interval +
        // shift, and the clamped interval plus shift is at most interval + T_D.
        let bound = last_sent + interval.min(qos.detection_time()) + qos.detection_time();
        assert!(monitor.deadline() <= bound);
        // And a check at the horizon suspects the peer.
        let deadline = monitor.deadline();
        assert!(monitor.check(deadline).is_some() || !monitor.is_trusted());
    }
}

/// Stability invariant of the accusation-time algorithms: a process that
/// joins later than the incumbent (and with no accusations around) never
/// takes the leadership away, whatever the ids are.
#[test]
fn later_joiners_never_outrank_incumbents() {
    let mut rng = SimRng::seed_from(105);
    for _ in 0..CASES {
        let incumbent_id = (rng.next_u64() % 32) as u32;
        let joiner_id = (rng.next_u64() % 32) as u32;
        if incumbent_id == joiner_id {
            continue;
        }
        let gap_ms = 1 + rng.next_u64() % 100_000;
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_millis(gap_ms);
        let incumbent_lc = OmegaLc::new(NodeId(incumbent_id), true, t0);
        let mut joiner_lc = OmegaLc::new(NodeId(joiner_id), true, t1);
        joiner_lc.on_alive(NodeId(incumbent_id), incumbent_lc.alive_payload(), t1);
        assert_eq!(joiner_lc.leader(), Some(NodeId(incumbent_id)));

        let incumbent_l = OmegaL::new(NodeId(incumbent_id), true, t0);
        let mut joiner_l = OmegaL::new(NodeId(joiner_id), true, t1);
        joiner_l.on_alive(NodeId(incumbent_id), incumbent_l.alive_payload(), t1);
        assert_eq!(joiner_l.leader(), Some(NodeId(incumbent_id)));
        assert!(!joiner_l.is_competing(), "the later joiner must withdraw");
    }
}

/// Epoch guard: accusations that do not reference the current epoch never
/// change a process's accusation time.
#[test]
fn stale_accusations_are_ignored() {
    let mut rng = SimRng::seed_from(106);
    for _ in 0..CASES {
        let epoch = 1 + rng.next_u64() % 999;
        let at_ms = rng.next_u64() % 10_000;
        let mut elector = OmegaLc::new(NodeId(1), true, SimInstant::ZERO);
        let before = elector.accusation_time();
        // Any epoch other than the current one (0) must be ignored.
        elector.on_accusation(epoch, instant(at_ms * 1_000_000));
        assert_eq!(elector.accusation_time(), before);
    }
}

/// The exponential sampler is deterministic per seed and produces only
/// non-negative durations.
#[test]
fn exponential_sampling_is_deterministic() {
    let mut rng = SimRng::seed_from(107);
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let mean_ms = 1 + rng.next_u64() % 9_999;
        let mean = SimDuration::from_millis(mean_ms);
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            let x = a.exponential(mean);
            let y = b.exponential(mean);
            assert_eq!(x, y);
        }
    }
}

/// ALIVE payload wire sizes are consistent: adding the forwarding claim
/// adds exactly 12 bytes.
#[test]
fn payload_wire_size_is_consistent() {
    let mut rng = SimRng::seed_from(108);
    for _ in 0..CASES {
        let acc = rng.next_u64() / 2;
        let epoch = rng.next_u64();
        let without = AlivePayload {
            accusation_time: SimInstant::from_nanos(acc),
            epoch,
            local_leader: None,
        };
        let with = AlivePayload {
            local_leader: Some(sle_election::LeaderClaim {
                node: NodeId(3),
                accusation_time: SimInstant::from_nanos(acc),
            }),
            ..without
        };
        assert_eq!(with.wire_size(), without.wire_size() + 12);
    }
}

/// Adaptive-tuner invariant: whatever the (loss-free) delay stream looks
/// like, a recommendation never exceeds the application's detection bound
/// and its shift always clears the largest observed delay's EWMA regime.
#[test]
fn tuner_recommendations_respect_the_qos_bound() {
    let mut rng = SimRng::seed_from(109);
    let qos = QosSpec::paper_default();
    for _ in 0..50 {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let peer = NodeId(1);
        let base_delay_ms = rng.uniform_range(0.1, 120.0);
        let mut now = SimInstant::ZERO;
        for seq in 0..100u64 {
            now += SimDuration::from_millis(100);
            let jitter = rng.uniform_range(0.0, base_delay_ms / 2.0);
            let delay = SimDuration::from_millis_f64(base_delay_ms + jitter);
            tuner.observe(peer, seq, now - delay, now);
        }
        if let Some(rec) = tuner.recommend(peer, &qos, now) {
            assert!(rec.detection_bound() <= qos.detection_time());
            assert!(rec.params.worst_case_detection() <= qos.detection_time());
            assert!(rec.params.interval >= TunerConfig::default().min_interval);
            assert_eq!(rec.election_grace(), rec.detection_bound() * 2);
        }
    }
}

/// Ω_l (S3) voluntary withdrawal, asserted over the simulator's own
/// message statistics: once an election settles, only the leader's ALIVEs
/// appear on the wire. Every defeated candidate's ALIVE counter stops, and
/// the window's entire sent-message count is accounted for by the leader's
/// heartbeats plus HELLO gossip — there is no hidden third traffic source.
#[test]
fn omega_l_withdrawal_silences_every_defeated_candidate() {
    use sle_core::{GroupId, JoinConfig, ServiceConfig, ServiceNode};
    use sle_election::ElectorKind;
    use sle_sim::observer::CountingObserver;
    use sle_sim::prelude::{PerfectMedium, World};

    const NODES: usize = 6;
    const GROUP: GroupId = GroupId(1);
    let settle = SimDuration::from_secs(15);
    let window = SimDuration::from_secs(10);

    let mut seeds = SimRng::seed_from(0x5111_E4CE);
    for _case in 0..5 {
        let seed = seeds.next_u64();
        let mut world: World<ServiceNode, PerfectMedium> = World::new(
            NODES,
            Box::new(move |node, _inc| {
                ServiceNode::new(
                    ServiceConfig::full_mesh(node, NODES, ElectorKind::OmegaL)
                        .with_auto_join(GROUP, JoinConfig::candidate()),
                )
            }),
            PerfectMedium,
            seed,
        );
        let mut observer = CountingObserver::new();
        world.run_for(settle, &mut observer);

        // Exactly one node still competes, and it hosts the agreed leader.
        let competing: Vec<NodeId> = (0..NODES as u32)
            .map(NodeId)
            .filter(|&n| world.actor(n).is_some_and(|a| a.is_competing(GROUP)))
            .collect();
        assert_eq!(competing.len(), 1, "seed {seed}: competitors {competing:?}");
        let leader = competing[0];
        for n in (0..NODES as u32).map(NodeId) {
            assert_eq!(
                world.actor(n).unwrap().leader_of(GROUP).map(|p| p.node),
                Some(leader),
                "seed {seed}: {n} disagrees"
            );
        }

        let alives_at = |world: &World<ServiceNode, PerfectMedium>| -> Vec<u64> {
            (0..NODES as u32)
                .map(|i| world.actor(NodeId(i)).unwrap().alive_payloads_sent())
                .collect()
        };
        let before = alives_at(&world);
        let sent_before = observer.sent;
        world.run_for(window, &mut observer);
        let after = alives_at(&world);

        // Only the leader's ALIVE counter moves during the window.
        let mut leader_alives = 0;
        for i in 0..NODES {
            let delta = after[i] - before[i];
            if NodeId(i as u32) == leader {
                assert!(delta > 0, "seed {seed}: the leader must keep sending");
                leader_alives = delta;
            } else {
                assert_eq!(
                    delta, 0,
                    "seed {seed}: defeated candidate n{i} sent {delta} ALIVEs"
                );
            }
        }

        // Message-count accounting over the sim stats: everything sent in
        // the window is the leader's ALIVEs or HELLO gossip (every node
        // gossips to its n-1 peers once per 1 s hello interval).
        let sent_window = observer.sent - sent_before;
        let hello_window = sent_window - leader_alives;
        let hellos_per_round = (NODES * (NODES - 1)) as u64;
        let rounds = window.as_secs_f64() as u64;
        assert_eq!(
            hello_window,
            hellos_per_round * rounds,
            "seed {seed}: unexpected non-ALIVE traffic in the window"
        );
        // The leader heartbeats its 5 peers at the most demanding interval
        // its monitors requested — somewhere between the configurator's
        // floor and the 250 ms default, so 40..=60 sends per peer in 10 s.
        let per_peer = leader_alives / (NODES as u64 - 1);
        assert!(
            (40..=60).contains(&per_peer),
            "seed {seed}: unexpected ALIVE cadence ({per_peer} per peer in 10 s)"
        );
    }
}
