//! Property-based tests (proptest) of the core data structures and
//! invariants: candidate ranking, the failure-detector configurator, the
//! link-quality estimator, the freshness monitor and simulator determinism.

use proptest::prelude::*;

use sle_election::{AlivePayload, LeaderElector, OmegaL, OmegaLc, Rank};
use sle_fd::{FdConfigurator, LinkQuality, LinkQualityEstimator, PeerMonitor, QosSpec};
use sle_sim::actor::NodeId;
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};

fn instant(nanos: u64) -> SimInstant {
    SimInstant::from_nanos(nanos)
}

proptest! {
    /// Rank ordering is total, antisymmetric and prefers earlier accusation
    /// times regardless of identifiers.
    #[test]
    fn rank_ordering_is_consistent(a_acc in 0u64..1_000_000, a_id in 0u32..64,
                                   b_acc in 0u64..1_000_000, b_id in 0u32..64) {
        let a = Rank::new(instant(a_acc), NodeId(a_id));
        let b = Rank::new(instant(b_acc), NodeId(b_id));
        // Total order.
        prop_assert_eq!(a.cmp(&b), b.cmp(&a).reverse());
        // Earlier accusation time always wins.
        if a_acc < b_acc {
            prop_assert!(a < b);
        }
        // Equal components means equal ranks.
        if a_acc == b_acc && a_id == b_id {
            prop_assert_eq!(a, b);
        }
    }

    /// The configurator always respects the detection bound (η + δ = T_D^U)
    /// and its interval floor, whatever the link looks like.
    #[test]
    fn configurator_respects_detection_bound(
        loss in 0.0f64..0.9,
        delay_ms in 0.0f64..500.0,
        jitter_ms in 0.0f64..500.0,
        detection_ms in 50u64..5_000,
    ) {
        let configurator = FdConfigurator::default();
        let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(detection_ms));
        let quality = LinkQuality::from_parts(
            loss,
            SimDuration::from_millis_f64(delay_ms),
            SimDuration::from_millis_f64(jitter_ms),
        );
        let params = configurator.compute(&qos, &quality);
        prop_assert_eq!(params.interval + params.shift, qos.detection_time());
        prop_assert!(params.interval >= configurator.options().min_interval.min(qos.detection_time()));
        prop_assert!(params.interval <= qos.detection_time());
    }

    /// The estimator's loss probability stays within [0, 1] and its delay
    /// estimates are never negative, for arbitrary arrival patterns.
    #[test]
    fn estimator_outputs_are_well_formed(
        seqs in proptest::collection::vec(0u64..500, 1..100),
        delays_us in proptest::collection::vec(0u64..1_000_000, 1..100),
    ) {
        let mut estimator = LinkQualityEstimator::new(64);
        for (i, &seq) in seqs.iter().enumerate() {
            let delay = SimDuration::from_micros(delays_us[i % delays_us.len()]);
            let sent = instant(seq * 1_000_000);
            estimator.record(seq, sent, sent + delay);
        }
        let quality = estimator.estimate();
        prop_assert!((0.0..=1.0).contains(&quality.loss_probability));
        prop_assert!(quality.delay_mean >= SimDuration::ZERO);
        prop_assert!(quality.delay_std_dev >= SimDuration::ZERO);
    }

    /// NFD-S monitor invariant: after a heartbeat sent at time s with
    /// interval η, the peer cannot stay trusted past s + η + δ without any
    /// further heartbeat (the crash-detection bound of Chen et al.).
    #[test]
    fn monitor_never_trusts_past_the_freshness_horizon(
        interval_ms in 10u64..1_000,
        heartbeats in 1usize..50,
    ) {
        let qos = QosSpec::paper_default();
        let mut monitor = PeerMonitor::new(qos, SimInstant::ZERO);
        let interval = SimDuration::from_millis(interval_ms);
        let mut now = SimInstant::ZERO;
        let mut last_sent = SimInstant::ZERO;
        for seq in 0..heartbeats as u64 {
            now = now + interval;
            last_sent = now;
            monitor.on_heartbeat(seq, last_sent, interval, now);
        }
        // The freshness horizon never exceeds last_sent + clamped interval + shift,
        // and the clamped interval plus shift is at most interval + T_D.
        let bound = last_sent + interval.min(qos.detection_time()) + qos.detection_time();
        prop_assert!(monitor.deadline() <= bound);
        // And a check at the horizon suspects the peer.
        let deadline = monitor.deadline();
        prop_assert!(monitor.check(deadline).is_some() || !monitor.is_trusted());
    }

    /// Stability invariant of the accusation-time algorithms: a process that
    /// joins later than the incumbent (and with no accusations around) never
    /// takes the leadership away, whatever the ids are.
    #[test]
    fn later_joiners_never_outrank_incumbents(
        incumbent_id in 0u32..32,
        joiner_id in 0u32..32,
        gap_ms in 1u64..100_000,
    ) {
        prop_assume!(incumbent_id != joiner_id);
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_millis(gap_ms);
        let incumbent_lc = OmegaLc::new(NodeId(incumbent_id), true, t0);
        let mut joiner_lc = OmegaLc::new(NodeId(joiner_id), true, t1);
        joiner_lc.on_alive(NodeId(incumbent_id), incumbent_lc.alive_payload(), t1);
        prop_assert_eq!(joiner_lc.leader(), Some(NodeId(incumbent_id)));

        let incumbent_l = sle_election::OmegaL::new(NodeId(incumbent_id), true, t0);
        let mut joiner_l = OmegaL::new(NodeId(joiner_id), true, t1);
        joiner_l.on_alive(NodeId(incumbent_id), incumbent_l.alive_payload(), t1);
        prop_assert_eq!(joiner_l.leader(), Some(NodeId(incumbent_id)));
        prop_assert!(!joiner_l.is_competing(), "the later joiner must withdraw");
    }

    /// Epoch guard: accusations that do not reference the current epoch never
    /// change a process's accusation time.
    #[test]
    fn stale_accusations_are_ignored(epoch in 1u64..1_000, at_ms in 0u64..10_000) {
        let mut elector = OmegaLc::new(NodeId(1), true, SimInstant::ZERO);
        let before = elector.accusation_time();
        // Any epoch other than the current one (0) must be ignored.
        elector.on_accusation(epoch, instant(at_ms * 1_000_000));
        prop_assert_eq!(elector.accusation_time(), before);
    }

    /// The exponential sampler is deterministic per seed and produces only
    /// non-negative durations.
    #[test]
    fn exponential_sampling_is_deterministic(seed in 0u64..u64::MAX, mean_ms in 1u64..10_000) {
        let mean = SimDuration::from_millis(mean_ms);
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            let x = a.exponential(mean);
            let y = b.exponential(mean);
            prop_assert_eq!(x, y);
        }
    }

    /// ALIVE payload wire sizes are consistent: adding the forwarding claim
    /// adds exactly 12 bytes.
    #[test]
    fn payload_wire_size_is_consistent(acc in 0u64..u64::MAX / 2, epoch in 0u64..u64::MAX) {
        let without = AlivePayload {
            accusation_time: SimInstant::from_nanos(acc),
            epoch,
            local_leader: None,
        };
        let with = AlivePayload {
            local_leader: Some(sle_election::LeaderClaim {
                node: NodeId(3),
                accusation_time: SimInstant::from_nanos(acc),
            }),
            ..without
        };
        prop_assert_eq!(with.wire_size(), without.wire_size() + 12);
    }
}
