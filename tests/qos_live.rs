//! Live QoS acceptance: a real-time cluster with observability attached
//! must export T_D / T_MR evidence that meets the paper's §3 bounds, and
//! its drained protocol trace must replay cleanly through the chaos
//! invariant checker.
//!
//! This closes the loop the `sle-obs` crate exists for: the same QoS
//! quantities the simulation harness measures offline are read here from
//! the *live* registry of a wall-clock deployment — elect, crash the
//! leader, re-elect, then check the histograms and the trace.

use std::time::{Duration, Instant};

use sle_chaos::{check_trace, convert_trace, InvariantSpec, TraceEventKind};
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig, ProcessId, ServiceConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::InMemoryMesh;
use sle_obs::Registry;
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::NodeId;

const NODES: usize = 5;
const GROUP: GroupId = GroupId(1);

fn wait_for_leader(
    cluster: &Cluster,
    members: &[NodeId],
    deadline: Instant,
    phase: &str,
    not: Option<NodeId>,
) -> ProcessId {
    loop {
        if let Some(leader) = cluster.agreed_leader_among(GROUP, members) {
            if Some(leader.node) != not {
                return leader;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{phase}: no agreed leader within the QoS-derived bound"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn live_qos_histograms_and_drained_trace_meet_the_paper_bounds() {
    let qos = QosSpec::paper_default();
    let t_d = Duration::from_nanos(qos.detection_time().as_nanos());
    // Same bound derivation as tests/runtime_scale.rs: grace, convergence,
    // and scheduling slack for a loaded CI machine.
    let bound = t_d * 4 + Duration::from_secs(2);

    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(NODES, LinkSpec::perfect(), 7);
    let endpoints: Vec<_> = (0..NODES)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect();
    let members: Vec<NodeId> = (0..NODES).map(|i| NodeId(i as u32)).collect();
    let configs: Vec<ServiceConfig> = (0..NODES)
        .map(|i| {
            ServiceConfig::new(NodeId(i as u32), members.clone(), ElectorKind::OmegaLc)
                .with_hello_interval(SimDuration::from_millis(200))
                .with_auto_join(GROUP, JoinConfig::candidate().with_qos(qos))
        })
        .collect();

    let registry = Registry::default();
    let options = ClusterConfig::new(ElectorKind::OmegaLc)
        .with_workers(2)
        .with_observability(registry.clone());
    let started = Instant::now();
    let cluster = Cluster::start_with_service_configs(endpoints, configs, &options);
    assert!(cluster.obs_registry().is_some(), "observability attached");

    let first = wait_for_leader(
        &cluster,
        &members,
        started + bound,
        "initial election",
        None,
    );

    // `agreed_leader_among` queries the live elector view; the leader's own
    // *announcement* (which closes its election episode and traces the
    // change) waits out the self-election grace. Hold the crash until every
    // node has announced, so the injected failure hits a settled group.
    while registry
        .merged_histogram("node.", ".elect.election_ns")
        .count
        < NODES as u64
    {
        assert!(
            Instant::now() < started + bound,
            "not every node announced a leader within the QoS-derived bound"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    // A genuine crash: detection must fire within T_D^U and, because the
    // suspicion is justified, without charging the T_MR mistake budget.
    cluster.crash(first.node);
    let survivors: Vec<NodeId> = members
        .iter()
        .copied()
        .filter(|&m| m != first.node)
        .collect();
    let second = wait_for_leader(
        &cluster,
        &survivors,
        Instant::now() + bound,
        "failover election",
        Some(first.node),
    );
    assert_ne!(second.node, first.node);

    let snapshot = registry.snapshot();

    // T_D: every recorded detection latency within the paper bound. The
    // log2 buckets round a sample up by at most 2x; the constant absorbs
    // scheduler jitter between the missed heartbeat and the timer firing.
    let detections = snapshot.merged_histogram("node.", ".fd.detection_ns");
    assert!(detections.count >= 1, "the crash was detected somewhere");
    let t_d_ms = t_d.as_secs_f64() * 1e3;
    let worst_ms = detections.percentile_ms(1.0);
    assert!(
        worst_ms <= 2.0 * t_d_ms + 500.0,
        "detection tail {worst_ms:.1} ms exceeds the paper bound T_D^U = {t_d_ms:.0} ms"
    );

    // T_MR: a clean run (real crash, no false suspicion) records zero
    // detector mistakes.
    let mistakes = snapshot.sum_counters("node.", ".fd.mistakes");
    assert_eq!(mistakes, 0, "clean crash run charged the mistake budget");

    // Recovery: every node closed at least its initial election episode.
    let elections = snapshot.merged_histogram("node.", ".elect.election_ns");
    assert!(
        elections.count >= NODES as u64,
        "expected >= {NODES} election-latency samples, got {}",
        elections.count
    );

    // The drained runtime trace replays through the chaos checker: the
    // paper's invariants hold for the deployment, not just the simulation.
    let drain = cluster.drain_trace();
    assert_eq!(drain.dropped, 0, "trace ring overflowed");
    let converted = convert_trace(&drain.events, GROUP);
    assert!(
        converted.iter().any(|e| matches!(
            e.kind,
            TraceEventKind::View {
                leader: Some(_),
                ..
            }
        )),
        "trace carries leader announcements"
    );
    assert!(
        converted
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Crashed { .. })),
        "trace carries the injected crash"
    );
    let end = drain
        .events
        .last()
        .map(|record| record.at)
        .unwrap_or(SimInstant::ZERO);
    let spec = InvariantSpec {
        algorithm: ElectorKind::OmegaLc,
        nodes: NODES,
        qos,
        settle: SimDuration::from_secs_f64(bound.as_secs_f64()),
        end,
    };
    let violations = check_trace(&converted, &spec);
    assert!(
        violations.is_empty(),
        "runtime trace violated paper invariants: {violations:#?}"
    );

    cluster.shutdown();
}
