//! Integration test for the UDP endpoint's datagram hardening: garbage
//! injected into a *live* socket — one carrying real election traffic —
//! must be dropped, attributed to the right per-reason counter, and must
//! not disturb the service.

use std::net::UdpSocket;
use std::time::{Duration, Instant};

use sle_core::{Cluster, GroupId, JoinConfig, ServiceMessage};
use sle_election::ElectorKind;
use sle_sim::actor::NodeId;
use sle_udp::bind_loopback_mesh;
use sle_wire::{encode_frame, MAX_DATAGRAM};

const GROUP: GroupId = GroupId(1);

#[test]
fn per_reason_drop_counters_increment_on_a_live_socket() {
    // A real 3-node deployment over loopback UDP.
    let endpoints = bind_loopback_mesh::<ServiceMessage>(3).expect("bind loopback sockets");
    let target = endpoints[0].local_addr().expect("bound socket has an addr");
    let stats = endpoints[0].stats_handle();
    let cluster = Cluster::start_with_endpoints(endpoints, ElectorKind::OmegaLc);
    for i in 0..3u32 {
        cluster
            .handle(NodeId(i))
            .expect("handle exists")
            .join(GROUP, JoinConfig::candidate())
            .expect("join");
    }
    // The cluster is live: the election settles over the same socket we are
    // about to attack.
    cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .expect("initial election over UDP");

    let attacker = UdpSocket::bind("127.0.0.1:0").expect("bind attacker socket");
    let inject = |epoch: u64| {
        // Oversized: larger than any frame the codec will even look at.
        attacker
            .send_to(&[0u8; MAX_DATAGRAM + 1], target)
            .expect("send oversized");
        // Malformed: sized like a frame, rejected by the codec.
        attacker
            .send_to(b"not a frame at all, sorry", target)
            .expect("send malformed");
        // Spoofed: a perfectly well-formed frame claiming to be node 1,
        // but from a source address that is not in the address book.
        let spoof = encode_frame(
            NodeId(1),
            &ServiceMessage::Accuse {
                group: GROUP,
                epoch,
            },
        )
        .expect("encode spoofed frame");
        attacker.send_to(&spoof, target).expect("send spoofed");
    };

    // The reader thread drains asynchronously, and loopback UDP is not
    // lossless under load — so keep re-injecting until every reason has
    // been attributed at least once. (Exact per-reason accounting on an
    // unloaded socket is covered by the sle-udp unit tests.)
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut round = 0u64;
    loop {
        inject(round);
        round += 1;
        std::thread::sleep(Duration::from_millis(20));
        let snapshot = stats.snapshot();
        if snapshot.dropped_oversized >= 1
            && snapshot.dropped_malformed >= 1
            && snapshot.dropped_misaddressed >= 1
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "some drop reason was never attributed: {snapshot:?}"
        );
    }

    let snapshot = stats.snapshot();
    // Nothing is ever over-attributed: each reason counts at most its own
    // injections, and real protocol traffic contributes to `delivered` only.
    assert!(snapshot.dropped_oversized <= round);
    assert!(snapshot.dropped_malformed <= round);
    assert!(snapshot.dropped_misaddressed <= round);
    assert!(
        snapshot.delivered > 0,
        "legitimate election traffic must keep flowing"
    );

    // And the attack changed nothing for the application: the group still
    // agrees on a leader afterwards.
    cluster
        .await_agreement(GROUP, None, Duration::from_secs(10))
        .expect("agreement survives the garbage flood");
    cluster.shutdown();
}
