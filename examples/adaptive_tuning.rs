//! Static vs adaptive QoS tuning under a network regime shift.
//!
//! The network starts congested (40 ms exponential delays, 2% loss) and
//! clears up to the paper's LAN at t = 30 s; the commonly agreed leader is
//! crashed at t = 60 s. With the paper's static per-join configuration the
//! failure detector keeps its worst-case detection time at T_D^U = 1 s
//! forever; the adaptive tuner measures the improvement and tightens the
//! bound, so the crash is detected — and the group recovers — faster, at
//! the same mistake budget.
//!
//! Run with: `cargo run --release --example adaptive_tuning`

use sle_election::ElectorKind;
use sle_harness::RegimeShiftScenario;

fn main() {
    println!("regime shift: (D=40ms, pL=0.02) -> LAN at t=30s; leader crash at t=60s\n");
    println!(
        "{:<16} {:>8} {:>14} {:>12} {:>10} {:>16}",
        "service", "tuning", "eta+delta (s)", "Tr (s)", "mistakes", "P_leader"
    );
    for algorithm in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        let scenario = RegimeShiftScenario::improving_network("demo", algorithm);
        let comparison = scenario.compare();
        for (label, outcome) in [
            ("static", &comparison.static_outcome),
            ("adaptive", &comparison.adaptive_outcome),
        ] {
            println!(
                "{:<16} {:>8} {:>14.3} {:>12.3} {:>10} {:>16.5}",
                algorithm.to_string(),
                label,
                outcome
                    .detection_bound_towards_leader
                    .map(|b| b.as_secs_f64())
                    .unwrap_or(f64::NAN),
                outcome.recovery_seconds(),
                outcome.metrics.unjustified_demotions,
                outcome.metrics.leader_availability,
            );
        }
        assert!(
            comparison.adaptive_no_worse(),
            "{algorithm}: adaptive tuning must not be worse than static"
        );
    }
    println!("\nadaptive detection is bounded by the static T_D^U and tightens when the");
    println!("measured network allows it; mistakes never exceed the static run's.");
}
