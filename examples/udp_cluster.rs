//! The service over real sockets: N workstations on loopback UDP, the
//! paper's actual deployment shape (one daemon per host exchanging
//! datagrams), electing a stable leader, surviving the leader's crash.
//!
//! Run with: `cargo run --example udp_cluster`
//!
//! Expected output (ports, node numbers and timings vary):
//!
//! ```text
//! 5 sle-udp endpoints bound on loopback:
//!   n0 @ 127.0.0.1:41234
//!   ...
//! joining 5 candidate processes to group g1...
//! elected leader n2.p0 after 1.352s
//! crashing the leader's workstation (n2)...
//! re-elected n0.p0 after 2.104s
//! node n0 datagrams: delivered=412 dropped(oversized=0 malformed=0 misaddressed=0) unencodable=0
//! done.
//! ```

use std::time::{Duration, Instant};

use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_net::transport::MessageEndpoint;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;
use sle_udp::bind_loopback_mesh;

fn main() {
    let n = 5;
    let endpoints = bind_loopback_mesh::<ServiceMessage>(n).expect("bind loopback sockets");

    println!("{n} sle-udp endpoints bound on loopback:");
    for endpoint in &endpoints {
        println!(
            "  {} @ {}",
            endpoint.node(),
            endpoint.local_addr().expect("bound socket has an address")
        );
    }
    // The endpoints move into the cluster's node threads, so take a live
    // handle on node 0's datagram counters before they go.
    let n0_stats = endpoints[0].stats_handle();
    let cluster = Cluster::start_with_endpoints(endpoints, ElectorKind::OmegaLc);
    let group = GroupId(1);

    println!("joining {n} candidate processes to group {group}...");
    for i in 0..n as u32 {
        cluster
            .handle(NodeId(i))
            .unwrap()
            .join(group, JoinConfig::candidate())
            .expect("join must succeed");
    }

    let started = Instant::now();
    let leader = cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect("the group should elect a leader within seconds");
    println!(
        "elected leader {} after {}",
        leader,
        SimDuration::from(started.elapsed())
    );

    println!("crashing the leader's workstation ({})...", leader.node);
    cluster.crash(leader.node);

    let crashed_at = Instant::now();
    let new_leader = cluster
        .await_agreement(group, Some(leader.node), Duration::from_secs(15))
        .expect("the group should re-elect a leader after the crash");
    println!(
        "re-elected {} after {}",
        new_leader,
        SimDuration::from(crashed_at.elapsed())
    );
    assert_ne!(new_leader.node, leader.node);

    cluster.shutdown();
    let stats = n0_stats.snapshot();
    println!(
        "node n0 datagrams: delivered={} dropped(oversized={} malformed={} misaddressed={}) unencodable={}",
        stats.delivered,
        stats.dropped_oversized,
        stats.dropped_malformed,
        stats.dropped_misaddressed,
        stats.send_unencodable
    );
    println!("done.");
}
