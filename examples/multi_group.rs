//! Dynamic, overlapping groups with different roles and QoS — the features
//! of the service API that the evaluation does not exercise:
//!
//! * a process may belong to several groups at once,
//! * some members are passive listeners (not leadership candidates),
//! * each group can pick its own failure-detection QoS, and
//! * groups can be used as levels of a hierarchy (the paper's suggestion for
//!   scaling to very large networks: a group of local leaders, a group of
//!   regional leaders, ...).
//!
//! Run with: `cargo run --example multi_group`

use std::time::{Duration, Instant};

use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig, ProcessId};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

fn wait_leader(cluster: &Cluster, group: GroupId, nodes: &[NodeId]) -> Option<ProcessId> {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        let views: Vec<Option<ProcessId>> = nodes
            .iter()
            .map(|&n| cluster.handle(n).unwrap().leader_of(group))
            .collect();
        if let Some(Some(first)) = views.first() {
            if views.iter().all(|v| *v == Some(*first)) {
                return Some(*first);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

fn main() {
    let n = 6usize;
    // Six workstations sharing a 2-worker shard pool, gossiping every
    // 100 ms — the explicit deployment surface behind `Cluster::start`
    // (which keeps the defaults: one worker per node, 200 ms HELLOs).
    let cluster = Cluster::start_with_config(
        n,
        ClusterConfig::new(ElectorKind::OmegaL)
            .with_workers(2)
            .with_hello_interval(SimDuration::from_millis(100)),
    );

    // Two "regional" groups of three workstations each, plus one "global"
    // group joined by every workstation — a two-level hierarchy.
    let region_a = GroupId(10);
    let region_b = GroupId(11);
    let global = GroupId(42);

    let fast_qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(500));

    for i in 0..n as u32 {
        let node = NodeId(i);
        let handle = cluster.handle(node).unwrap();
        let region = if i < 3 { region_a } else { region_b };
        // Candidate in its region, with a faster failure detector.
        handle
            .join(region, JoinConfig::candidate().with_qos(fast_qos))
            .expect("join region");
        // In the global group, nodes 0 and 3 are candidates; the rest are
        // passive listeners that only want to know who the global leader is.
        let global_join = if i % 3 == 0 {
            JoinConfig::candidate()
        } else {
            JoinConfig::listener()
        };
        handle.join(global, global_join).expect("join global");
    }

    let nodes_a: Vec<NodeId> = (0..3u32).map(NodeId).collect();
    let nodes_b: Vec<NodeId> = (3..6u32).map(NodeId).collect();
    let all: Vec<NodeId> = (0..6u32).map(NodeId).collect();

    let leader_a = wait_leader(&cluster, region_a, &nodes_a).expect("region A leader");
    let leader_b = wait_leader(&cluster, region_b, &nodes_b).expect("region B leader");
    let leader_global = wait_leader(&cluster, global, &all).expect("global leader");

    println!("region A leader : {leader_a}");
    println!("region B leader : {leader_b}");
    println!("global leader   : {leader_global} (listeners follow without competing)");

    assert!(leader_a.node.0 < 3);
    assert!(leader_b.node.0 >= 3);
    assert!(
        leader_global.node.0.is_multiple_of(3),
        "only candidates may lead the global group"
    );

    // A process can leave one group and keep its other memberships. Poll the
    // *remaining* members: the departed process no longer has a view of the
    // group it left.
    let handle = cluster.handle(leader_a.node).unwrap();
    assert!(handle.leave(region_a, leader_a));
    let remaining_a: Vec<NodeId> = nodes_a
        .iter()
        .copied()
        .filter(|&n| n != leader_a.node)
        .collect();
    let new_leader_a = {
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut found = None;
        while Instant::now() < deadline && found.is_none() {
            if let Some(candidate) = wait_leader(&cluster, region_a, &remaining_a) {
                if candidate != leader_a {
                    found = Some(candidate);
                }
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        found
    };
    println!("region A leader after the old leader left: {new_leader_a:?}");
    assert!(
        new_leader_a.is_some(),
        "region A must re-elect after the leave"
    );

    cluster.shutdown();
    println!("done.");
}
