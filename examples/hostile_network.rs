//! Reproduce, in a few seconds, the paper's headline stress test: 12
//! workstations that each crash every 10 minutes on average, over links that
//! lose one message in ten with a 100 ms average delay — and report the three
//! QoS metrics of Section 5 for the S2 and S3 versions of the service.
//!
//! Run with: `cargo run --release --example hostile_network`

use sle_election::ElectorKind;
use sle_harness::Scenario;
use sle_net::link::LinkSpec;
use sle_sim::time::SimDuration;

fn main() {
    let link = LinkSpec::from_paper_tuple(100.0, 0.1);
    // 30 virtual minutes per service version keeps the example quick; the
    // `reproduce` binary runs the full-length versions.
    let minutes = 30;

    println!("12 workstations, crash every ~10 min, links (D=100ms, pL=0.1), {minutes} virtual minutes\n");
    println!(
        "{:<14} {:>10} {:>14} {:>12} {:>10} {:>10}",
        "service", "Tr (s)", "mistakes/hour", "P_leader", "CPU %", "KB/s"
    );
    for algorithm in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        let metrics = Scenario::paper_default("hostile", algorithm, link)
            .with_duration(SimDuration::from_secs(minutes * 60))
            .run();
        println!(
            "{:<14} {:>10.2} {:>14.2} {:>12.5} {:>10.3} {:>10.2}",
            algorithm.to_string(),
            metrics.recovery.mean,
            metrics.mistakes_per_hour,
            metrics.leader_availability,
            metrics.cpu_percent_per_node,
            metrics.kbytes_per_sec_per_node,
        );
    }
    println!("\nCompare with the paper: S2 -> 99.82% availability, 0.3% CPU, 62.38 KB/s;");
    println!("                        S3 -> 99.84% availability, 0.04% CPU, 6.48 KB/s.");
}
