//! Quickstart: start a small in-process cluster of the leader-election
//! service, let it elect a leader, crash the leader, and watch the service
//! re-elect.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Expected output (the elected node and the timings vary run to run;
//! durations are printed in human units via `SimDuration`'s `Display`):
//!
//! ```text
//! joining 5 candidate processes to group g1...
//!   node 0: registered and joined as n0.p0
//!   ...
//! elected leader n0.p0 after 312.408ms
//! crashing the leader's workstation (n0)...
//! new leader after the crash: n1.p0 (re-elected in 1.287s)
//! metrics on exit:
//!   detections: 4 (p99 812.3 ms), mistakes: 0
//!   elections:  5 (p50 310.1 ms, p99 2044.5 ms)
//!   ALIVE datagrams sent: 163
//! done.
//! ```

use std::time::{Duration, Instant};

use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_obs::Registry;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

fn main() {
    // Five workstations running the S2 (Omega_lc) version of the service,
    // with live observability attached (docs/OBSERVABILITY.md).
    let registry = Registry::default();
    let cluster = Cluster::start_with_config(
        5,
        ClusterConfig::new(ElectorKind::OmegaLc).with_observability(registry.clone()),
    );
    let group = GroupId(1);

    println!("joining 5 candidate processes to group {group}...");
    for i in 0..5u32 {
        let handle = cluster.handle(NodeId(i)).unwrap();
        let process = handle
            .join(group, JoinConfig::candidate())
            .expect("join must succeed");
        println!("  node {i}: registered and joined as {process}");
    }

    let started = Instant::now();
    let leader = cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect("the group should elect a leader within seconds");
    println!(
        "elected leader {} after {}",
        leader,
        SimDuration::from(started.elapsed())
    );

    println!("crashing the leader's workstation ({})...", leader.node);
    cluster.crash(leader.node);

    let crashed_at = Instant::now();
    let new_leader = cluster
        .await_agreement(group, Some(leader.node), Duration::from_secs(15))
        .expect("the group should re-elect a leader after the crash");
    println!(
        "new leader after the crash: {new_leader} (re-elected in {})",
        SimDuration::from(crashed_at.elapsed())
    );
    assert_ne!(new_leader.node, leader.node);

    cluster.shutdown();

    // The QoS evidence of the run, read from the live metrics registry:
    // the same histograms a deployment would export to Prometheus.
    let snapshot = registry.snapshot();
    let detections = snapshot.merged_histogram("node.", ".fd.detection_ns");
    let elections = snapshot.merged_histogram("node.", ".elect.election_ns");
    let mistakes = snapshot.sum_counters("node.", ".fd.mistakes");
    let datagrams = snapshot.sum_counters("node.", ".net.alive_datagrams_sent");
    println!("metrics on exit:");
    println!(
        "  detections: {} (p99 {:.1} ms), mistakes: {}",
        detections.count,
        detections.percentile_ms(0.99),
        mistakes
    );
    println!(
        "  elections:  {} (p50 {:.1} ms, p99 {:.1} ms)",
        elections.count,
        elections.percentile_ms(0.50),
        elections.percentile_ms(0.99)
    );
    println!("  ALIVE datagrams sent: {datagrams}");
    println!("done.");
}
