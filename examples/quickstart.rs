//! Quickstart: start a small in-process cluster of the leader-election
//! service, let it elect a leader, crash the leader, and watch the service
//! re-elect.
//!
//! Run with: `cargo run --example quickstart`
//!
//! Expected output (the elected node and the timings vary run to run;
//! durations are printed in human units via `SimDuration`'s `Display`):
//!
//! ```text
//! joining 5 candidate processes to group g1...
//!   node 0: registered and joined as n0.p0
//!   ...
//! elected leader n0.p0 after 312.408ms
//! crashing the leader's workstation (n0)...
//! new leader after the crash: n1.p0 (re-elected in 1.287s)
//! done.
//! ```

use std::time::{Duration, Instant};

use sle_core::{Cluster, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

fn main() {
    // Five workstations running the S2 (Omega_lc) version of the service.
    let cluster = Cluster::start(5, ElectorKind::OmegaLc);
    let group = GroupId(1);

    println!("joining 5 candidate processes to group {group}...");
    for i in 0..5u32 {
        let handle = cluster.handle(NodeId(i)).unwrap();
        let process = handle
            .join(group, JoinConfig::candidate())
            .expect("join must succeed");
        println!("  node {i}: registered and joined as {process}");
    }

    let started = Instant::now();
    let leader = cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect("the group should elect a leader within seconds");
    println!(
        "elected leader {} after {}",
        leader,
        SimDuration::from(started.elapsed())
    );

    println!("crashing the leader's workstation ({})...", leader.node);
    cluster.crash(leader.node);

    let crashed_at = Instant::now();
    let new_leader = cluster
        .await_agreement(group, Some(leader.node), Duration::from_secs(15))
        .expect("the group should re-elect a leader after the crash");
    println!(
        "new leader after the crash: {new_leader} (re-elected in {})",
        SimDuration::from(crashed_at.elapsed())
    );
    assert_ne!(new_leader.node, leader.node);

    cluster.shutdown();
    println!("done.");
}
