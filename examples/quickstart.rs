//! Quickstart: start a small in-process cluster of the leader-election
//! service, let it elect a leader, crash the leader, and watch the service
//! re-elect.
//!
//! Run with: `cargo run --example quickstart`

use std::time::{Duration, Instant};

use sle_core::{Cluster, GroupId, JoinConfig, ProcessId};
use sle_election::ElectorKind;
use sle_sim::NodeId;

/// Polls every node until they agree on a leader (or the timeout expires).
fn wait_for_agreement(
    cluster: &Cluster,
    group: GroupId,
    exclude: Option<NodeId>,
    timeout: Duration,
) -> Option<ProcessId> {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        let views: Vec<Option<ProcessId>> = (0..cluster.len() as u32)
            .map(NodeId)
            .filter(|&n| Some(n) != exclude)
            .map(|n| cluster.handle(n).unwrap().leader_of(group))
            .collect();
        if let Some(Some(first)) = views.first() {
            if views.iter().all(|v| *v == Some(*first)) && Some(first.node) != exclude {
                return Some(*first);
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    None
}

fn main() {
    // Five workstations running the S2 (Omega_lc) version of the service.
    let cluster = Cluster::start(5, ElectorKind::OmegaLc);
    let group = GroupId(1);

    println!("joining 5 candidate processes to group {group}...");
    for i in 0..5u32 {
        let handle = cluster.handle(NodeId(i)).unwrap();
        let process = handle
            .join(group, JoinConfig::candidate())
            .expect("join must succeed");
        println!("  node {i}: registered and joined as {process}");
    }

    let leader = wait_for_agreement(&cluster, group, None, Duration::from_secs(10))
        .expect("the group should elect a leader within seconds");
    println!("elected leader: {leader}");

    println!("crashing the leader's workstation ({})...", leader.node);
    cluster.crash(leader.node);

    let new_leader =
        wait_for_agreement(&cluster, group, Some(leader.node), Duration::from_secs(15))
            .expect("the group should re-elect a leader after the crash");
    println!("new leader after the crash: {new_leader}");
    assert_ne!(new_leader.node, leader.node);

    cluster.shutdown();
    println!("done.");
}
