//! A leader-based application on top of the service: a replicated counter
//! in which only the current leader accepts increments (the classic
//! coordinator pattern the paper's introduction motivates — the leader
//! serialises updates so the replicas stay consistent).
//!
//! Run with: `cargo run --example replicated_counter`
//!
//! Expected output (the elected node and the timing vary run to run;
//! durations are printed in human units via `SimDuration`'s `Display`):
//!
//! ```text
//! leader is n0.p0 (elected in 287.551ms); routing all increments through it
//! accepted 100 increments through the leader
//!   replica n0 has value 100
//!   replica n1 has value 100
//!   replica n2 has value 100
//!   replica n3 has value 100
//! replicas are consistent; done.
//! ```

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sle_core::{Cluster, GroupId, JoinConfig, ProcessId};
use sle_election::ElectorKind;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

/// One replica of the counter application.
struct Replica {
    node: NodeId,
    process: ProcessId,
    value: u64,
}

fn main() {
    let n = 4u32;
    let cluster = Cluster::start(n as usize, ElectorKind::OmegaL);
    let group = GroupId(9);

    let mut replicas: BTreeMap<NodeId, Replica> = BTreeMap::new();
    for i in 0..n {
        let node = NodeId(i);
        let process = cluster
            .handle(node)
            .unwrap()
            .join(group, JoinConfig::candidate())
            .expect("join");
        replicas.insert(
            node,
            Replica {
                node,
                process,
                value: 0,
            },
        );
    }

    // Wait for a leader.
    let started = Instant::now();
    let leader = cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect("no leader elected");
    println!(
        "leader is {leader} (elected in {}); routing all increments through it",
        SimDuration::from(started.elapsed())
    );

    // The "clients" submit 100 increments. Each increment is accepted only
    // by the replica that currently considers itself the leader, then
    // (trivially, in-process) replicated to the others.
    let mut accepted = 0u64;
    for _ in 0..100 {
        let current = cluster.agreed_leader(group, None);
        if let Some(current) = current {
            // Only the leader's replica accepts the write.
            for replica in replicas.values_mut() {
                if replica.process == current {
                    replica.value += 1;
                    accepted += 1;
                }
            }
            // Replicate to the others.
            let new_value = replicas
                .values()
                .find(|r| r.process == current)
                .map(|r| r.value)
                .unwrap_or(0);
            for replica in replicas.values_mut() {
                replica.value = replica.value.max(new_value);
            }
        }
    }

    println!("accepted {accepted} increments through the leader");
    for replica in replicas.values() {
        println!("  replica {} has value {}", replica.node, replica.value);
    }
    let values: Vec<u64> = replicas.values().map(|r| r.value).collect();
    assert!(values.windows(2).all(|w| w[0] == w[1]), "replicas diverged");

    cluster.shutdown();
    println!("replicas are consistent; done.");
}
