//! A leader-based application on top of the service: a replicated counter
//! in which only the current leader accepts increments (the classic
//! coordinator pattern the paper's introduction motivates — the leader
//! serialises updates so the replicas stay consistent).
//!
//! Run with: `cargo run --example replicated_counter`

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use sle_core::{Cluster, GroupId, JoinConfig, ProcessId};
use sle_election::ElectorKind;
use sle_sim::NodeId;

/// One replica of the counter application.
struct Replica {
    node: NodeId,
    process: ProcessId,
    value: u64,
}

fn agreed_leader(cluster: &Cluster, group: GroupId, n: u32) -> Option<ProcessId> {
    let views: Vec<Option<ProcessId>> = (0..n)
        .map(|i| cluster.handle(NodeId(i)).unwrap().leader_of(group))
        .collect();
    match views.first() {
        Some(Some(first)) if views.iter().all(|v| *v == Some(*first)) => Some(*first),
        _ => None,
    }
}

fn main() {
    let n = 4u32;
    let cluster = Cluster::start(n as usize, ElectorKind::OmegaL);
    let group = GroupId(9);

    let mut replicas: BTreeMap<NodeId, Replica> = BTreeMap::new();
    for i in 0..n {
        let node = NodeId(i);
        let process = cluster
            .handle(node)
            .unwrap()
            .join(group, JoinConfig::candidate())
            .expect("join");
        replicas.insert(
            node,
            Replica {
                node,
                process,
                value: 0,
            },
        );
    }

    // Wait for a leader.
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut leader = None;
    while Instant::now() < deadline && leader.is_none() {
        leader = agreed_leader(&cluster, group, n);
        std::thread::sleep(Duration::from_millis(50));
    }
    let leader = leader.expect("no leader elected");
    println!("leader is {leader}; routing all increments through it");

    // The "clients" submit 100 increments. Each increment is accepted only
    // by the replica that currently considers itself the leader, then
    // (trivially, in-process) replicated to the others.
    let mut accepted = 0u64;
    for _ in 0..100 {
        let current = agreed_leader(&cluster, group, n);
        if let Some(current) = current {
            // Only the leader's replica accepts the write.
            for replica in replicas.values_mut() {
                if replica.process == current {
                    replica.value += 1;
                    accepted += 1;
                }
            }
            // Replicate to the others.
            let new_value = replicas
                .values()
                .find(|r| r.process == current)
                .map(|r| r.value)
                .unwrap_or(0);
            for replica in replicas.values_mut() {
                replica.value = replica.value.max(new_value);
            }
        }
    }

    println!("accepted {accepted} increments through the leader");
    for replica in replicas.values() {
        println!("  replica {} has value {}", replica.node, replica.value);
    }
    let values: Vec<u64> = replicas.values().map(|r| r.value).collect();
    assert!(values.windows(2).all(|w| w[0] == w[1]), "replicas diverged");

    cluster.shutdown();
    println!("replicas are consistent; done.");
}
