//! A leader-based application on top of the service, built on the `sle-app`
//! client tier: a fenced replicated counter in which only the current
//! leader's replica accepts increments, each write is checked against the
//! leader's fencing token, and a deposed leader's delayed writes are
//! rejected (the classic coordinator pattern the paper's introduction
//! motivates, hardened against the leader *changing* mid-stream).
//!
//! Run with: `cargo run --example replicated_counter`
//!
//! Expected output (the elected node and the timing vary run to run):
//!
//! ```text
//! leader is n0.p0 (elected in 287.551ms); routing increments through it
//! workload 1: 200 increments applied, 0 retries
//! crashing the leader n0 mid-service...
//! workload 2: 200 increments applied through the re-elected leader n1 (103 retries)
//! deposed leader's delayed write: rejected (presented token below high-water)
//! audit: 400 accepts, 0 fencing violations
//! replicas stayed fenced; done.
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use sle_app::{ClientConfig, ClientHub, FencedCounter, FencingAudit};
use sle_core::lease::FencedApp;
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::InMemoryMesh;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

/// Polls until `node` reports a lease for `group` (the mint can trail the
/// agreement by one protocol event) and returns its fencing token.
fn await_lease(cluster: &Cluster, node: NodeId, group: GroupId) -> sle_core::FencingToken {
    let handle = cluster.handle(node).expect("handle");
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if let Some(lease) = handle.lease_of(group) {
            return lease.token;
        }
        assert!(Instant::now() < deadline, "{node} never minted a lease");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn main() {
    let servers = 3usize;
    let group = GroupId(9);

    // One endpoint per service node plus one for the client hub: the hub is
    // just another identity on the transport, outside the cluster.
    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(servers + 1, LinkSpec::perfect(), 42);
    let endpoints = (0..servers)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect();
    let client_endpoint = mesh.endpoint(NodeId(servers as u32)).expect("endpoint");

    let cluster =
        Cluster::start_endpoints_with_config(endpoints, ClusterConfig::new(ElectorKind::OmegaL));

    // Install one fenced counter replica per node; they share an audit
    // ledger so the token order of every accepted write can be checked.
    let audit = FencingAudit::shared();
    let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(250));
    for i in 0..servers as u32 {
        let handle = cluster.handle(NodeId(i)).expect("handle");
        handle.install_app(Box::new(FencedCounter::with_audit(Arc::clone(&audit))));
        handle
            .join(group, JoinConfig::candidate().with_qos(qos))
            .expect("join");
    }

    let started = Instant::now();
    let leader = cluster
        .await_agreement(group, None, Duration::from_secs(10))
        .expect("no leader elected");
    println!(
        "leader is {leader} (elected in {}); routing increments through it",
        SimDuration::from(started.elapsed())
    );
    let old_token = await_lease(&cluster, leader.node, group);

    // The client tier: sessions discover the leader, route to it, and retry
    // transparently across redirects, rejections and crashes.
    let mut config = ClientConfig::new(group, (0..servers as u32).map(NodeId).collect());
    config.deadline = Some(Duration::from_secs(30));
    let mut hub = ClientHub::new(client_endpoint, config);

    let first = hub.run_workload(50, 4, 1);
    println!(
        "workload 1: {} increments applied, {} retries",
        first.completed,
        first.timeouts + first.redirects + first.rejected_replies
    );

    println!("crashing the leader {} mid-service...", leader.node);
    cluster.crash(leader.node);

    let second = hub.run_workload(50, 4, 1);
    let new_leader = cluster
        .await_agreement(group, Some(leader.node), Duration::from_secs(10))
        .expect("no re-election");
    println!(
        "workload 2: {} increments applied through the re-elected leader {} ({} retries)",
        second.completed,
        new_leader.node,
        second.timeouts + second.redirects + second.rejected_replies
    );

    // The point of the fencing tokens: replay the *deposed* leader's write
    // against a replica that has observed the new leadership. The stale
    // token sits below the replica's high-water mark and the write bounces.
    let new_token = await_lease(&cluster, new_leader.node, group);
    let mut replica = FencedCounter::new();
    replica.observe_token(group, new_token);
    match replica.apply(group, old_token, 1_000_000) {
        Err(_) => {
            println!("deposed leader's delayed write: rejected (presented token below high-water)")
        }
        Ok(_) => unreachable!("a stale token must never apply"),
    }

    cluster.shutdown();

    let snapshot = audit.snapshot();
    println!(
        "audit: {} accepts, {} fencing violations",
        snapshot.accepts, snapshot.violations
    );
    assert_eq!(snapshot.violations, 0, "fencing violated");
    assert!(snapshot.accepts >= first.completed + second.completed);
    println!("replicas stayed fenced; done.");
}
