//! Short versions of the paper's figure scenarios, runnable under Criterion.
//!
//! These keep `cargo bench` quick (a couple of virtual minutes per cell);
//! use the `reproduce` binary for full-length regeneration of the tables in
//! `EXPERIMENTS.md`.

use criterion::{criterion_group, criterion_main, Criterion};
use sle_election::ElectorKind;
use sle_harness::Scenario;
use sle_net::link::{LinkCrashSpec, LinkSpec};
use sle_sim::time::SimDuration;

fn quick(scenario: Scenario) -> Scenario {
    scenario.with_duration(SimDuration::from_secs(120))
}

fn bench_lossy_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_cells_2min");
    group.sample_size(10);
    group.bench_function("fig4_S2_lossy_100ms_0.1", |b| {
        b.iter(|| {
            quick(Scenario::paper_default(
                "bench",
                ElectorKind::OmegaLc,
                LinkSpec::from_paper_tuple(100.0, 0.1),
            ))
            .run()
        })
    });
    group.bench_function("fig5_S3_lossy_100ms_0.1", |b| {
        b.iter(|| {
            quick(Scenario::paper_default(
                "bench",
                ElectorKind::OmegaL,
                LinkSpec::from_paper_tuple(100.0, 0.1),
            ))
            .run()
        })
    });
    group.bench_function("fig7_S2_link_crashes_60s", |b| {
        b.iter(|| {
            quick(
                Scenario::paper_default("bench", ElectorKind::OmegaLc, LinkSpec::lan())
                    .with_link_crashes(LinkCrashSpec::from_paper_uptime_secs(60)),
            )
            .run()
        })
    });
    group.bench_function("fig3_S1_lan", |b| {
        b.iter(|| {
            quick(Scenario::paper_default(
                "bench",
                ElectorKind::OmegaId,
                LinkSpec::lan(),
            ))
            .run()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lossy_figures);
criterion_main!(benches);
