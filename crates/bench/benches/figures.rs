//! Short versions of the paper's figure scenarios, runnable as a bench.
//!
//! These keep `cargo bench` quick (a couple of virtual minutes per cell);
//! use the `reproduce` binary for full-length regeneration of the tables in
//! `EXPERIMENTS.md`.

use sle_bench::bench_once;
use sle_election::ElectorKind;
use sle_harness::{RegimeShiftScenario, Scenario};
use sle_net::link::{LinkCrashSpec, LinkSpec};
use sle_sim::time::SimDuration;

fn quick(scenario: Scenario) -> Scenario {
    scenario.with_duration(SimDuration::from_secs(120))
}

fn main() {
    bench_once("figure_cells_2min/fig4_S2_lossy_100ms_0.1", || {
        quick(Scenario::paper_default(
            "bench",
            ElectorKind::OmegaLc,
            LinkSpec::from_paper_tuple(100.0, 0.1),
        ))
        .run()
    });
    bench_once("figure_cells_2min/fig5_S3_lossy_100ms_0.1", || {
        quick(Scenario::paper_default(
            "bench",
            ElectorKind::OmegaL,
            LinkSpec::from_paper_tuple(100.0, 0.1),
        ))
        .run()
    });
    bench_once("figure_cells_2min/fig7_S2_link_crashes_60s", || {
        quick(
            Scenario::paper_default("bench", ElectorKind::OmegaLc, LinkSpec::lan())
                .with_link_crashes(LinkCrashSpec::from_paper_uptime_secs(60)),
        )
        .run()
    });
    bench_once("figure_cells_2min/fig3_S1_lan", || {
        quick(Scenario::paper_default(
            "bench",
            ElectorKind::OmegaId,
            LinkSpec::lan(),
        ))
        .run()
    });
    bench_once("regime_shift/static_vs_adaptive", || {
        RegimeShiftScenario::improving_network("bench", ElectorKind::OmegaL).compare()
    });
}
