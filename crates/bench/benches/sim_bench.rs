//! Macro-benchmark of the simulation substrate: how much wall-clock time it
//! takes to push a full 12-workstation service deployment through one
//! virtual minute (this is the quantity that determines how long the figure
//! reproductions take).

use sle_bench::bench_once;
use sle_core::{JoinConfig, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_net::link::LinkSpec;
use sle_net::network::NetworkModel;
use sle_sim::prelude::*;

fn run_virtual_minute(algorithm: ElectorKind, link: LinkSpec) -> u64 {
    let n = 12usize;
    let group = sle_core::GroupId(1);
    let medium = NetworkModel::new(link).build(7);
    let mut world: World<ServiceNode, _> = World::new(
        n,
        Box::new(move |node, _| {
            ServiceNode::new(
                ServiceConfig::full_mesh(node, n, algorithm)
                    .with_auto_join(group, JoinConfig::candidate()),
            )
        }),
        medium,
        11,
    );
    let mut observer = CountingObserver::new();
    world.run_for(SimDuration::from_secs(60), &mut observer);
    observer.delivered
}

fn main() {
    bench_once("simulate_one_virtual_minute_12_nodes/S2_lan", || {
        run_virtual_minute(ElectorKind::OmegaLc, LinkSpec::lan())
    });
    bench_once("simulate_one_virtual_minute_12_nodes/S3_lan", || {
        run_virtual_minute(ElectorKind::OmegaL, LinkSpec::lan())
    });
    bench_once(
        "simulate_one_virtual_minute_12_nodes/S2_lossy_100ms_0.1",
        || run_virtual_minute(ElectorKind::OmegaLc, LinkSpec::from_paper_tuple(100.0, 0.1)),
    );
}
