//! Micro-benchmarks of the three election algorithms' hot paths: handling an
//! ALIVE payload and recomputing the leader.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sle_election::{AlivePayload, AnyElector, ElectorKind, LeaderElector};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

fn payload(secs: u64) -> AlivePayload {
    AlivePayload {
        accusation_time: SimInstant::ZERO + SimDuration::from_secs(secs),
        epoch: 0,
        local_leader: None,
    }
}

fn bench_alive_handling(c: &mut Criterion) {
    let mut group = c.benchmark_group("elector_on_alive_and_leader");
    for kind in ElectorKind::all() {
        group.bench_function(kind.algorithm_name(), |b| {
            let mut elector = AnyElector::new(kind, NodeId(0), true, SimInstant::ZERO);
            // Pre-populate with 11 peers, as in the paper's 12-node group.
            for peer in 1..12u32 {
                elector.on_alive(NodeId(peer), payload(peer as u64), SimInstant::ZERO);
            }
            let mut tick = 0u64;
            b.iter(|| {
                tick += 1;
                let from = NodeId(1 + (tick % 11) as u32);
                elector.on_alive(from, payload(from.0 as u64), SimInstant::ZERO);
                black_box(elector.leader())
            })
        });
    }
    group.finish();
}

fn bench_suspicion_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("elector_suspect_trust_cycle");
    for kind in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        group.bench_function(kind.algorithm_name(), |b| {
            let mut elector = AnyElector::new(kind, NodeId(0), true, SimInstant::ZERO);
            for peer in 1..12u32 {
                elector.on_alive(NodeId(peer), payload(peer as u64), SimInstant::ZERO);
            }
            b.iter(|| {
                let now = SimInstant::ZERO + SimDuration::from_secs(1);
                black_box(elector.on_suspect(NodeId(5), now));
                elector.on_trust(NodeId(5), now);
                black_box(elector.leader())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alive_handling, bench_suspicion_path);
criterion_main!(benches);
