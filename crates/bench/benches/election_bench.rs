//! Micro-benchmarks of the three election algorithms' hot paths: handling an
//! ALIVE payload and recomputing the leader.

use sle_bench::{bench_loop, black_box};
use sle_election::{AlivePayload, AnyElector, ElectorKind, LeaderElector};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

fn payload(secs: u64) -> AlivePayload {
    AlivePayload {
        accusation_time: SimInstant::ZERO + SimDuration::from_secs(secs),
        epoch: 0,
        local_leader: None,
    }
}

fn bench_alive_handling() {
    for kind in ElectorKind::all() {
        let mut elector = AnyElector::new(kind, NodeId(0), true, SimInstant::ZERO);
        // Pre-populate with 11 peers, as in the paper's 12-node group.
        for peer in 1..12u32 {
            elector.on_alive(NodeId(peer), payload(peer as u64), SimInstant::ZERO);
        }
        let mut tick = 0u64;
        bench_loop(
            &format!("elector_on_alive_and_leader/{}", kind.algorithm_name()),
            200_000,
            || {
                tick += 1;
                let from = NodeId(1 + (tick % 11) as u32);
                elector.on_alive(from, payload(from.0 as u64), SimInstant::ZERO);
                black_box(elector.leader())
            },
        );
    }
}

fn bench_suspicion_path() {
    for kind in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        let mut elector = AnyElector::new(kind, NodeId(0), true, SimInstant::ZERO);
        for peer in 1..12u32 {
            elector.on_alive(NodeId(peer), payload(peer as u64), SimInstant::ZERO);
        }
        bench_loop(
            &format!("elector_suspect_trust_cycle/{}", kind.algorithm_name()),
            200_000,
            || {
                let now = SimInstant::ZERO + SimDuration::from_secs(1);
                black_box(elector.on_suspect(NodeId(5), now));
                elector.on_trust(NodeId(5), now);
                black_box(elector.leader())
            },
        );
    }
}

fn main() {
    bench_alive_handling();
    bench_suspicion_path();
}
