//! Micro-benchmarks of the failure-detector building blocks: the
//! configurator search, the link-quality estimator, the freshness monitor's
//! heartbeat path and the adaptive tuner's re-derivation.

use sle_adaptive::{AdaptiveTuner, Tuner, TunerConfig};
use sle_bench::{bench_loop, black_box};
use sle_fd::{FdConfigurator, LinkQuality, LinkQualityEstimator, PeerMonitor, QosSpec};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

fn bench_configurator() {
    let configurator = FdConfigurator::default();
    let qos = QosSpec::paper_default();
    let quality = LinkQuality::from_parts(
        0.1,
        SimDuration::from_millis(100),
        SimDuration::from_millis(100),
    );
    bench_loop("fd_configurator_compute", 100_000, || {
        configurator.compute(black_box(&qos), black_box(&quality))
    });
}

fn bench_estimator() {
    let mut estimator = LinkQualityEstimator::new(256);
    let mut seq = 0u64;
    bench_loop(
        "link_quality_estimator_record_and_estimate",
        100_000,
        || {
            let sent = SimInstant::ZERO + SimDuration::from_millis(seq * 100);
            estimator.record(seq, sent, sent + SimDuration::from_millis(5));
            seq += 1;
            black_box(estimator.estimate())
        },
    );
}

fn bench_monitor() {
    let mut monitor = PeerMonitor::new(QosSpec::paper_default(), SimInstant::ZERO);
    let interval = SimDuration::from_millis(250);
    let mut seq = 0u64;
    let mut now = SimInstant::ZERO;
    bench_loop("peer_monitor_heartbeat", 1_000_000, || {
        now += interval;
        seq += 1;
        black_box(monitor.on_heartbeat(seq, now, interval, now));
        black_box(monitor.check(now))
    });
}

fn bench_adaptive_tuner() {
    let qos = QosSpec::paper_default();
    let peer = NodeId(1);
    let mut tuner = AdaptiveTuner::new(TunerConfig::default());
    let mut seq = 0u64;
    let mut now = SimInstant::ZERO;
    bench_loop("adaptive_tuner_observe", 1_000_000, || {
        now += SimDuration::from_millis(100);
        seq += 1;
        tuner.observe(peer, seq, now - SimDuration::from_millis(3), now);
    });
    bench_loop("adaptive_tuner_recommend", 10_000, || {
        black_box(tuner.recommend(peer, &qos, now))
    });
}

fn main() {
    bench_configurator();
    bench_estimator();
    bench_monitor();
    bench_adaptive_tuner();
}
