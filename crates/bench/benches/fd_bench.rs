//! Micro-benchmarks of the failure-detector building blocks: the
//! configurator search, the link-quality estimator and the freshness
//! monitor's heartbeat path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sle_fd::{FdConfigurator, LinkQuality, LinkQualityEstimator, PeerMonitor, QosSpec};
use sle_sim::time::{SimDuration, SimInstant};

fn bench_configurator(c: &mut Criterion) {
    let configurator = FdConfigurator::default();
    let qos = QosSpec::paper_default();
    let quality = LinkQuality::from_parts(
        0.1,
        SimDuration::from_millis(100),
        SimDuration::from_millis(100),
    );
    c.bench_function("fd_configurator_compute", |b| {
        b.iter(|| configurator.compute(black_box(&qos), black_box(&quality)))
    });
}

fn bench_estimator(c: &mut Criterion) {
    c.bench_function("link_quality_estimator_record_and_estimate", |b| {
        let mut estimator = LinkQualityEstimator::new(256);
        let mut seq = 0u64;
        b.iter(|| {
            let sent = SimInstant::ZERO + SimDuration::from_millis(seq * 100);
            estimator.record(seq, sent, sent + SimDuration::from_millis(5));
            seq += 1;
            black_box(estimator.estimate())
        })
    });
}

fn bench_monitor(c: &mut Criterion) {
    c.bench_function("peer_monitor_heartbeat", |b| {
        let mut monitor = PeerMonitor::new(QosSpec::paper_default(), SimInstant::ZERO);
        let interval = SimDuration::from_millis(250);
        let mut seq = 0u64;
        let mut now = SimInstant::ZERO;
        b.iter(|| {
            now = now + interval;
            seq += 1;
            black_box(monitor.on_heartbeat(seq, now, interval, now));
            black_box(monitor.check(now));
        })
    });
}

criterion_group!(benches, bench_configurator, bench_estimator, bench_monitor);
criterion_main!(benches);
