//! # sle-bench — benchmarks and figure regeneration
//!
//! This crate hosts:
//!
//! * the `reproduce` binary (`cargo run -p sle-bench --release --bin
//!   reproduce`), which re-runs every experimental cell of the paper's
//!   figures and prints paper-vs-measured tables, and
//! * the micro-benchmarks (`cargo bench`) for the failure detector, the
//!   election algorithms, the adaptive tuner, the simulator and small
//!   versions of the figure scenarios. They are plain `harness = false`
//!   binaries built on the dependency-free helpers below ([`bench_loop`],
//!   [`bench_once`]), so the whole workspace builds without any third-party
//!   crate.
//!
//! See `EXPERIMENTS.md` at the workspace root for a recorded run.
//!
//! ## Example: timing a snippet with the mini-harness
//!
//! ```
//! use sle_bench::{bench_loop, bench_once, black_box};
//!
//! // Prints "sum-1..100                ... ns/iter" on stdout.
//! bench_loop("sum-1..100", 100, || black_box((1u64..=100).sum::<u64>()));
//! assert_eq!(bench_once("once", || 6 * 7), 42);
//! ```

#![warn(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// A tiny helper shared by the benchmarks: a short experiment used as a
/// macro-benchmark workload.
pub fn smoke_scenario_seconds() -> u64 {
    60
}

/// Prevents the optimiser from deleting a benchmark's result.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Times `iters` calls of `f` (after `iters / 10` warm-up calls) and prints
/// one `name: <ns>/iter` line — the dependency-free stand-in for a Criterion
/// benchmark.
pub fn bench_loop<T, F: FnMut() -> T>(name: &str, iters: u64, mut f: F) {
    let warmup = (iters / 10).max(1);
    for _ in 0..warmup {
        std_black_box(f());
    }
    let start = Instant::now();
    for _ in 0..iters {
        std_black_box(f());
    }
    let elapsed = start.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    println!("{name:<55} {per_iter:>12.1} ns/iter  ({iters} iters)");
}

/// Times a single execution of `f` and prints one `name: <ms>` line — for
/// macro-benchmarks where one run is already seconds of work.
pub fn bench_once<T, F: FnOnce() -> T>(name: &str, f: F) -> T {
    let start = Instant::now();
    let result = std_black_box(f());
    let elapsed = start.elapsed();
    println!("{name:<55} {:>12.1} ms", elapsed.as_secs_f64() * 1e3);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_run() {
        assert_eq!(smoke_scenario_seconds(), 60);
        bench_loop("noop", 10, || black_box(1 + 1));
        assert_eq!(bench_once("noop-once", || 7), 7);
    }
}
