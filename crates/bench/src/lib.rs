//! # sle-bench — benchmarks and figure regeneration
//!
//! This crate hosts:
//!
//! * the `reproduce` binary (`cargo run -p sle-bench --release --bin
//!   reproduce`), which re-runs every experimental cell of the paper's
//!   figures and prints paper-vs-measured tables, and
//! * the Criterion micro-benchmarks (`cargo bench`) for the failure
//!   detector, the election algorithms, the simulator and small versions of
//!   the figure scenarios.
//!
//! See `EXPERIMENTS.md` at the workspace root for a recorded run.

#![warn(missing_docs)]

/// A tiny helper shared by the benchmarks: a short experiment used as a
/// macro-benchmark workload.
pub fn smoke_scenario_seconds() -> u64 {
    60
}
