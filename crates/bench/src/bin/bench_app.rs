//! The client-tier macro-benchmark: a million requests through repeated
//! forced leader crashes, with fencing audited end to end.
//!
//! ```text
//! cargo run --release -p sle-bench --bin bench_app            # full (100k sessions, 1M requests)
//! cargo run --release -p sle-bench --bin bench_app -- --smoke # CI-sized
//! ```
//!
//! Five service nodes run `Omega_l` with fenced-counter replicas installed
//! (`sle-app`); a [`ClientHub`] multiplexes 100 000 sessions over one extra
//! transport endpoint and pushes one million `add 1` requests through the
//! cluster in four quarters. Between quarters the bench **crashes the
//! serving leader** — three forced leadership changes mid-workload — and the
//! hub must rediscover, retry and finish every session. Gated assertions:
//!
//! * **completion** — every request of every session is eventually applied
//!   (at-least-once; duplicates allowed, losses not),
//! * **fencing safety** — the shared [`FencingAudit`] across all replicas
//!   records **zero violations**: no accepted write's token ever regressed
//!   below an earlier accepted one, across all three leadership changes,
//! * **availability** — total client-observed stall time stays within the
//!   QoS budget: `crashes x (4 x T_D + 1s slack)` for the configured
//!   detection bound `T_D`.
//!
//! Results are written to `BENCH_app.json` (schema `sle-bench-app/1`,
//! documented in `docs/BENCH.md`); CI runs `--smoke` and uploads the file
//! as the `app-bench` artifact. Exit status: `0` when every assertion
//! holds, `1` otherwise, `2` on usage errors.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sle_app::{ClientConfig, ClientHub, FencedCounter, FencingAudit, HubReport};
use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_net::transport::InMemoryMesh;
use sle_sim::time::SimDuration;
use sle_sim::NodeId;

const SERVERS: usize = 5;
const GROUP: GroupId = GroupId(1);
/// The workload runs in quarters with a forced leader crash between them.
const QUARTERS: u64 = 4;
const CRASHES: u64 = QUARTERS - 1;
/// The failure-detection bound the deployment is tuned to.
const DETECTION_MS: u64 = 250;
/// Per-crash slack on top of `4 x T_D` in the unavailability budget:
/// covers scheduler noise and the hub's own retry backoff.
const SLACK_MS: u64 = 1000;

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_app.json".to_string(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = iter
                    .next()
                    .ok_or_else(|| "--out requires a path".to_string())?;
            }
            "--help" | "-h" => {
                println!("usage: bench_app [--smoke] [--out PATH]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Polls until the surviving members agree on a leader; used instead of
/// `await_agreement` because earlier-crashed nodes keep answering with
/// their parked, stale views.
fn await_leader_among(cluster: &Cluster, alive: &[NodeId], timeout: Duration) -> Option<NodeId> {
    let deadline = Instant::now() + timeout;
    loop {
        // Survivors briefly keep voting for the node that just crashed
        // (their detectors have not fired yet), so a bare agreement is not
        // enough: the agreed leader must itself be a survivor.
        if let Some(leader) = cluster.agreed_leader_among(GROUP, alive) {
            if alive.contains(&leader.node) {
                return Some(leader.node);
            }
        }
        if Instant::now() >= deadline {
            return None;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Accumulated hub-side totals across the quarters.
#[derive(Default)]
struct Totals {
    completed: u64,
    rejected_replies: u64,
    redirects: u64,
    timeouts: u64,
    duplicate_replies: u64,
    attempts: u64,
    stalled: Duration,
    longest_stall: Duration,
    latencies_ns: Vec<u64>,
}

impl Totals {
    fn absorb(&mut self, report: HubReport) {
        self.completed += report.completed;
        self.rejected_replies += report.rejected_replies;
        self.redirects += report.redirects;
        self.timeouts += report.timeouts;
        self.duplicate_replies += report.duplicate_replies;
        self.attempts += report.attempts;
        self.stalled += report.stalled;
        self.longest_stall = self.longest_stall.max(report.longest_stall);
        self.latencies_ns.extend(report.latencies_ns);
    }

    fn percentile_ms(&mut self, p: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        self.latencies_ns.sort_unstable();
        let rank = ((p / 100.0) * self.latencies_ns.len() as f64).ceil() as usize;
        self.latencies_ns[rank.clamp(1, self.latencies_ns.len()) - 1] as f64 / 1e6
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    smoke: bool,
    sessions: u64,
    per_session: u64,
    totals: &mut Totals,
    crashes: u64,
    budget: Duration,
    audit: &sle_app::AuditSnapshot,
    elapsed: Duration,
) -> String {
    let requests = sessions * per_session;
    let p50 = totals.percentile_ms(50.0);
    let p99 = totals.percentile_ms(99.0);
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"sle-bench-app/1\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"deployment\": {{\"servers\": {SERVERS}, \"algorithm\": \"omega-l\", \
         \"detection_ms\": {DETECTION_MS}, \"transport\": \"mesh\"}},"
    );
    let _ = writeln!(
        out,
        "  \"workload\": {{\"sessions\": {sessions}, \"per_session\": {per_session}, \
         \"requests\": {requests}, \"quarters\": {QUARTERS}, \"leader_crashes\": {crashes}}},"
    );
    let _ = writeln!(
        out,
        "  \"client\": {{\"completed\": {}, \"attempts\": {}, \"timeouts\": {}, \
         \"redirects\": {}, \"rejected_replies\": {}, \"duplicate_replies\": {}, \
         \"latency_p50_ms\": {:.3}, \"latency_p99_ms\": {:.3}, \"stalled_ms\": {}, \
         \"longest_stall_ms\": {}}},",
        totals.completed,
        totals.attempts,
        totals.timeouts,
        totals.redirects,
        totals.rejected_replies,
        totals.duplicate_replies,
        p50,
        p99,
        totals.stalled.as_millis(),
        totals.longest_stall.as_millis(),
    );
    let _ = writeln!(
        out,
        "  \"fencing\": {{\"accepts\": {}, \"rejections\": {}, \"violations\": {}}},",
        audit.accepts, audit.rejections, audit.violations,
    );
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"unavailability_budget_ms\": {}, \
         \"slack_ms_per_crash\": {SLACK_MS}, \"max_violations\": 0}},",
        budget.as_millis(),
    );
    let _ = writeln!(out, "  \"elapsed_ms\": {}", elapsed.as_millis());
    out.push_str("}\n");
    out
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    // Full: 100k sessions x 10 requests = 1M requests. Smoke: CI-sized.
    let (sessions, per_session) = if args.smoke {
        (2_000, 5)
    } else {
        (100_000, 10)
    };
    let sessions_per_quarter = sessions / QUARTERS;
    let total = Instant::now();
    let mut failures: Vec<String> = Vec::new();

    let mut mesh: InMemoryMesh<ServiceMessage> =
        InMemoryMesh::with_links(SERVERS + 1, LinkSpec::perfect(), 42);
    let endpoints = (0..SERVERS)
        .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
        .collect();
    let client_endpoint = mesh.endpoint(NodeId(SERVERS as u32)).expect("endpoint");

    let cluster =
        Cluster::start_endpoints_with_config(endpoints, ClusterConfig::new(ElectorKind::OmegaL));
    let audit = FencingAudit::shared();
    let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(DETECTION_MS));
    for i in 0..SERVERS as u32 {
        let handle = cluster.handle(NodeId(i)).expect("handle");
        assert!(handle.install_app(Box::new(FencedCounter::with_audit(Arc::clone(&audit)))));
        handle
            .join(GROUP, JoinConfig::candidate().with_qos(qos))
            .expect("join");
    }
    let mut alive: Vec<NodeId> = (0..SERVERS as u32).map(NodeId).collect();
    let Some(mut leader) = await_leader_among(&cluster, &alive, Duration::from_secs(30)) else {
        eprintln!("FAIL: no initial leader within 30s");
        std::process::exit(1);
    };
    println!(
        "{} servers up, leader {leader}; driving {sessions} sessions x {per_session} requests \
         in {QUARTERS} quarters with {CRASHES} leader crashes",
        SERVERS
    );

    let mut config = ClientConfig::new(GROUP, alive.clone());
    config.deadline = Some(Duration::from_secs(if args.smoke { 120 } else { 900 }));
    let mut hub = ClientHub::new(client_endpoint, config);
    let mut totals = Totals::default();
    let mut crashes = 0u64;

    for quarter in 0..QUARTERS {
        if quarter > 0 {
            // Force a leadership change: kill the serving leader for good.
            cluster.crash(leader);
            alive.retain(|&n| n != leader);
            crashes += 1;
            println!("quarter {quarter}: crashed leader {leader}");
            let Some(next) = await_leader_among(&cluster, &alive, Duration::from_secs(30)) else {
                failures.push(format!(
                    "quarter {quarter}: survivors never re-elected after crashing {leader}"
                ));
                break;
            };
            leader = next;
        }
        let report = hub.run_workload(sessions_per_quarter, per_session, 1);
        if report.gave_up {
            failures.push(format!(
                "quarter {quarter}: workload gave up with {} of {} requests applied",
                report.completed,
                sessions_per_quarter * per_session
            ));
            totals.absorb(report);
            break;
        }
        println!(
            "quarter {quarter}: {} applied, {} timeouts, {} redirects, stalled {:?}",
            report.completed, report.timeouts, report.redirects, report.stalled
        );
        totals.absorb(report);
    }
    let elapsed = total.elapsed();
    cluster.shutdown();
    let snapshot = audit.snapshot();

    // The gates.
    let expected = sessions_per_quarter * per_session * QUARTERS;
    if totals.completed != expected {
        failures.push(format!(
            "completion: {} of {expected} requests applied",
            totals.completed
        ));
    }
    if crashes != CRASHES {
        failures.push(format!("only {crashes} of {CRASHES} leader crashes forced"));
    }
    if snapshot.violations != 0 {
        failures.push(format!(
            "fencing: {} violations recorded by the audit",
            snapshot.violations
        ));
    }
    if snapshot.accepts < totals.completed {
        failures.push(format!(
            "audit saw {} accepts but clients saw {} completions",
            snapshot.accepts, totals.completed
        ));
    }
    let budget = Duration::from_millis(CRASHES * (4 * DETECTION_MS + SLACK_MS));
    if totals.stalled > budget {
        failures.push(format!(
            "availability: stalled {:?} across {crashes} crashes (budget {budget:?})",
            totals.stalled
        ));
    }

    let json = render_json(
        args.smoke,
        sessions_per_quarter * QUARTERS,
        per_session,
        &mut totals,
        crashes,
        budget,
        &snapshot,
        elapsed,
    );
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} ({} requests, {} accepts, {} violations, stalled {:?}) in {:.1}s wall-clock",
        args.out,
        totals.completed,
        snapshot.accepts,
        snapshot.violations,
        totals.stalled,
        elapsed.as_secs_f64()
    );

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: {} requests applied through {crashes} forced leader crashes, \
         0 fencing violations, stalled {:?} within the {budget:?} budget",
        totals.completed, totals.stalled
    );
}
