//! Regenerates the tables behind every figure of the DSN 2008 evaluation.
//!
//! ```text
//! reproduce [FIGURE ...] [--minutes N] [--seed S] [--markdown]
//!
//!   FIGURE      fig3 fig4 fig5 fig6 fig7 fig8 headline (default: all)
//!   --minutes   measured virtual minutes per cell (default 30)
//!   --seed      experiment seed (default: built-in)
//!   --markdown  emit Markdown tables (as used in EXPERIMENTS.md)
//! ```
//!
//! The paper ran each experiment for 1–5 days of wall-clock time; here each
//! cell simulates `--minutes` of virtual time in a few seconds. Longer runs
//! tighten the confidence intervals of T_r and λ_u but do not change the
//! shape of the results.

use sle_harness::{all_figures, figure_by_id, render_figure, render_figure_markdown, Figure};
use sle_sim::time::SimDuration;

struct Options {
    figures: Vec<String>,
    minutes: u64,
    seed: Option<u64>,
    markdown: bool,
}

fn parse_args() -> Options {
    let mut options = Options {
        figures: Vec::new(),
        minutes: 30,
        seed: None,
        markdown: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--minutes" => {
                options.minutes = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--minutes requires an integer argument");
                    std::process::exit(2);
                });
            }
            "--seed" => {
                options.seed = args.next().and_then(|v| v.parse().ok());
            }
            "--markdown" => options.markdown = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: reproduce [fig3|fig4|fig5|fig6|fig7|fig8|headline ...] \
                     [--minutes N] [--seed S] [--markdown]"
                );
                std::process::exit(0);
            }
            other => options.figures.push(other.to_string()),
        }
    }
    options
}

fn main() {
    let options = parse_args();
    let duration = SimDuration::from_secs(options.minutes.max(1) * 60);

    let figures: Vec<Figure> = if options.figures.is_empty() {
        all_figures(duration)
    } else {
        options
            .figures
            .iter()
            .map(|id| {
                figure_by_id(id, duration).unwrap_or_else(|| {
                    eprintln!("unknown figure '{id}' (expected fig3..fig8 or headline)");
                    std::process::exit(2);
                })
            })
            .collect()
    };

    for mut figure in figures {
        if let Some(seed) = options.seed {
            for cell in &mut figure.cells {
                cell.scenario.seed = seed;
            }
        }
        eprintln!(
            "running {} ({} cells, {} virtual minutes each)...",
            figure.id,
            figure.cells.len(),
            options.minutes
        );
        let results = figure.run();
        if options.markdown {
            println!("{}", render_figure_markdown(&figure, &results));
        } else {
            println!("{}", render_figure(&figure, &results));
        }
    }
}
