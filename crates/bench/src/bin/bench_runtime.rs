//! The real-time runtime macro-benchmark: large clusters on the **wall
//! clock**, on a fixed shard worker pool, with thread-count and
//! wakeup-discipline assertions.
//!
//! ```text
//! cargo run --release -p sle-bench --bin bench_runtime            # full (1000-node mesh + UDP cells)
//! cargo run --release -p sle-bench --bin bench_runtime -- --smoke # CI-sized
//! ```
//!
//! Where `bench_scale` proves the protocol scales in *virtual* time, this
//! binary proves the deployment scales in *real* time: the sharded runtime
//! of `sle-core` must run a 1000-node in-memory-mesh cluster, a 64-node
//! legacy one-socket-per-node UDP cell, and a **1000-node shared-socket UDP
//! plane cell** (all nodes demultiplexed behind `workers` sockets) on a
//! fixed worker pool, elect a leader in every group, and do it with
//!
//! * **O(workers) threads** — the runtime may spawn at most 16 threads
//!   beyond the transport's own reader threads, however many nodes run
//!   (a thread-per-node runtime fails this immediately at 1000 nodes); the
//!   shared-plane cell is gated harder still: its *total* spawn — runtime
//!   plus transport — must stay within `workers + sockets`, and
//! * **no polling** — workers sleep exactly to their timer wheel's next
//!   deadline or a mailbox wakeup, so wakeups that find nothing to do must
//!   stay below 100/s across the whole pool.
//!
//! Results are written to `BENCH_runtime.json` (schema
//! `sle-bench-runtime/3`, documented in `docs/BENCH.md`); CI runs
//! `--smoke` and uploads the file as the `runtime-bench` artifact. Exit
//! status: `0` when every assertion holds, `1` otherwise.
//!
//! Options: `--smoke` (CI sizes), `--out PATH` (default
//! `BENCH_runtime.json`), `--snapshot-prom PATH` / `--snapshot-json PATH`
//! (mesh telemetry registry exports), `--snapshot-plane-prom PATH` (the
//! shared plane's demux + buffer-pool counters, Prometheus format).

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use sle_core::messages::ServiceMessage;
use sle_core::{Cluster, ClusterConfig, GroupId, JoinConfig, ServiceConfig};
use sle_election::ElectorKind;
use sle_harness::deploy::{membership, strided_groups};
use sle_net::link::LinkSpec;
use sle_net::transport::{InMemoryMesh, MessageEndpoint};
use sle_obs::{Registry, Snapshot};
use sle_sim::time::SimDuration;
use sle_sim::NodeId;
use sle_udp::{bind_loopback_mesh, SharedUdpPlane};

/// The hard ceiling on runtime threads (shard workers plus bookkeeping),
/// excluding the transport's own reader threads.
const MAX_RUNTIME_THREADS: usize = 16;
/// The hard ceiling on pool-wide idle wakeups per second.
const MAX_IDLE_WAKEUPS_PER_SEC: f64 = 100.0;
/// How long a cell may take to elect everywhere before the bench fails.
const ELECTION_DEADLINE: Duration = Duration::from_secs(60);
/// The telemetry overhead gate: with full observability on, the mesh
/// cell's election wall-clock may grow by at most this ratio...
const TELEMETRY_MAX_RATIO: f64 = 0.05;
/// ...or this absolute floor, whichever is larger (sub-second elections
/// carry scheduler noise a percentage alone would turn into flakes).
const TELEMETRY_NOISE_FLOOR_MS: u128 = 150;

struct Args {
    smoke: bool,
    out: String,
    snapshot_prom: Option<String>,
    snapshot_json: Option<String>,
    snapshot_plane_prom: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_runtime.json".to_string(),
        snapshot_prom: None,
        snapshot_json: None,
        snapshot_plane_prom: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = iter
                    .next()
                    .ok_or_else(|| "--out requires a path".to_string())?;
            }
            "--snapshot-prom" => {
                args.snapshot_prom = Some(
                    iter.next()
                        .ok_or_else(|| "--snapshot-prom requires a path".to_string())?,
                );
            }
            "--snapshot-json" => {
                args.snapshot_json = Some(
                    iter.next()
                        .ok_or_else(|| "--snapshot-json requires a path".to_string())?,
                );
            }
            "--snapshot-plane-prom" => {
                args.snapshot_plane_prom = Some(
                    iter.next()
                        .ok_or_else(|| "--snapshot-plane-prom requires a path".to_string())?,
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_runtime [--smoke] [--out PATH] \
                     [--snapshot-prom PATH] [--snapshot-json PATH] \
                     [--snapshot-plane-prom PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// Current OS thread count of this process (Linux); `None` elsewhere.
fn os_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// One measured deployment.
struct Cell {
    name: String,
    transport: &'static str,
    nodes: usize,
    groups: usize,
    members_per_group: usize,
    workers: usize,
    /// OS threads the deployment added (shard workers + transport readers),
    /// when `/proc` is available.
    threads_spawned: Option<usize>,
    /// Reader threads the transport itself accounts for (one per UDP
    /// socket; zero for the in-memory mesh).
    transport_reader_threads: usize,
    /// Wall-clock from cluster start until every group's members agreed on
    /// a leader.
    elected_ms: u128,
    /// Pool-wide worker wakeups per second over the idle measurement
    /// window (after the elections settled).
    wakeups_per_sec: f64,
    /// Pool-wide wakeups that found nothing to do, per second, over the
    /// same window.
    idle_wakeups_per_sec: f64,
    wall_ms: u128,
    /// Whether the cell ran with the full observability stack attached.
    telemetry: bool,
    /// Election-latency percentiles over the always-on per-group election
    /// timestamps (cluster start → the group's members agreed), so every
    /// cell reports them whether or not telemetry ran. `None` only when no
    /// group elected at all.
    election_p50_ms: Option<f64>,
    election_p99_ms: Option<f64>,
    /// Wire datagrams per second over the idle measurement window, for
    /// transports that count them (the shared UDP plane); `None` for
    /// transports without a datagram counter.
    datagrams_per_sec: Option<f64>,
}

/// Nearest-rank percentile of an ascending-sorted sample, in milliseconds.
fn percentile_ms(sorted: &[Duration], q: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((sorted.len() as f64) * q).ceil() as usize;
    let idx = rank.clamp(1, sorted.len()) - 1;
    Some(sorted[idx].as_secs_f64() * 1e3)
}

/// Per-node service configs for a strided deployment: each workstation
/// gossips only with workstations it shares a group with, and auto-joins
/// its groups at start.
fn service_configs(nodes: usize, groups: &[Vec<NodeId>]) -> Vec<ServiceConfig> {
    let deployment = membership(nodes, groups);
    (0..nodes)
        .map(|i| {
            let mut peers = deployment.peers_of[i].clone();
            if peers.is_empty() {
                // A workstation in no group still needs itself as a peer.
                peers.push(NodeId(i as u32));
            }
            let mut config = ServiceConfig::new(NodeId(i as u32), peers, ElectorKind::OmegaL)
                .with_hello_interval(SimDuration::from_millis(200));
            for &group in &deployment.groups_of[i] {
                config = config.with_auto_join(group, JoinConfig::candidate());
            }
            config
        })
        .collect()
}

/// Runs one deployment: build endpoints, start the sharded cluster, wait
/// for every group to elect (timestamping each group's agreement for the
/// always-on election percentiles), then measure the pool's wakeup
/// discipline — and the transport's datagram rate, when it counts one —
/// over an idle window.
#[allow(clippy::too_many_arguments)]
fn run_cell<E>(
    name: String,
    transport: &'static str,
    make_endpoints: impl FnOnce() -> Vec<E>,
    nodes: usize,
    groups: Vec<Vec<NodeId>>,
    workers: usize,
    transport_reader_threads: usize,
    idle_window: Duration,
    telemetry: bool,
    datagram_counter: Option<&dyn Fn() -> u64>,
    failures: &mut Vec<String>,
) -> (Cell, Option<Snapshot>)
where
    E: MessageEndpoint<ServiceMessage> + Send + 'static,
{
    let wall = Instant::now();
    let members = groups.first().map(Vec::len).unwrap_or(0);
    let configs = service_configs(nodes, &groups);
    // Measured around endpoint construction too, so the transport's reader
    // threads are part of the accounting.
    let threads_before = os_threads();
    let endpoints = make_endpoints();

    let mut options = ClusterConfig::new(ElectorKind::OmegaL).with_workers(workers);
    let registry = Registry::default();
    if telemetry {
        options = options.with_observability(registry.clone());
    }
    let started = Instant::now();
    let cluster = Cluster::start_with_service_configs(endpoints, configs, &options);

    let threads_spawned = match (threads_before, os_threads()) {
        (Some(before), Some(after)) => Some(after.saturating_sub(before)),
        _ => None,
    };
    if let Some(spawned) = threads_spawned {
        let runtime_only = spawned.saturating_sub(transport_reader_threads);
        if runtime_only > MAX_RUNTIME_THREADS {
            failures.push(format!(
                "{name}: {runtime_only} runtime threads for {nodes} nodes \
                 (max {MAX_RUNTIME_THREADS}) — the pool is not O(workers)"
            ));
        }
    }

    // Wait for every group's members to agree on a leader, timestamping
    // each group's agreement: these always-on timestamps — not the
    // optional telemetry histograms — feed the election percentiles, so
    // telemetry-off cells stay comparable.
    let deadline = started + ELECTION_DEADLINE;
    let mut pending: Vec<usize> = (0..groups.len()).collect();
    let mut elected_at: Vec<Duration> = Vec::with_capacity(groups.len());
    while !pending.is_empty() && Instant::now() < deadline {
        pending.retain(|&g| {
            let agreed = cluster
                .agreed_leader_among(GroupId(g as u32 + 1), &groups[g])
                .is_some();
            if agreed {
                elected_at.push(started.elapsed());
            }
            !agreed
        });
        if !pending.is_empty() {
            std::thread::sleep(Duration::from_millis(25));
        }
    }
    let elected_ms = started.elapsed().as_millis();
    if !pending.is_empty() {
        failures.push(format!(
            "{name}: {} of {} groups had not elected after {:?}",
            pending.len(),
            groups.len(),
            ELECTION_DEADLINE
        ));
    }

    // Steady state: count wakeups over an idle window. Productive wakeups
    // (HELLO/ALIVE timers, arriving gossip) continue; *idle* wakeups —
    // a worker waking to find nothing to do — must be a rarity.
    let before = cluster.runtime_stats();
    let datagrams_before = datagram_counter.map(|count| count());
    std::thread::sleep(idle_window);
    let after = cluster.runtime_stats();
    let secs = idle_window.as_secs_f64();
    let datagrams_per_sec = datagram_counter
        .zip(datagrams_before)
        .map(|(count, before)| (count().saturating_sub(before)) as f64 / secs);
    let wakeups_per_sec = (after.wakeups - before.wakeups) as f64 / secs;
    let idle_wakeups_per_sec = (after.idle_wakeups - before.idle_wakeups) as f64 / secs;
    if idle_wakeups_per_sec > MAX_IDLE_WAKEUPS_PER_SEC {
        failures.push(format!(
            "{name}: {idle_wakeups_per_sec:.0} idle wakeups/s across the pool \
             (max {MAX_IDLE_WAKEUPS_PER_SEC}) — someone is polling"
        ));
    }

    let snapshot = telemetry.then(|| registry.snapshot());
    // elected_at is already in agreement order, which is ascending by
    // construction (each poll pass appends the newly-agreed groups).
    elected_at.sort();
    let election_p50_ms = percentile_ms(&elected_at, 0.50);
    let election_p99_ms = percentile_ms(&elected_at, 0.99);
    cluster.shutdown();
    let cell = Cell {
        name,
        transport,
        nodes,
        groups: groups.len(),
        members_per_group: members,
        workers,
        threads_spawned,
        transport_reader_threads,
        elected_ms,
        wakeups_per_sec,
        idle_wakeups_per_sec,
        wall_ms: wall.elapsed().as_millis(),
        telemetry,
        election_p50_ms,
        election_p99_ms,
        datagrams_per_sec,
    };
    (cell, snapshot)
}

/// The telemetry on/off comparison of the mesh cell.
struct Overhead {
    cell: String,
    off_ms: u128,
    on_ms: u128,
    allowed_ms: u128,
    ok: bool,
}

fn render_json(cells: &[Cell], overhead: &Overhead, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"sle-bench-runtime/3\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let threads = cell
            .threads_spawned
            .map(|t| t.to_string())
            .unwrap_or_else(|| "null".to_string());
        let opt = |v: Option<f64>| match v {
            Some(v) => format!("{v:.1}"),
            None => "null".to_string(),
        };
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"transport\": \"{}\", \"nodes\": {}, \"groups\": {}, \
             \"members_per_group\": {}, \"workers\": {}, \"threads_spawned\": {}, \
             \"transport_reader_threads\": {}, \"elected_ms\": {}, \
             \"wakeups_per_sec\": {:.1}, \"idle_wakeups_per_sec\": {:.1}, \"wall_ms\": {}, \
             \"telemetry\": {}, \"election_p50_ms\": {}, \"election_p99_ms\": {}, \
             \"datagrams_per_sec\": {}}}",
            cell.name,
            cell.transport,
            cell.nodes,
            cell.groups,
            cell.members_per_group,
            cell.workers,
            threads,
            cell.transport_reader_threads,
            cell.elected_ms,
            cell.wakeups_per_sec,
            cell.idle_wakeups_per_sec,
            cell.wall_ms,
            cell.telemetry,
            opt(cell.election_p50_ms),
            opt(cell.election_p99_ms),
            opt(cell.datagrams_per_sec),
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"telemetry_overhead\": {{\"cell\": \"{}\", \"off_ms\": {}, \"on_ms\": {}, \
         \"allowed_ms\": {}, \"ok\": {}}},",
        overhead.cell, overhead.off_ms, overhead.on_ms, overhead.allowed_ms, overhead.ok
    );
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"max_runtime_threads\": {MAX_RUNTIME_THREADS}, \
         \"max_idle_wakeups_per_sec\": {MAX_IDLE_WAKEUPS_PER_SEC:.1}, \
         \"telemetry_max_ratio\": {TELEMETRY_MAX_RATIO}, \
         \"telemetry_noise_floor_ms\": {TELEMETRY_NOISE_FLOOR_MS}}}"
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let total = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();
    let mut failures: Vec<String> = Vec::new();

    // Cell 1: the in-memory mesh at four-digit node counts. One group per
    // 8 workstations, strided; every message still crosses the transport
    // seam and wakes a shard mailbox.
    let (mesh_nodes, mesh_groups, mesh_members, mesh_workers) = if args.smoke {
        (200, 25, 8, 8)
    } else {
        (1000, 125, 8, 8)
    };
    // Cell 2: real UDP sockets on loopback — the paper's deployment shape,
    // one datagram socket (and reader thread) per workstation.
    let (udp_nodes, udp_groups, udp_members, udp_workers) = if args.smoke {
        (16, 4, 4, 4)
    } else {
        (64, 8, 8, 8)
    };
    let idle_window = if args.smoke {
        Duration::from_secs(1)
    } else {
        Duration::from_secs(2)
    };

    println!(
        "{:<22} {:>6} {:>7} {:>8} {:>9} {:>11} {:>9} {:>8} {:>8}",
        "cell",
        "nodes",
        "groups",
        "workers",
        "threads",
        "elected-ms",
        "wakes/s",
        "idle/s",
        "wall-ms"
    );
    let make_mesh = |nodes: usize| {
        move || {
            let mut mesh: InMemoryMesh<ServiceMessage> =
                InMemoryMesh::with_links(nodes, LinkSpec::perfect(), 42);
            (0..nodes)
                .map(|i| mesh.endpoint(NodeId(i as u32)).expect("endpoint"))
                .collect()
        }
    };
    // The overhead comparison: the same mesh deployment, telemetry off
    // (the baseline cell of schema /1) and telemetry on (full registry,
    // QoS histograms and the protocol trace attached to every node).
    let (off_cell, _) = run_cell(
        format!("mesh-{mesh_nodes}x{mesh_groups}x{mesh_members}"),
        "mesh",
        make_mesh(mesh_nodes),
        mesh_nodes,
        strided_groups(mesh_nodes, mesh_groups, mesh_members),
        mesh_workers,
        0,
        idle_window,
        false,
        None,
        &mut failures,
    );
    print_cell(&off_cell);
    let (on_cell, mesh_snapshot) = run_cell(
        format!("mesh-{mesh_nodes}x{mesh_groups}x{mesh_members}-telemetry"),
        "mesh",
        make_mesh(mesh_nodes),
        mesh_nodes,
        strided_groups(mesh_nodes, mesh_groups, mesh_members),
        mesh_workers,
        0,
        idle_window,
        true,
        None,
        &mut failures,
    );
    print_cell(&on_cell);

    let allowed_ms = off_cell.elected_ms
        + ((off_cell.elected_ms as f64 * TELEMETRY_MAX_RATIO) as u128)
            .max(TELEMETRY_NOISE_FLOOR_MS);
    let overhead = Overhead {
        cell: off_cell.name.clone(),
        off_ms: off_cell.elected_ms,
        on_ms: on_cell.elected_ms,
        allowed_ms,
        ok: on_cell.elected_ms <= allowed_ms,
    };
    if !overhead.ok {
        failures.push(format!(
            "{}: telemetry overhead gate failed — elected in {} ms with telemetry \
             vs {} ms without (allowed {} ms = +{:.0}% or +{} ms floor)",
            on_cell.name,
            overhead.on_ms,
            overhead.off_ms,
            overhead.allowed_ms,
            TELEMETRY_MAX_RATIO * 100.0,
            TELEMETRY_NOISE_FLOOR_MS,
        ));
    }
    cells.push(off_cell);
    cells.push(on_cell);

    {
        let (cell, _) = run_cell(
            format!("udp-{udp_nodes}x{udp_groups}x{udp_members}"),
            "udp",
            || bind_loopback_mesh::<ServiceMessage>(udp_nodes).expect("bind loopback sockets"),
            udp_nodes,
            strided_groups(udp_nodes, udp_groups, udp_members),
            udp_workers,
            udp_nodes, // one reader thread per socket
            idle_window,
            false,
            None,
            &mut failures,
        );
        print_cell(&cell);
        cells.push(cell);
    }

    // Cell 4: the shared-socket UDP plane at mesh scale — every node's
    // datagrams demultiplexed behind `plane_sockets` sockets, so the whole
    // deployment (runtime + transport) fits in `workers + sockets` threads.
    {
        let (plane_nodes, plane_groups, plane_members, plane_workers, plane_sockets) = if args.smoke
        {
            (200, 25, 8, 4, 4)
        } else {
            (1000, 125, 8, 8, 8)
        };
        // The plane is created inside `make_endpoints` so its reader
        // threads land inside `run_cell`'s thread accounting; the handle is
        // smuggled out for the datagram counter and the metrics snapshot.
        let plane_slot: std::cell::RefCell<Option<SharedUdpPlane<ServiceMessage>>> =
            std::cell::RefCell::new(None);
        let datagram_counter = || {
            plane_slot
                .borrow()
                .as_ref()
                .map(|plane| plane.stats().datagrams_received)
                .unwrap_or(0)
        };
        let (cell, _) = run_cell(
            format!("udp-shared-{plane_nodes}x{plane_groups}x{plane_members}"),
            "udp-shared",
            || {
                let plane =
                    SharedUdpPlane::<ServiceMessage>::bind_loopback(plane_nodes, plane_sockets)
                        .expect("bind shared UDP plane");
                let endpoints = plane.endpoints();
                *plane_slot.borrow_mut() = Some(plane);
                endpoints
            },
            plane_nodes,
            strided_groups(plane_nodes, plane_groups, plane_members),
            plane_workers,
            plane_sockets, // one reader thread per *socket*, not per node
            idle_window,
            false,
            Some(&datagram_counter),
            &mut failures,
        );
        // The plane cell's whole deployment — runtime and transport — must
        // fit in workers + sockets threads; this is the tentpole's O(n) →
        // O(workers) claim, gated.
        if let Some(spawned) = cell.threads_spawned {
            if spawned > plane_workers + plane_sockets {
                failures.push(format!(
                    "{}: {spawned} total threads for {plane_nodes} nodes \
                     (max {} = {plane_workers} workers + {plane_sockets} sockets) — \
                     the shared plane is not O(workers)",
                    cell.name,
                    plane_workers + plane_sockets
                ));
            }
        }
        print_cell(&cell);
        cells.push(cell);
        if let Some(path) = &args.snapshot_plane_prom {
            let registry = Registry::default();
            if let Some(plane) = plane_slot.borrow().as_ref() {
                plane.bind(&registry, "udp.plane");
            }
            let snapshot = registry.snapshot();
            if let Err(e) = std::fs::write(path, sle_obs::render_prometheus(&snapshot)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote plane Prometheus snapshot to {path}");
        }
    }

    if let Some(snapshot) = &mesh_snapshot {
        if let Some(path) = &args.snapshot_prom {
            if let Err(e) = std::fs::write(path, sle_obs::render_prometheus(snapshot)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote Prometheus snapshot to {path}");
        }
        if let Some(path) = &args.snapshot_json {
            if let Err(e) = std::fs::write(path, sle_obs::render_json(snapshot)) {
                eprintln!("error: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("wrote JSON snapshot to {path}");
        }
    }

    let json = render_json(&cells, &overhead, args.smoke);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} ({} cells) in {:.1}s wall-clock",
        args.out,
        cells.len(),
        total.elapsed().as_secs_f64()
    );

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("FAIL: {failure}");
        }
        std::process::exit(1);
    }
    println!(
        "OK: every group elected on O(workers) threads \
         (<= {MAX_RUNTIME_THREADS} runtime threads + transport readers), \
         idle wakeups <= {MAX_IDLE_WAKEUPS_PER_SEC}/s, telemetry overhead \
         {} ms vs {} ms baseline (allowed {} ms)",
        overhead.on_ms, overhead.off_ms, overhead.allowed_ms
    );
}

fn print_cell(cell: &Cell) {
    println!(
        "{:<22} {:>6} {:>7} {:>8} {:>9} {:>11} {:>9.1} {:>8.1} {:>8}",
        cell.name,
        cell.nodes,
        cell.groups,
        cell.workers,
        cell.threads_spawned
            .map(|t| t.to_string())
            .unwrap_or_else(|| "?".into()),
        cell.elected_ms,
        cell.wakeups_per_sec,
        cell.idle_wakeups_per_sec,
        cell.wall_ms,
    );
}
