//! The adversarial-schedule sweep: N seeds × M fault-plan families ×
//! S1/S2/S3, with invariant checking on every run and automatic shrinking
//! of failures to minimal, ready-to-paste regression tests.
//!
//! ```text
//! cargo run --release -p sle-bench --bin chaos_sweep                 # full sweep (50 seeds)
//! cargo run --release -p sle-bench --bin chaos_sweep -- --smoke     # CI-sized pinned mini-sweep
//! cargo run --release -p sle-bench --bin chaos_sweep -- --weakened  # prove the checker catches a bad detector
//! ```
//!
//! Options: `--seeds N`, `--seed-base N`, `--nodes N`,
//! `--duration-secs N`, `--no-shrink`, `--summary-file PATH` (write the
//! report there too — CI publishes it as a job artifact).
//!
//! Exit status: 0 when every run upholds every invariant (or, under
//! `--weakened`, when the deliberately broken detector *is* caught);
//! 1 otherwise.

use std::time::Instant;

use sle_chaos::{run_sweep, SweepConfig};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_sim::time::SimDuration;

struct Args {
    seeds: Option<u64>,
    seed_base: Option<u64>,
    nodes: Option<usize>,
    duration_secs: Option<u64>,
    smoke: bool,
    weakened: bool,
    no_shrink: bool,
    summary_file: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: None,
        seed_base: None,
        nodes: None,
        duration_secs: None,
        smoke: false,
        weakened: false,
        no_shrink: false,
        summary_file: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--seeds" => args.seeds = Some(parse(&value("--seeds")?)?),
            "--seed-base" => args.seed_base = Some(parse(&value("--seed-base")?)?),
            "--nodes" => args.nodes = Some(parse(&value("--nodes")?)?),
            "--duration-secs" => args.duration_secs = Some(parse(&value("--duration-secs")?)?),
            "--smoke" => args.smoke = true,
            "--weakened" => args.weakened = true,
            "--no-shrink" => args.no_shrink = true,
            "--summary-file" => args.summary_file = Some(value("--summary-file")?),
            "--help" | "-h" => {
                println!(
                    "usage: chaos_sweep [--smoke] [--weakened] [--seeds N] [--seed-base N] \
                     [--nodes N] [--duration-secs N] [--no-shrink] [--summary-file PATH]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("not a valid number: {text}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };

    let mut config = if args.smoke {
        SweepConfig::smoke()
    } else {
        SweepConfig::new()
    };
    if let Some(seeds) = args.seeds {
        config = config.with_seeds(seeds);
    }
    if let Some(base) = args.seed_base {
        config.seed_base = base;
    }
    if let Some(nodes) = args.nodes {
        config = config.with_nodes(nodes);
    }
    if let Some(secs) = args.duration_secs {
        config.duration = SimDuration::from_secs(secs);
    }
    if args.no_shrink {
        config.shrink_failures = false;
    }
    if args.weakened {
        // Test-only weakening of the detector: a 40 ms detection bound over
        // a 25 ms-mean lossy link leaves the timeout shift under the delay
        // tail, so false suspicions demote the (alive) leader. The sweep
        // MUST flag this — it is the proof that the checker has teeth.
        config = config
            .with_qos(
                QosSpec::new(
                    SimDuration::from_millis(40),
                    SimDuration::from_secs(3600),
                    0.999,
                )
                .expect("valid weakened QoS"),
            )
            .with_link(LinkSpec::from_paper_tuple(25.0, 0.1))
            .with_seeds(args.seeds.unwrap_or(1))
            .with_nodes(args.nodes.unwrap_or(3));
        config.algorithms = vec![ElectorKind::OmegaLc];
        config.duration = SimDuration::from_secs(args.duration_secs.unwrap_or(30));
    }

    let started = Instant::now();
    let summary = run_sweep(&config);
    let elapsed = started.elapsed();

    let mut report = summary.render();
    report.push_str(&format!(
        "\n{} runs in {:.1}s wall-clock ({:.0} runs/s)\n",
        summary.runs,
        elapsed.as_secs_f64(),
        summary.runs as f64 / elapsed.as_secs_f64().max(1e-9)
    ));
    println!("{report}");

    if let Some(path) = &args.summary_file {
        if let Err(error) = std::fs::write(path, &report) {
            eprintln!("error: could not write {path}: {error}");
            std::process::exit(2);
        }
        println!("summary written to {path}");
    }

    if args.weakened {
        if summary.ok() {
            eprintln!("FAIL: the deliberately weakened detector was NOT caught");
            std::process::exit(1);
        }
        println!(
            "OK: the weakened detector was caught ({} failing runs, minimal reproducers above)",
            summary.failures.len()
        );
    } else if !summary.ok() {
        eprintln!(
            "FAIL: {} runs violated protocol invariants (reproducers above)",
            summary.failures.len()
        );
        std::process::exit(1);
    } else {
        println!("OK: every run upheld every invariant");
    }
}
