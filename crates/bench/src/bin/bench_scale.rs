//! The scale macro-benchmark: {processes × groups × service level} sweeps
//! with steady-state message-count assertions.
//!
//! ```text
//! cargo run --release -p sle-bench --bin bench_scale            # full sweep (1M procs / 100k groups)
//! cargo run --release -p sle-bench --bin bench_scale -- --smoke # CI-sized mini-sweep
//! ```
//!
//! Two experiment families run, both in virtual time over the simulator:
//!
//! 1. **Growth law** — one group of n candidates for a range of n, under S2
//!    (Ω_lc, every candidate keeps sending ALIVEs) and S3 (Ω_l, only the
//!    leader does). The measured steady-state ALIVE counts must grow
//!    O(n²) for S2 and O(n) for S3 — the communication-efficiency claim
//!    the paper makes for Ω_l, held as an executable assertion (the
//!    process exits 1 if the fitted log-log slopes disagree).
//! 2. **Scale-out** — many-group S3 deployments up to the frontier cell:
//!    10 000 workstations × 100 000 groups × 10 members each = 1 000 000
//!    group-member processes, which must settle, elect a leader in every
//!    group, and complete in tens of seconds of wall-clock time. This is
//!    the cell that exercises the timer wheel, the dense per-peer /
//!    per-group arenas, the per-node ALIVE tick with batched fan-out and
//!    the shared monitor arena together.
//!
//! The smoke cells are a strict subset of the full cells (same names, same
//! shapes), so a smoke run can be regression-gated against a checked-in
//! full-sweep baseline with `--gate-against PATH`: for every cell name the
//! two runs share, the simulator event-processing throughput
//! (`events_per_sec`) must not drop more than 15 % below the baseline.
//!
//! Results are written to `BENCH_scale.json` (schema `sle-bench-scale/3`,
//! documented in `docs/BENCH.md`) so successive PRs leave a perf
//! trajectory; CI uploads the file as the `bench-scale` artifact.
//!
//! Options: `--smoke` (CI sizes), `--out PATH` (default `BENCH_scale.json`),
//! `--gate-against PATH` (compare against a baseline JSON, exit 1 on a
//! >15 % `events_per_sec` regression in any shared cell).

use std::fmt::Write as _;
use std::time::Instant;

use sle_core::{GroupId, NodeInstruments, ProcessId};
use sle_core::{JoinConfig, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_harness::deploy;
use sle_obs::{Registry, TraceRing};
use sle_sim::prelude::*;

/// Default virtual time a deployment gets to elect before measuring.
const SETTLE: SimDuration = SimDuration::from_secs(12);
/// Default virtual measurement window for steady-state counts.
const WINDOW: SimDuration = SimDuration::from_secs(10);
/// Default failure-detection bound `T_D^U` (the paper's §6.1 value).
const DETECTION: SimDuration = SimDuration::from_secs(1);
/// Maximum tolerated `events_per_sec` drop vs a `--gate-against` baseline.
const GATE_TOLERANCE: f64 = 0.15;

struct Args {
    smoke: bool,
    out: String,
    gate_against: Option<String>,
    /// Ad-hoc single scale cell `nodes,groups,members,window_s,detection_ms`
    /// (replaces the built-in shape lists; for tuning new cells).
    cell: Option<(usize, usize, usize, u64, u64)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_scale.json".to_string(),
        gate_against: None,
        cell: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = iter
                    .next()
                    .ok_or_else(|| "--out requires a path".to_string())?;
            }
            "--gate-against" => {
                args.gate_against = Some(
                    iter.next()
                        .ok_or_else(|| "--gate-against requires a path".to_string())?,
                );
            }
            "--cell" => {
                let spec = iter.next().ok_or_else(|| {
                    "--cell requires nodes,groups,members,window_s,detection_ms".to_string()
                })?;
                let parts: Vec<u64> = spec
                    .split(',')
                    .map(|p| p.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --cell spec {spec}: {e}"))?;
                let [n, g, m, w, d] = parts[..] else {
                    return Err(format!("--cell wants 5 comma-separated fields, got {spec}"));
                };
                args.cell = Some((n as usize, g as usize, m as usize, w, d));
            }
            "--help" | "-h" => {
                println!("usage: bench_scale [--smoke] [--out PATH] [--gate-against PATH]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// What one measured cell produced.
struct Cell {
    name: String,
    algorithm: &'static str,
    nodes: usize,
    groups: usize,
    processes: usize,
    members_per_group: usize,
    settle: SimDuration,
    window: SimDuration,
    /// The failure-detection bound `T_D^U` each member joined with. The
    /// ALIVE rate scales inversely with it, so big cells relax it to keep
    /// wall-clock bounded; it is recorded per cell to keep runs comparable.
    detection: SimDuration,
    /// Per-group ALIVE payloads sent during the window (batch entries
    /// count individually).
    alive_payloads: u64,
    /// ALIVE datagrams sent during the window (a batch counts once).
    alive_datagrams: u64,
    /// All messages handed to the network during the window.
    messages_total: u64,
    /// All payload bytes handed to the network during the window.
    bytes_total: u64,
    /// Simulator events processed over the whole run.
    events_processed: u64,
    /// Simulator event-processing throughput: `events_processed` over the
    /// cell's wall-clock time (build + settle + window). The quantity the
    /// `--gate-against` regression gate compares.
    events_per_sec: f64,
    /// Groups whose members all agreed on a live leader at the end.
    groups_agreed: usize,
    wall_ms: u128,
    /// Election-latency percentiles from the live histograms: per-node
    /// time from group creation to the first leader announcement.
    election_p50_ms: f64,
    election_p99_ms: f64,
}

/// A deployment shape: which workstations are members of which groups.
struct Deployment {
    nodes: usize,
    /// `groups[g]` lists the member workstations of group `g + 1`.
    groups: Vec<Vec<NodeId>>,
}

impl Deployment {
    /// One group over workstations `0..n`.
    fn single_group(n: usize) -> Self {
        Deployment {
            nodes: n,
            groups: vec![(0..n as u32).map(NodeId).collect()],
        }
    }

    /// `groups` groups of `members` workstations each, strided over
    /// `nodes` workstations so membership is spread evenly (with
    /// `groups == nodes`, every workstation is in exactly `members`
    /// groups). See [`deploy::strided_groups`].
    fn strided(nodes: usize, groups: usize, members: usize) -> Self {
        Deployment {
            nodes,
            groups: deploy::strided_groups(nodes, groups, members),
        }
    }

    fn processes(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

fn algorithm_label(algorithm: ElectorKind) -> &'static str {
    match algorithm {
        ElectorKind::OmegaId => "S1/omega-id",
        ElectorKind::OmegaLc => "S2/omega-lc",
        ElectorKind::OmegaL => "S3/omega-l",
    }
}

/// Builds the world for a deployment, runs settle + window, and measures.
fn run_cell(
    name: &str,
    deployment: &Deployment,
    algorithm: ElectorKind,
    seed: u64,
    settle: SimDuration,
    window: SimDuration,
    detection: SimDuration,
) -> Cell {
    let wall = Instant::now();
    let n = deployment.nodes;

    // Per-workstation membership and peer sets (a workstation only gossips
    // with workstations it shares a group with — the deployment shape a
    // sharded installation uses, and what keeps HELLO traffic O(n)).
    let deploy::Membership {
        groups_of,
        peers_of,
    } = deploy::membership(n, &deployment.groups);

    // Instrumented with the same registry the real-time runtime would
    // attach: the election histograms below come from live QoS telemetry,
    // not post-hoc trace analysis. The trace ring is small — this bench
    // reads histograms, not events.
    let registry = Registry::default();
    let ring = TraceRing::new(64);
    let mut world: World<ServiceNode, PerfectMedium> = World::new(
        n,
        Box::new({
            let registry = registry.clone();
            move |node, _inc| {
                let mut config =
                    ServiceConfig::new(node, peers_of[node.index()].clone(), algorithm);
                let join = JoinConfig::candidate()
                    .with_qos(QosSpec::paper_default_with_detection(detection));
                for &group in &groups_of[node.index()] {
                    config = config.with_auto_join(group, join);
                }
                let mut service = ServiceNode::new(config);
                service.set_instruments(NodeInstruments::new(&registry, ring.clone(), node));
                service
            }
        }),
        PerfectMedium,
        seed,
    );

    let mut observer = CountingObserver::new();
    world.run_for(settle, &mut observer);
    let node_counts = |world: &World<ServiceNode, PerfectMedium>| -> (u64, u64) {
        let mut payloads = 0;
        let mut datagrams = 0;
        for i in 0..world.num_nodes() {
            if let Some(actor) = world.actor(NodeId(i as u32)) {
                payloads += actor.alive_payloads_sent();
                datagrams += actor.alive_datagrams_sent();
            }
        }
        (payloads, datagrams)
    };
    let (payloads_before, datagrams_before) = node_counts(&world);
    let messages_before = observer.sent;
    let bytes_before = observer.bytes_sent;

    world.run_for(window, &mut observer);
    let (payloads_after, datagrams_after) = node_counts(&world);

    // Every group must have converged on a common leader among its members.
    let mut groups_agreed = 0;
    for (g, members) in deployment.groups.iter().enumerate() {
        let group = GroupId(g as u32 + 1);
        let mut agreed: Option<ProcessId> = None;
        let mut ok = true;
        for &member in members {
            match world.actor(member).and_then(|a| a.leader_of(group)) {
                Some(view) => match agreed {
                    None => agreed = Some(view),
                    Some(leader) if leader == view => {}
                    _ => {
                        ok = false;
                        break;
                    }
                },
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && agreed.is_some() {
            groups_agreed += 1;
        }
    }

    let elections = registry.merged_histogram("node.", ".elect.election_ns");
    let wall_ms = wall.elapsed().as_millis();
    let events_processed = world.events_processed();
    Cell {
        name: name.to_string(),
        algorithm: algorithm_label(algorithm),
        nodes: n,
        groups: deployment.groups.len(),
        processes: deployment.processes(),
        members_per_group: deployment.groups.first().map(Vec::len).unwrap_or(0),
        settle,
        window,
        detection,
        alive_payloads: payloads_after - payloads_before,
        alive_datagrams: datagrams_after - datagrams_before,
        messages_total: observer.sent - messages_before,
        bytes_total: observer.bytes_sent - bytes_before,
        events_processed,
        events_per_sec: events_processed as f64 / (wall_ms.max(1) as f64 / 1000.0),
        groups_agreed,
        wall_ms,
        election_p50_ms: elections.percentile_ms(0.50),
        election_p99_ms: elections.percentile_ms(0.99),
    }
}

/// Fitted log-log slope of steady-state ALIVE count against group size
/// between the first and last point of a growth series.
fn growth_slope(cells: &[&Cell]) -> f64 {
    let first = cells.first().expect("non-empty series");
    let last = cells.last().expect("non-empty series");
    ((last.alive_payloads as f64).ln() - (first.alive_payloads as f64).ln())
        / ((last.members_per_group as f64).ln() - (first.members_per_group as f64).ln())
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(!name.contains('"') && !name.contains('\\'));
    name
}

fn render_json(cells: &[Cell], s2_slope: f64, s3_slope: f64, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"sle-bench-scale/3\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"settle_secs\": {}, \"window_secs\": {},",
        SETTLE.as_secs_f64(),
        WINDOW.as_secs_f64()
    );
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"algorithm\": \"{}\", \"nodes\": {}, \"groups\": {}, \
             \"processes\": {}, \"members_per_group\": {}, \"settle_secs\": {}, \
             \"window_secs\": {}, \"detection_ms\": {}, \"alive_payloads\": {}, \
             \"alive_datagrams\": {}, \"messages_total\": {}, \"bytes_total\": {}, \
             \"events_processed\": {}, \"events_per_sec\": {:.0}, \"groups_agreed\": {}, \
             \"wall_ms\": {}, \"election_p50_ms\": {:.1}, \"election_p99_ms\": {:.1}}}",
            json_escape_free(&cell.name),
            cell.algorithm,
            cell.nodes,
            cell.groups,
            cell.processes,
            cell.members_per_group,
            cell.settle.as_secs_f64(),
            cell.window.as_secs_f64(),
            cell.detection.as_millis_f64() as u64,
            cell.alive_payloads,
            cell.alive_datagrams,
            cell.messages_total,
            cell.bytes_total,
            cell.events_processed,
            cell.events_per_sec,
            cell.groups_agreed,
            cell.wall_ms,
            cell.election_p50_ms,
            cell.election_p99_ms,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"s2_growth_slope\": {s2_slope:.3}, \"s3_growth_slope\": {s3_slope:.3}, \
         \"s2_expected\": \"O(n^2)\", \"s3_expected\": \"O(n)\"}}"
    );
    out.push_str("}\n");
    out
}

/// Extracts `(name, events_per_sec)` pairs from a baseline JSON produced by
/// an earlier run of this binary. Hand-rolled scan (the workspace is
/// std-only): relies on each cell object carrying a `"name"` key before its
/// `"events_per_sec"` key, which `render_json` guarantees. Cells without an
/// `events_per_sec` key (schema < 3 baselines) are skipped.
fn parse_baseline_cells(json: &str) -> Vec<(String, f64)> {
    let mut cells = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("\"name\": \"") {
        let after = &rest[start + "\"name\": \"".len()..];
        let Some(name_end) = after.find('"') else {
            break;
        };
        let name = &after[..name_end];
        let body = &after[name_end..];
        // The cell object ends at the next '}'; events_per_sec must appear
        // before it (and before the next cell's name).
        let object_end = body.find('}').unwrap_or(body.len());
        if let Some(pos) = body[..object_end].find("\"events_per_sec\": ") {
            let value = &body[pos + "\"events_per_sec\": ".len()..object_end];
            let end = value
                .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e')
                .unwrap_or(value.len());
            if let Ok(eps) = value[..end].parse::<f64>() {
                cells.push((name.to_string(), eps));
            }
        }
        rest = &body[object_end..];
    }
    cells
}

/// Compares this run's cells against a baseline file: every cell name both
/// runs share must be within [`GATE_TOLERANCE`] of the baseline
/// `events_per_sec`. Returns `false` (and prints FAIL lines) on regression.
fn gate_against(cells: &[Cell], path: &str) -> bool {
    let baseline = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline_cells = parse_baseline_cells(&baseline);
    if baseline_cells.is_empty() {
        println!(
            "gate: baseline {path} carries no events_per_sec cells (pre-/3 schema?) — skipping"
        );
        return true;
    }
    let mut ok = true;
    let mut compared = 0;
    for cell in cells {
        let Some((_, base)) = baseline_cells.iter().find(|(n, _)| n == &cell.name) else {
            continue;
        };
        compared += 1;
        let floor = base * (1.0 - GATE_TOLERANCE);
        let ratio = cell.events_per_sec / base;
        if cell.events_per_sec < floor {
            eprintln!(
                "GATE FAIL: {} events_per_sec {:.0} < {:.0} ({}% of baseline {:.0})",
                cell.name,
                cell.events_per_sec,
                floor,
                (ratio * 100.0) as i64,
                base
            );
            ok = false;
        } else {
            println!(
                "gate: {} events_per_sec {:.0} vs baseline {:.0} ({}%) — ok",
                cell.name,
                cell.events_per_sec,
                base,
                (ratio * 100.0) as i64
            );
        }
    }
    println!("gate: compared {compared} shared cell(s) against {path}");
    ok
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let total = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();

    // Ad-hoc tuning mode: run one scale cell and report, no JSON, no gates.
    if let Some((nodes, groups, members, window_secs, detection_ms)) = args.cell {
        let deployment = Deployment::strided(nodes, groups, members);
        let cell = run_cell(
            &format!("scale-s3-{nodes}x{groups}x{members}"),
            &deployment,
            ElectorKind::OmegaL,
            0x5CA1E,
            SETTLE,
            SimDuration::from_secs(window_secs),
            SimDuration::from_millis(detection_ms),
        );
        println!(
            "{}: procs {} agreed {}/{} events {} ({:.0}/s) wall {} ms p50 {:.1} ms p99 {:.1} ms",
            cell.name,
            cell.processes,
            cell.groups_agreed,
            cell.groups,
            cell.events_processed,
            cell.events_per_sec,
            cell.wall_ms,
            cell.election_p50_ms,
            cell.election_p99_ms
        );
        return;
    }

    // Family 1: the growth law, S2 vs S3 over one group of n candidates.
    // The smoke sizes are a prefix of the full sizes so smoke cells share
    // names (and shapes) with the checked-in full baseline.
    let sizes: &[usize] = if args.smoke {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 24]
    };
    println!(
        "growth law: 1 group x n candidates, window {} s",
        WINDOW.as_secs_f64()
    );
    println!(
        "{:<12} {:>5} {:>16} {:>16} {:>10} {:>8}",
        "service", "n", "alive-payloads", "alive-datagrams", "msgs", "wall-ms"
    );
    for &algorithm in &[ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        for &n in sizes {
            let cell = run_cell(
                &format!("growth-{}-n{}", algorithm_label(algorithm), n),
                &Deployment::single_group(n),
                algorithm,
                0xBE1C_u64 + n as u64,
                SETTLE,
                WINDOW,
                DETECTION,
            );
            println!(
                "{:<12} {:>5} {:>16} {:>16} {:>10} {:>8}",
                cell.algorithm,
                n,
                cell.alive_payloads,
                cell.alive_datagrams,
                cell.messages_total,
                cell.wall_ms
            );
            assert_eq!(cell.groups_agreed, 1, "{}: no agreement", cell.name);
            cells.push(cell);
        }
    }

    let series = |label: &str| -> Vec<&Cell> {
        cells
            .iter()
            .filter(|c| c.algorithm == label && c.name.starts_with("growth-"))
            .collect()
    };
    let s2_slope = growth_slope(&series("S2/omega-lc"));
    let s3_slope = growth_slope(&series("S3/omega-l"));
    println!(
        "\nfitted growth slopes: S2 {s2_slope:.2} (want ≥ 1.7), S3 {s3_slope:.2} (want ≤ 1.4)"
    );

    // Family 2: the S3 scale-out cells, up to the million-process frontier
    // (10k workstations × 100k groups × 10 members each). Tuple:
    // (nodes, groups, members, window secs, detection T_D^U ms). The
    // frontier cell relaxes the detection bound — the ALIVE/FD event rate
    // scales inversely with T_D, and at 1M group-member processes the
    // paper-default 1 s bound would put the cell hundreds of millions of
    // events past a tens-of-seconds wall-clock envelope — and measures
    // over a shorter window for the same reason; both overrides are
    // recorded in the cell's JSON. The smoke shape list is a prefix of
    // the full list.
    let scale_shapes: &[(usize, usize, usize, u64, u64)] = if args.smoke {
        &[(200, 200, 5, 10, 1000)]
    } else {
        &[
            (200, 200, 5, 10, 1000),
            (400, 400, 5, 10, 1000),
            (1000, 1000, 10, 10, 1000),
            (10000, 100000, 10, 5, 8000),
        ]
    };
    println!("\nscale-out: S3 over strided multi-group deployments");
    println!(
        "{:<28} {:>6} {:>6} {:>8} {:>14} {:>14} {:>13} {:>9} {:>8}",
        "cell",
        "nodes",
        "groups",
        "procs",
        "alive-payloads",
        "datagrams",
        "events/s",
        "agreed",
        "wall-ms"
    );
    for &(nodes, groups, members, window_secs, detection_ms) in scale_shapes {
        let deployment = Deployment::strided(nodes, groups, members);
        let processes = deployment.processes();
        let cell = run_cell(
            &format!("scale-s3-{nodes}x{groups}x{members}"),
            &deployment,
            ElectorKind::OmegaL,
            0x5CA1E,
            SETTLE,
            SimDuration::from_secs(window_secs),
            SimDuration::from_millis(detection_ms),
        );
        println!(
            "{:<28} {:>6} {:>6} {:>8} {:>14} {:>14} {:>13.0} {:>9} {:>8}",
            cell.name,
            cell.nodes,
            cell.groups,
            processes,
            cell.alive_payloads,
            cell.alive_datagrams,
            cell.events_per_sec,
            format!("{}/{}", cell.groups_agreed, cell.groups),
            cell.wall_ms
        );
        assert_eq!(
            cell.groups_agreed, cell.groups,
            "{}: not every group elected",
            cell.name
        );
        cells.push(cell);
    }

    let json = render_json(&cells, s2_slope, s3_slope, args.smoke);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} ({} cells) in {:.1}s wall-clock",
        args.out,
        cells.len(),
        total.elapsed().as_secs_f64()
    );

    // The headline assertion: S3's steady-state ALIVE count grows O(n),
    // S2's O(n²). Generous tolerances keep the check insensitive to the
    // ±1 of "n" vs "n-1" and to settle jitter, while still cleanly
    // separating linear from quadratic growth.
    let mut failed = false;
    if s2_slope < 1.7 {
        eprintln!("FAIL: S2 growth slope {s2_slope:.2} < 1.7 — expected O(n^2) ALIVE traffic");
        failed = true;
    }
    if s3_slope > 1.4 {
        eprintln!("FAIL: S3 growth slope {s3_slope:.2} > 1.4 — expected O(n) ALIVE traffic");
        failed = true;
    }
    if let Some(path) = &args.gate_against {
        if !gate_against(&cells, path) {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: S3 ALIVE traffic grows O(n), S2 grows O(n^2)");
}
