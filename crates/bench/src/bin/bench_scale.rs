//! The scale macro-benchmark: {processes × groups × service level} sweeps
//! with steady-state message-count assertions.
//!
//! ```text
//! cargo run --release -p sle-bench --bin bench_scale            # full sweep (10k procs / 1k groups)
//! cargo run --release -p sle-bench --bin bench_scale -- --smoke # CI-sized mini-sweep
//! ```
//!
//! Two experiment families run, both in virtual time over the simulator:
//!
//! 1. **Growth law** — one group of n candidates for a range of n, under S2
//!    (Ω_lc, every candidate keeps sending ALIVEs) and S3 (Ω_l, only the
//!    leader does). The measured steady-state ALIVE counts must grow
//!    O(n²) for S2 and O(n) for S3 — the communication-efficiency claim
//!    the paper makes for Ω_l, held as an executable assertion (the
//!    process exits 1 if the fitted log-log slopes disagree).
//! 2. **Scale-out** — a many-group S3 deployment (up to 1 000 workstations
//!    × 1 000 groups × 10 members each = 10 000 processes) that must
//!    settle, elect a leader in every group, and complete in seconds of
//!    wall-clock time. This is the cell that exercises the timer wheel,
//!    the per-node ALIVE tick with batched fan-out and the shared monitor
//!    arena together.
//!
//! Results are written to `BENCH_scale.json` (schema documented in
//! `docs/BENCH.md`) so successive PRs leave a perf trajectory; CI uploads
//! the file as the `bench-scale` artifact.
//!
//! Options: `--smoke` (CI sizes), `--out PATH` (default `BENCH_scale.json`).

use std::fmt::Write as _;
use std::time::Instant;

use sle_core::{GroupId, NodeInstruments, ProcessId};
use sle_core::{JoinConfig, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_harness::deploy;
use sle_obs::{Registry, TraceRing};
use sle_sim::prelude::*;

/// Virtual time the deployment gets to elect before measuring.
const SETTLE: SimDuration = SimDuration::from_secs(12);
/// Virtual measurement window for steady-state counts.
const WINDOW: SimDuration = SimDuration::from_secs(10);

struct Args {
    smoke: bool,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_scale.json".to_string(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = iter
                    .next()
                    .ok_or_else(|| "--out requires a path".to_string())?;
            }
            "--help" | "-h" => {
                println!("usage: bench_scale [--smoke] [--out PATH]");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// What one measured cell produced.
struct Cell {
    name: String,
    algorithm: &'static str,
    nodes: usize,
    groups: usize,
    processes: usize,
    members_per_group: usize,
    /// Per-group ALIVE payloads sent during the window (batch entries
    /// count individually).
    alive_payloads: u64,
    /// ALIVE datagrams sent during the window (a batch counts once).
    alive_datagrams: u64,
    /// All messages handed to the network during the window.
    messages_total: u64,
    /// All payload bytes handed to the network during the window.
    bytes_total: u64,
    /// Simulator events processed over the whole run.
    events_processed: u64,
    /// Groups whose members all agreed on a live leader at the end.
    groups_agreed: usize,
    wall_ms: u128,
    /// Election-latency percentiles from the live histograms: per-node
    /// time from group creation to the first leader announcement.
    election_p50_ms: f64,
    election_p99_ms: f64,
}

/// A deployment shape: which workstations are members of which groups.
struct Deployment {
    nodes: usize,
    /// `groups[g]` lists the member workstations of group `g + 1`.
    groups: Vec<Vec<NodeId>>,
}

impl Deployment {
    /// One group over workstations `0..n`.
    fn single_group(n: usize) -> Self {
        Deployment {
            nodes: n,
            groups: vec![(0..n as u32).map(NodeId).collect()],
        }
    }

    /// `groups` groups of `members` workstations each, strided over
    /// `nodes` workstations so membership is spread evenly (with
    /// `groups == nodes`, every workstation is in exactly `members`
    /// groups). See [`deploy::strided_groups`].
    fn strided(nodes: usize, groups: usize, members: usize) -> Self {
        Deployment {
            nodes,
            groups: deploy::strided_groups(nodes, groups, members),
        }
    }

    fn processes(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

fn algorithm_label(algorithm: ElectorKind) -> &'static str {
    match algorithm {
        ElectorKind::OmegaId => "S1/omega-id",
        ElectorKind::OmegaLc => "S2/omega-lc",
        ElectorKind::OmegaL => "S3/omega-l",
    }
}

/// Builds the world for a deployment, runs settle + window, and measures.
fn run_cell(name: &str, deployment: &Deployment, algorithm: ElectorKind, seed: u64) -> Cell {
    let wall = Instant::now();
    let n = deployment.nodes;

    // Per-workstation membership and peer sets (a workstation only gossips
    // with workstations it shares a group with — the deployment shape a
    // sharded installation uses, and what keeps HELLO traffic O(n)).
    let deploy::Membership {
        groups_of,
        peers_of,
    } = deploy::membership(n, &deployment.groups);

    // Instrumented with the same registry the real-time runtime would
    // attach: the election histograms below come from live QoS telemetry,
    // not post-hoc trace analysis. The trace ring is small — this bench
    // reads histograms, not events.
    let registry = Registry::default();
    let ring = TraceRing::new(64);
    let mut world: World<ServiceNode, PerfectMedium> = World::new(
        n,
        Box::new({
            let registry = registry.clone();
            move |node, _inc| {
                let mut config =
                    ServiceConfig::new(node, peers_of[node.index()].clone(), algorithm);
                for &group in &groups_of[node.index()] {
                    config = config.with_auto_join(group, JoinConfig::candidate());
                }
                let mut service = ServiceNode::new(config);
                service.set_instruments(NodeInstruments::new(&registry, ring.clone(), node));
                service
            }
        }),
        PerfectMedium,
        seed,
    );

    let mut observer = CountingObserver::new();
    world.run_for(SETTLE, &mut observer);
    let node_counts = |world: &World<ServiceNode, PerfectMedium>| -> (u64, u64) {
        let mut payloads = 0;
        let mut datagrams = 0;
        for i in 0..world.num_nodes() {
            if let Some(actor) = world.actor(NodeId(i as u32)) {
                payloads += actor.alive_payloads_sent();
                datagrams += actor.alive_datagrams_sent();
            }
        }
        (payloads, datagrams)
    };
    let (payloads_before, datagrams_before) = node_counts(&world);
    let messages_before = observer.sent;
    let bytes_before = observer.bytes_sent;

    world.run_for(WINDOW, &mut observer);
    let (payloads_after, datagrams_after) = node_counts(&world);

    // Every group must have converged on a common leader among its members.
    let mut groups_agreed = 0;
    for (g, members) in deployment.groups.iter().enumerate() {
        let group = GroupId(g as u32 + 1);
        let mut agreed: Option<ProcessId> = None;
        let mut ok = true;
        for &member in members {
            match world.actor(member).and_then(|a| a.leader_of(group)) {
                Some(view) => match agreed {
                    None => agreed = Some(view),
                    Some(leader) if leader == view => {}
                    _ => {
                        ok = false;
                        break;
                    }
                },
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && agreed.is_some() {
            groups_agreed += 1;
        }
    }

    let elections = registry.merged_histogram("node.", ".elect.election_ns");
    Cell {
        name: name.to_string(),
        algorithm: algorithm_label(algorithm),
        nodes: n,
        groups: deployment.groups.len(),
        processes: deployment.processes(),
        members_per_group: deployment.groups.first().map(Vec::len).unwrap_or(0),
        alive_payloads: payloads_after - payloads_before,
        alive_datagrams: datagrams_after - datagrams_before,
        messages_total: observer.sent - messages_before,
        bytes_total: observer.bytes_sent - bytes_before,
        events_processed: world.events_processed(),
        groups_agreed,
        wall_ms: wall.elapsed().as_millis(),
        election_p50_ms: elections.percentile_ms(0.50),
        election_p99_ms: elections.percentile_ms(0.99),
    }
}

/// Fitted log-log slope of steady-state ALIVE count against group size
/// between the first and last point of a growth series.
fn growth_slope(cells: &[&Cell]) -> f64 {
    let first = cells.first().expect("non-empty series");
    let last = cells.last().expect("non-empty series");
    ((last.alive_payloads as f64).ln() - (first.alive_payloads as f64).ln())
        / ((last.members_per_group as f64).ln() - (first.members_per_group as f64).ln())
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(!name.contains('"') && !name.contains('\\'));
    name
}

fn render_json(cells: &[Cell], s2_slope: f64, s3_slope: f64, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"sle-bench-scale/2\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"settle_secs\": {}, \"window_secs\": {},",
        SETTLE.as_secs_f64(),
        WINDOW.as_secs_f64()
    );
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"algorithm\": \"{}\", \"nodes\": {}, \"groups\": {}, \
             \"processes\": {}, \"members_per_group\": {}, \"alive_payloads\": {}, \
             \"alive_datagrams\": {}, \"messages_total\": {}, \"bytes_total\": {}, \
             \"events_processed\": {}, \"groups_agreed\": {}, \"wall_ms\": {}, \
             \"election_p50_ms\": {:.1}, \"election_p99_ms\": {:.1}}}",
            json_escape_free(&cell.name),
            cell.algorithm,
            cell.nodes,
            cell.groups,
            cell.processes,
            cell.members_per_group,
            cell.alive_payloads,
            cell.alive_datagrams,
            cell.messages_total,
            cell.bytes_total,
            cell.events_processed,
            cell.groups_agreed,
            cell.wall_ms,
            cell.election_p50_ms,
            cell.election_p99_ms,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"s2_growth_slope\": {s2_slope:.3}, \"s3_growth_slope\": {s3_slope:.3}, \
         \"s2_expected\": \"O(n^2)\", \"s3_expected\": \"O(n)\"}}"
    );
    out.push_str("}\n");
    out
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let total = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();

    // Family 1: the growth law, S2 vs S3 over one group of n candidates.
    let sizes: &[usize] = if args.smoke {
        &[4, 8, 16]
    } else {
        &[6, 12, 24]
    };
    println!(
        "growth law: 1 group x n candidates, window {} s",
        WINDOW.as_secs_f64()
    );
    println!(
        "{:<12} {:>5} {:>16} {:>16} {:>10} {:>8}",
        "service", "n", "alive-payloads", "alive-datagrams", "msgs", "wall-ms"
    );
    for &algorithm in &[ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        for &n in sizes {
            let cell = run_cell(
                &format!("growth-{}-n{}", algorithm_label(algorithm), n),
                &Deployment::single_group(n),
                algorithm,
                0xBE1C_u64 + n as u64,
            );
            println!(
                "{:<12} {:>5} {:>16} {:>16} {:>10} {:>8}",
                cell.algorithm,
                n,
                cell.alive_payloads,
                cell.alive_datagrams,
                cell.messages_total,
                cell.wall_ms
            );
            assert_eq!(cell.groups_agreed, 1, "{}: no agreement", cell.name);
            cells.push(cell);
        }
    }

    let series = |label: &str| -> Vec<&Cell> {
        cells
            .iter()
            .filter(|c| c.algorithm == label && c.name.starts_with("growth-"))
            .collect()
    };
    let s2_slope = growth_slope(&series("S2/omega-lc"));
    let s3_slope = growth_slope(&series("S3/omega-l"));
    println!(
        "\nfitted growth slopes: S2 {s2_slope:.2} (want ≥ 1.7), S3 {s3_slope:.2} (want ≤ 1.4)"
    );

    // Family 2: the S3 scale-out cell (the 10k-process / 1k-group sweep).
    let scale_shapes: &[(usize, usize, usize)] = if args.smoke {
        &[(200, 200, 5)]
    } else {
        &[(400, 400, 5), (1000, 1000, 10)]
    };
    println!("\nscale-out: S3 over strided multi-group deployments");
    println!(
        "{:<28} {:>6} {:>6} {:>7} {:>14} {:>14} {:>9} {:>8}",
        "cell", "nodes", "groups", "procs", "alive-payloads", "datagrams", "agreed", "wall-ms"
    );
    for &(nodes, groups, members) in scale_shapes {
        let deployment = Deployment::strided(nodes, groups, members);
        let processes = deployment.processes();
        let cell = run_cell(
            &format!("scale-s3-{nodes}x{groups}x{members}"),
            &deployment,
            ElectorKind::OmegaL,
            0x5CA1E,
        );
        println!(
            "{:<28} {:>6} {:>6} {:>7} {:>14} {:>14} {:>9} {:>8}",
            cell.name,
            cell.nodes,
            cell.groups,
            processes,
            cell.alive_payloads,
            cell.alive_datagrams,
            format!("{}/{}", cell.groups_agreed, cell.groups),
            cell.wall_ms
        );
        assert_eq!(
            cell.groups_agreed, cell.groups,
            "{}: not every group elected",
            cell.name
        );
        cells.push(cell);
    }

    let json = render_json(&cells, s2_slope, s3_slope, args.smoke);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} ({} cells) in {:.1}s wall-clock",
        args.out,
        cells.len(),
        total.elapsed().as_secs_f64()
    );

    // The headline assertion: S3's steady-state ALIVE count grows O(n),
    // S2's O(n²). Generous tolerances keep the check insensitive to the
    // ±1 of "n" vs "n-1" and to settle jitter, while still cleanly
    // separating linear from quadratic growth.
    let mut failed = false;
    if s2_slope < 1.7 {
        eprintln!("FAIL: S2 growth slope {s2_slope:.2} < 1.7 — expected O(n^2) ALIVE traffic");
        failed = true;
    }
    if s3_slope > 1.4 {
        eprintln!("FAIL: S3 growth slope {s3_slope:.2} > 1.4 — expected O(n) ALIVE traffic");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: S3 ALIVE traffic grows O(n), S2 grows O(n^2)");
}
