//! The scale macro-benchmark: {processes × groups × service level} sweeps
//! with steady-state message-count assertions.
//!
//! ```text
//! cargo run --release -p sle-bench --bin bench_scale            # full sweep (1M procs / 100k groups)
//! cargo run --release -p sle-bench --bin bench_scale -- --smoke # CI-sized mini-sweep
//! ```
//!
//! Two experiment families run, both in virtual time over the simulator:
//!
//! 1. **Growth law** — one group of n candidates for a range of n, under S2
//!    (Ω_lc, every candidate keeps sending ALIVEs) and S3 (Ω_l, only the
//!    leader does). The measured steady-state ALIVE counts must grow
//!    O(n²) for S2 and O(n) for S3 — the communication-efficiency claim
//!    the paper makes for Ω_l, held as an executable assertion (the
//!    process exits 1 if the fitted log-log slopes disagree).
//! 2. **Scale-out** — many-group S3 deployments up to the frontier cell:
//!    10 000 workstations × 100 000 groups × 10 members each = 1 000 000
//!    group-member processes, which must settle, elect a leader in every
//!    group, and complete in tens of seconds of wall-clock time. This is
//!    the cell that exercises the timer wheel, the dense per-peer /
//!    per-group arenas, the per-node ALIVE tick with batched fan-out and
//!    the shared monitor arena together.
//!
//! A third family runs the same S3 scale-out shapes on the **sharded
//! parallel simulator** ([`ParWorld`]) at `--sim-workers N`: one `w1` and
//! one `wN` cell per probe shape, asserted to process *identical* event
//! counts and agree in every group (the parallel determinism claim), plus
//! the frontier at `wN`. A ≥1.5× `wN`-over-`w1` speedup sanity check is
//! enforced only when the machine actually has `N` cores and both cells ran
//! longer than the wall floor — on fewer cores the numbers are still
//! recorded, honestly, and the check reports itself skipped.
//!
//! The smoke cells are a strict subset of the full cells (same names, same
//! shapes), so a smoke run can be regression-gated against a checked-in
//! full-sweep baseline with `--gate-against PATH`: for every cell name the
//! two runs share, the simulator event-processing throughput
//! (`events_per_sec`) must not drop more than 15 % below the baseline.
//! Cells whose wall time sits below [`WALL_FLOOR_NS`] publish
//! `events_per_sec: null` and are never gate-compared — a sub-floor wall
//! makes the division garbage.
//!
//! Results are written to `BENCH_scale.json` (schema `sle-bench-scale/4`,
//! documented in `docs/BENCH.md`) so successive PRs leave a perf
//! trajectory; CI uploads the file as the `bench-scale` artifact. Each cell
//! records its `sim_workers`, nanosecond wall clock and the process's peak
//! RSS so the speedup and memory axes of the trajectory are
//! machine-readable too.
//!
//! Options: `--smoke` (CI sizes), `--out PATH` (default `BENCH_scale.json`),
//! `--gate-against PATH` (compare against a baseline JSON, exit 1 on an
//! `events_per_sec` regression deeper than 15 % in any shared cell), and
//! `--sim-workers N` (worker count for the parallel family, default
//! `min(8, cores)`).

use std::fmt::Write as _;
use std::time::Instant;

use sle_core::{GroupId, NodeInstruments, ProcessId};
use sle_core::{JoinConfig, ServiceConfig, ServiceNode};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_harness::deploy;
use sle_obs::{Registry, TraceRing};
use sle_sim::prelude::*;

/// Default virtual time a deployment gets to elect before measuring.
const SETTLE: SimDuration = SimDuration::from_secs(12);
/// Default virtual measurement window for steady-state counts.
const WINDOW: SimDuration = SimDuration::from_secs(10);
/// Default failure-detection bound `T_D^U` (the paper's §6.1 value).
const DETECTION: SimDuration = SimDuration::from_secs(1);
/// Maximum tolerated `events_per_sec` drop vs a `--gate-against` baseline.
const GATE_TOLERANCE: f64 = 0.15;
/// Below this wall time a cell's `events_per_sec` is published as null:
/// dividing a few million events by a near-zero wall reading produced
/// garbage throughput numbers for the tiny growth cells, which the CI gate
/// then "compared".
const WALL_FLOOR_NS: u128 = 50_000_000;
/// Link delay of the parallel cells — the conservative lookahead. The
/// sequential families keep [`PerfectMedium`] (zero delay) for baseline
/// continuity; a parallel epoch needs a positive minimum link delay.
const PAR_LOOKAHEAD: SimDuration = SimDuration::from_millis(1);
/// Minimum `wN`-over-`w1` throughput ratio on the parallel probe when the
/// host has at least `N` cores.
const MIN_PAR_SPEEDUP: f64 = 1.5;

struct Args {
    smoke: bool,
    out: String,
    gate_against: Option<String>,
    /// Ad-hoc single scale cell `nodes,groups,members,window_s,detection_ms`
    /// (replaces the built-in shape lists; for tuning new cells).
    cell: Option<(usize, usize, usize, u64, u64)>,
    /// Worker count for the parallel-simulator family (and for `--cell`).
    sim_workers: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        smoke: false,
        out: "BENCH_scale.json".to_string(),
        gate_against: None,
        cell: None,
        sim_workers: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => {
                args.out = iter
                    .next()
                    .ok_or_else(|| "--out requires a path".to_string())?;
            }
            "--gate-against" => {
                args.gate_against = Some(
                    iter.next()
                        .ok_or_else(|| "--gate-against requires a path".to_string())?,
                );
            }
            "--cell" => {
                let spec = iter.next().ok_or_else(|| {
                    "--cell requires nodes,groups,members,window_s,detection_ms".to_string()
                })?;
                let parts: Vec<u64> = spec
                    .split(',')
                    .map(|p| p.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|e| format!("bad --cell spec {spec}: {e}"))?;
                let [n, g, m, w, d] = parts[..] else {
                    return Err(format!("--cell wants 5 comma-separated fields, got {spec}"));
                };
                args.cell = Some((n as usize, g as usize, m as usize, w, d));
            }
            "--sim-workers" => {
                let n = iter
                    .next()
                    .ok_or_else(|| "--sim-workers requires a count".to_string())?;
                let n: usize = n
                    .parse()
                    .map_err(|e| format!("bad --sim-workers {n}: {e}"))?;
                if n == 0 {
                    return Err("--sim-workers must be at least 1".to_string());
                }
                args.sim_workers = Some(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench_scale [--smoke] [--out PATH] [--gate-against PATH] \
                     [--sim-workers N] [--cell N,G,M,W,D]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

/// What one measured cell produced.
struct Cell {
    name: String,
    algorithm: &'static str,
    nodes: usize,
    groups: usize,
    processes: usize,
    members_per_group: usize,
    settle: SimDuration,
    window: SimDuration,
    /// The failure-detection bound `T_D^U` each member joined with. The
    /// ALIVE rate scales inversely with it, so big cells relax it to keep
    /// wall-clock bounded; it is recorded per cell to keep runs comparable.
    detection: SimDuration,
    /// Per-group ALIVE payloads sent during the window (batch entries
    /// count individually).
    alive_payloads: u64,
    /// ALIVE datagrams sent during the window (a batch counts once).
    alive_datagrams: u64,
    /// All messages handed to the network during the window.
    messages_total: u64,
    /// All payload bytes handed to the network during the window.
    bytes_total: u64,
    /// Simulator events processed over the whole run.
    events_processed: u64,
    /// Simulator event-processing throughput: `events_processed` over the
    /// cell's wall-clock time (build + settle + window). The quantity the
    /// `--gate-against` regression gate compares. `None` (JSON null) when
    /// the wall time sat below [`WALL_FLOOR_NS`] — too short to divide by.
    events_per_sec: Option<f64>,
    /// Groups whose members all agreed on a live leader at the end.
    groups_agreed: usize,
    /// Monotonic wall clock of the cell, in nanoseconds.
    wall_ns: u128,
    /// `wall_ns` rounded to milliseconds, for human eyes and old tooling.
    wall_ms: u128,
    /// Sim workers that drove the cell: 1 = the sequential `World`,
    /// >1 = the sharded `ParWorld`.
    sim_workers: usize,
    /// Peak resident set of the whole process when the cell finished, in
    /// MiB (Linux `VmHWM`; `None` where unavailable). Monotonic across the
    /// sweep, so the largest cell owns the high-water mark.
    peak_rss_mb: Option<f64>,
    /// Election-latency percentiles from the live histograms: per-node
    /// time from group creation to the first leader announcement.
    election_p50_ms: f64,
    election_p99_ms: f64,
}

/// Throughput, or `None` below the wall floor (see [`WALL_FLOOR_NS`]).
fn throughput(events: u64, wall_ns: u128) -> Option<f64> {
    if wall_ns < WALL_FLOOR_NS {
        None
    } else {
        Some(events as f64 / (wall_ns as f64 / 1e9))
    }
}

/// Peak resident set size of this process in MiB, read from
/// `/proc/self/status` `VmHWM` (Linux-only; `None` elsewhere).
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// Sums each node's ALIVE payload/datagram counters.
fn alive_counts<'a>(
    nodes: usize,
    actor_of: impl Fn(NodeId) -> Option<&'a ServiceNode>,
) -> (u64, u64) {
    let mut payloads = 0;
    let mut datagrams = 0;
    for i in 0..nodes {
        if let Some(actor) = actor_of(NodeId(i as u32)) {
            payloads += actor.alive_payloads_sent();
            datagrams += actor.alive_datagrams_sent();
        }
    }
    (payloads, datagrams)
}

/// Counts the groups whose members all agreed on a common live leader.
fn count_groups_agreed<'a>(
    deployment: &Deployment,
    actor_of: impl Fn(NodeId) -> Option<&'a ServiceNode>,
) -> usize {
    let mut groups_agreed = 0;
    for (g, members) in deployment.groups.iter().enumerate() {
        let group = GroupId(g as u32 + 1);
        let mut agreed: Option<ProcessId> = None;
        let mut ok = true;
        for &member in members {
            match actor_of(member).and_then(|a| a.leader_of(group)) {
                Some(view) => match agreed {
                    None => agreed = Some(view),
                    Some(leader) if leader == view => {}
                    _ => {
                        ok = false;
                        break;
                    }
                },
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && agreed.is_some() {
            groups_agreed += 1;
        }
    }
    groups_agreed
}

/// A deployment shape: which workstations are members of which groups.
struct Deployment {
    nodes: usize,
    /// `groups[g]` lists the member workstations of group `g + 1`.
    groups: Vec<Vec<NodeId>>,
}

impl Deployment {
    /// One group over workstations `0..n`.
    fn single_group(n: usize) -> Self {
        Deployment {
            nodes: n,
            groups: vec![(0..n as u32).map(NodeId).collect()],
        }
    }

    /// `groups` groups of `members` workstations each, strided over
    /// `nodes` workstations so membership is spread evenly (with
    /// `groups == nodes`, every workstation is in exactly `members`
    /// groups). See [`deploy::strided_groups`].
    fn strided(nodes: usize, groups: usize, members: usize) -> Self {
        Deployment {
            nodes,
            groups: deploy::strided_groups(nodes, groups, members),
        }
    }

    fn processes(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }
}

fn algorithm_label(algorithm: ElectorKind) -> &'static str {
    match algorithm {
        ElectorKind::OmegaId => "S1/omega-id",
        ElectorKind::OmegaLc => "S2/omega-lc",
        ElectorKind::OmegaL => "S3/omega-l",
    }
}

/// Builds the world for a deployment, runs settle + window, and measures.
fn run_cell(
    name: &str,
    deployment: &Deployment,
    algorithm: ElectorKind,
    seed: u64,
    settle: SimDuration,
    window: SimDuration,
    detection: SimDuration,
) -> Cell {
    let wall = Instant::now();
    let n = deployment.nodes;

    // Per-workstation membership and peer sets (a workstation only gossips
    // with workstations it shares a group with — the deployment shape a
    // sharded installation uses, and what keeps HELLO traffic O(n)).
    let deploy::Membership {
        groups_of,
        peers_of,
    } = deploy::membership(n, &deployment.groups);

    // Instrumented with the same registry the real-time runtime would
    // attach: the election histograms below come from live QoS telemetry,
    // not post-hoc trace analysis. The trace ring is small — this bench
    // reads histograms, not events.
    let registry = Registry::default();
    let ring = TraceRing::new(64);
    let mut world: World<ServiceNode, PerfectMedium> = World::new(
        n,
        Box::new({
            let registry = registry.clone();
            move |node, _inc| {
                let mut config =
                    ServiceConfig::new(node, peers_of[node.index()].clone(), algorithm);
                let join = JoinConfig::candidate()
                    .with_qos(QosSpec::paper_default_with_detection(detection));
                for &group in &groups_of[node.index()] {
                    config = config.with_auto_join(group, join);
                }
                let mut service = ServiceNode::new(config);
                service.set_instruments(NodeInstruments::new(&registry, ring.clone(), node));
                service
            }
        }),
        PerfectMedium,
        seed,
    );

    let mut observer = CountingObserver::new();
    world.run_for(settle, &mut observer);
    let (payloads_before, datagrams_before) =
        alive_counts(world.num_nodes(), |node| world.actor(node));
    let messages_before = observer.sent;
    let bytes_before = observer.bytes_sent;

    world.run_for(window, &mut observer);
    let (payloads_after, datagrams_after) =
        alive_counts(world.num_nodes(), |node| world.actor(node));

    // Every group must have converged on a common leader among its members.
    let groups_agreed = count_groups_agreed(deployment, |node| world.actor(node));

    let elections = registry.merged_histogram("node.", ".elect.election_ns");
    let wall_ns = wall.elapsed().as_nanos();
    let events_processed = world.events_processed();
    Cell {
        name: name.to_string(),
        algorithm: algorithm_label(algorithm),
        nodes: n,
        groups: deployment.groups.len(),
        processes: deployment.processes(),
        members_per_group: deployment.groups.first().map(Vec::len).unwrap_or(0),
        settle,
        window,
        detection,
        alive_payloads: payloads_after - payloads_before,
        alive_datagrams: datagrams_after - datagrams_before,
        messages_total: observer.sent - messages_before,
        bytes_total: observer.bytes_sent - bytes_before,
        events_processed,
        events_per_sec: throughput(events_processed, wall_ns),
        groups_agreed,
        wall_ns,
        wall_ms: wall_ns / 1_000_000,
        sim_workers: 1,
        peak_rss_mb: peak_rss_mb(),
        election_p50_ms: elections.percentile_ms(0.50),
        election_p99_ms: elections.percentile_ms(0.99),
    }
}

/// [`run_cell`] on the sharded parallel simulator: same deployment, same
/// measurements, driven by [`ParWorld`] across `sim_workers` workers over a
/// [`FixedDelayMedium`] whose delay is the epochs' conservative lookahead.
/// A given shape replays identically for every `sim_workers` value (same
/// event count, same agreements) — the cheap end of the determinism claim
/// the chaos suite checks exhaustively.
#[allow(clippy::too_many_arguments)]
fn run_cell_par(
    name: &str,
    deployment: &Deployment,
    algorithm: ElectorKind,
    seed: u64,
    settle: SimDuration,
    window: SimDuration,
    detection: SimDuration,
    sim_workers: usize,
) -> Cell {
    let wall = Instant::now();
    let n = deployment.nodes;
    let deploy::Membership {
        groups_of,
        peers_of,
    } = deploy::membership(n, &deployment.groups);

    let registry = Registry::default();
    let ring = TraceRing::new(64);
    let factory: SharedActorFactory<ServiceNode> = Box::new({
        let registry = registry.clone();
        move |node, _inc| {
            let mut config = ServiceConfig::new(node, peers_of[node.index()].clone(), algorithm);
            let join =
                JoinConfig::candidate().with_qos(QosSpec::paper_default_with_detection(detection));
            for &group in &groups_of[node.index()] {
                config = config.with_auto_join(group, join);
            }
            let mut service = ServiceNode::new(config);
            service.set_instruments(NodeInstruments::new(&registry, ring.clone(), node));
            service
        }
    });
    let mut world: ParWorld<ServiceNode, FixedDelayMedium> = ParWorld::new(
        n,
        sim_workers,
        factory,
        FixedDelayMedium::new(PAR_LOOKAHEAD),
        seed,
    );

    let mut observers = vec![CountingObserver::new(); world.workers()];
    world.run_for(settle, &mut observers);
    let (payloads_before, datagrams_before) =
        alive_counts(world.num_nodes(), |node| world.actor(node));
    let messages_before: u64 = observers.iter().map(|o| o.sent).sum();
    let bytes_before: u64 = observers.iter().map(|o| o.bytes_sent).sum();

    world.run_for(window, &mut observers);
    let (payloads_after, datagrams_after) =
        alive_counts(world.num_nodes(), |node| world.actor(node));
    let messages_after: u64 = observers.iter().map(|o| o.sent).sum();
    let bytes_after: u64 = observers.iter().map(|o| o.bytes_sent).sum();

    let groups_agreed = count_groups_agreed(deployment, |node| world.actor(node));

    let elections = registry.merged_histogram("node.", ".elect.election_ns");
    let wall_ns = wall.elapsed().as_nanos();
    let events_processed = world.events_processed();
    Cell {
        name: name.to_string(),
        algorithm: algorithm_label(algorithm),
        nodes: n,
        groups: deployment.groups.len(),
        processes: deployment.processes(),
        members_per_group: deployment.groups.first().map(Vec::len).unwrap_or(0),
        settle,
        window,
        detection,
        alive_payloads: payloads_after - payloads_before,
        alive_datagrams: datagrams_after - datagrams_before,
        messages_total: messages_after - messages_before,
        bytes_total: bytes_after - bytes_before,
        events_processed,
        events_per_sec: throughput(events_processed, wall_ns),
        groups_agreed,
        wall_ns,
        wall_ms: wall_ns / 1_000_000,
        sim_workers: world.workers(),
        peak_rss_mb: peak_rss_mb(),
        election_p50_ms: elections.percentile_ms(0.50),
        election_p99_ms: elections.percentile_ms(0.99),
    }
}

/// Fitted log-log slope of steady-state ALIVE count against group size
/// between the first and last point of a growth series.
fn growth_slope(cells: &[&Cell]) -> f64 {
    let first = cells.first().expect("non-empty series");
    let last = cells.last().expect("non-empty series");
    ((last.alive_payloads as f64).ln() - (first.alive_payloads as f64).ln())
        / ((last.members_per_group as f64).ln() - (first.members_per_group as f64).ln())
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(!name.contains('"') && !name.contains('\\'));
    name
}

/// `events_per_sec` as a JSON value: a number, or null below the wall floor.
fn eps_json(eps: Option<f64>) -> String {
    match eps {
        Some(v) => format!("{v:.0}"),
        None => "null".to_string(),
    }
}

/// `peak_rss_mb` as a JSON value: a number, or null off-Linux.
fn rss_json(rss: Option<f64>) -> String {
    match rss {
        Some(v) => format!("{v:.1}"),
        None => "null".to_string(),
    }
}

fn render_json(cells: &[Cell], s2_slope: f64, s3_slope: f64, smoke: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"sle-bench-scale/4\",");
    let _ = writeln!(out, "  \"smoke\": {smoke},");
    let _ = writeln!(
        out,
        "  \"settle_secs\": {}, \"window_secs\": {},",
        SETTLE.as_secs_f64(),
        WINDOW.as_secs_f64()
    );
    out.push_str("  \"cells\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"name\": \"{}\", \"algorithm\": \"{}\", \"nodes\": {}, \"groups\": {}, \
             \"processes\": {}, \"members_per_group\": {}, \"settle_secs\": {}, \
             \"window_secs\": {}, \"detection_ms\": {}, \"sim_workers\": {}, \
             \"alive_payloads\": {}, \"alive_datagrams\": {}, \"messages_total\": {}, \
             \"bytes_total\": {}, \"events_processed\": {}, \"events_per_sec\": {}, \
             \"groups_agreed\": {}, \"wall_ms\": {}, \"wall_ns\": {}, \"peak_rss_mb\": {}, \
             \"election_p50_ms\": {:.1}, \"election_p99_ms\": {:.1}}}",
            json_escape_free(&cell.name),
            cell.algorithm,
            cell.nodes,
            cell.groups,
            cell.processes,
            cell.members_per_group,
            cell.settle.as_secs_f64(),
            cell.window.as_secs_f64(),
            cell.detection.as_millis_f64() as u64,
            cell.sim_workers,
            cell.alive_payloads,
            cell.alive_datagrams,
            cell.messages_total,
            cell.bytes_total,
            cell.events_processed,
            eps_json(cell.events_per_sec),
            cell.groups_agreed,
            cell.wall_ms,
            cell.wall_ns,
            rss_json(cell.peak_rss_mb),
            cell.election_p50_ms,
            cell.election_p99_ms,
        );
        out.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"assertions\": {{\"s2_growth_slope\": {s2_slope:.3}, \"s3_growth_slope\": {s3_slope:.3}, \
         \"s2_expected\": \"O(n^2)\", \"s3_expected\": \"O(n)\"}}"
    );
    out.push_str("}\n");
    out
}

/// Extracts `(name, events_per_sec)` pairs from a baseline JSON produced by
/// an earlier run of this binary. Hand-rolled scan (the workspace is
/// std-only): relies on each cell object carrying a `"name"` key before its
/// `"events_per_sec"` key, which `render_json` guarantees. Cells without an
/// `events_per_sec` key (schema < 3 baselines) are skipped.
fn parse_baseline_cells(json: &str) -> Vec<(String, f64)> {
    let mut cells = Vec::new();
    let mut rest = json;
    while let Some(start) = rest.find("\"name\": \"") {
        let after = &rest[start + "\"name\": \"".len()..];
        let Some(name_end) = after.find('"') else {
            break;
        };
        let name = &after[..name_end];
        let body = &after[name_end..];
        // The cell object ends at the next '}'; events_per_sec must appear
        // before it (and before the next cell's name).
        let object_end = body.find('}').unwrap_or(body.len());
        if let Some(pos) = body[..object_end].find("\"events_per_sec\": ") {
            let value = &body[pos + "\"events_per_sec\": ".len()..object_end];
            let end = value
                .find(|c: char| !c.is_ascii_digit() && c != '.' && c != '-' && c != 'e')
                .unwrap_or(value.len());
            if let Ok(eps) = value[..end].parse::<f64>() {
                cells.push((name.to_string(), eps));
            }
        }
        rest = &body[object_end..];
    }
    cells
}

/// Compares this run's cells against a baseline file: every cell name both
/// runs share must be within [`GATE_TOLERANCE`] of the baseline
/// `events_per_sec`. Cells that ran below the wall floor (no throughput
/// reading) are never compared — the baseline parser likewise skips null
/// entries, so neither side of the gate ever holds garbage. Returns `false`
/// (and prints FAIL lines) on regression.
fn gate_against(cells: &[Cell], path: &str) -> bool {
    let baseline = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read gate baseline {path}: {e}");
            std::process::exit(2);
        }
    };
    let baseline_cells = parse_baseline_cells(&baseline);
    if baseline_cells.is_empty() {
        println!(
            "gate: baseline {path} carries no events_per_sec cells (pre-/3 schema?) — skipping"
        );
        return true;
    }
    let mut ok = true;
    let mut compared = 0;
    for cell in cells {
        let Some(eps) = cell.events_per_sec else {
            println!(
                "gate: {} ran below the {} ms wall floor — not compared",
                cell.name,
                WALL_FLOOR_NS / 1_000_000
            );
            continue;
        };
        let Some((_, base)) = baseline_cells.iter().find(|(n, _)| n == &cell.name) else {
            continue;
        };
        compared += 1;
        let floor = base * (1.0 - GATE_TOLERANCE);
        let ratio = eps / base;
        if eps < floor {
            eprintln!(
                "GATE FAIL: {} events_per_sec {:.0} < {:.0} ({}% of baseline {:.0})",
                cell.name,
                eps,
                floor,
                (ratio * 100.0) as i64,
                base
            );
            ok = false;
        } else {
            println!(
                "gate: {} events_per_sec {:.0} vs baseline {:.0} ({}%) — ok",
                cell.name,
                eps,
                base,
                (ratio * 100.0) as i64
            );
        }
    }
    println!("gate: compared {compared} shared cell(s) against {path}");
    ok
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(2);
        }
    };
    let total = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();

    // Ad-hoc tuning mode: run one scale cell and report, no JSON, no gates.
    // An explicit `--sim-workers N` (any N, 1 included) runs the cell on
    // the parallel simulator over its fixed-delay lookahead medium, so
    // `--cell ... --sim-workers 8` vs `--sim-workers 1` measures the
    // speedup curve of one shape like-for-like; without the flag the cell
    // runs the sequential sweep configuration (PerfectMedium).
    if let Some((nodes, groups, members, window_secs, detection_ms)) = args.cell {
        let deployment = Deployment::strided(nodes, groups, members);
        let window = SimDuration::from_secs(window_secs);
        let detection = SimDuration::from_millis(detection_ms);
        let cell = if let Some(workers) = args.sim_workers {
            run_cell_par(
                &format!("par-scale-s3-{nodes}x{groups}x{members}-w{workers}"),
                &deployment,
                ElectorKind::OmegaL,
                0x5CA1E,
                SETTLE,
                window,
                detection,
                workers,
            )
        } else {
            run_cell(
                &format!("scale-s3-{nodes}x{groups}x{members}"),
                &deployment,
                ElectorKind::OmegaL,
                0x5CA1E,
                SETTLE,
                window,
                detection,
            )
        };
        println!(
            "{}: procs {} agreed {}/{} events {} ({}/s) wall {} ms rss {} MiB p50 {:.1} ms p99 {:.1} ms",
            cell.name,
            cell.processes,
            cell.groups_agreed,
            cell.groups,
            cell.events_processed,
            eps_json(cell.events_per_sec),
            cell.wall_ms,
            rss_json(cell.peak_rss_mb),
            cell.election_p50_ms,
            cell.election_p99_ms
        );
        return;
    }

    // Family 1: the growth law, S2 vs S3 over one group of n candidates.
    // The smoke sizes are a prefix of the full sizes so smoke cells share
    // names (and shapes) with the checked-in full baseline.
    let sizes: &[usize] = if args.smoke {
        &[4, 8, 16]
    } else {
        &[4, 8, 16, 24]
    };
    println!(
        "growth law: 1 group x n candidates, window {} s",
        WINDOW.as_secs_f64()
    );
    println!(
        "{:<12} {:>5} {:>16} {:>16} {:>10} {:>8}",
        "service", "n", "alive-payloads", "alive-datagrams", "msgs", "wall-ms"
    );
    for &algorithm in &[ElectorKind::OmegaLc, ElectorKind::OmegaL] {
        for &n in sizes {
            let cell = run_cell(
                &format!("growth-{}-n{}", algorithm_label(algorithm), n),
                &Deployment::single_group(n),
                algorithm,
                0xBE1C_u64 + n as u64,
                SETTLE,
                WINDOW,
                DETECTION,
            );
            println!(
                "{:<12} {:>5} {:>16} {:>16} {:>10} {:>8}",
                cell.algorithm,
                n,
                cell.alive_payloads,
                cell.alive_datagrams,
                cell.messages_total,
                cell.wall_ms
            );
            assert_eq!(cell.groups_agreed, 1, "{}: no agreement", cell.name);
            cells.push(cell);
        }
    }

    let series = |label: &str| -> Vec<&Cell> {
        cells
            .iter()
            .filter(|c| c.algorithm == label && c.name.starts_with("growth-"))
            .collect()
    };
    let s2_slope = growth_slope(&series("S2/omega-lc"));
    let s3_slope = growth_slope(&series("S3/omega-l"));
    println!(
        "\nfitted growth slopes: S2 {s2_slope:.2} (want ≥ 1.7), S3 {s3_slope:.2} (want ≤ 1.4)"
    );

    // Family 2: the S3 scale-out cells, up to the million-process frontier
    // (10k workstations × 100k groups × 10 members each). Tuple:
    // (nodes, groups, members, window secs, detection T_D^U ms). The
    // frontier cell relaxes the detection bound — the ALIVE/FD event rate
    // scales inversely with T_D, and at 1M group-member processes the
    // paper-default 1 s bound would put the cell hundreds of millions of
    // events past a tens-of-seconds wall-clock envelope — and measures
    // over a shorter window for the same reason; both overrides are
    // recorded in the cell's JSON. The smoke shape list is a prefix of
    // the full list.
    let scale_shapes: &[(usize, usize, usize, u64, u64)] = if args.smoke {
        &[(200, 200, 5, 10, 1000)]
    } else {
        &[
            (200, 200, 5, 10, 1000),
            (400, 400, 5, 10, 1000),
            (1000, 1000, 10, 10, 1000),
            (10000, 100000, 10, 5, 8000),
        ]
    };
    println!("\nscale-out: S3 over strided multi-group deployments");
    println!(
        "{:<28} {:>6} {:>6} {:>8} {:>14} {:>14} {:>13} {:>9} {:>8}",
        "cell",
        "nodes",
        "groups",
        "procs",
        "alive-payloads",
        "datagrams",
        "events/s",
        "agreed",
        "wall-ms"
    );
    for &(nodes, groups, members, window_secs, detection_ms) in scale_shapes {
        let deployment = Deployment::strided(nodes, groups, members);
        let processes = deployment.processes();
        let cell = run_cell(
            &format!("scale-s3-{nodes}x{groups}x{members}"),
            &deployment,
            ElectorKind::OmegaL,
            0x5CA1E,
            SETTLE,
            SimDuration::from_secs(window_secs),
            SimDuration::from_millis(detection_ms),
        );
        println!(
            "{:<28} {:>6} {:>6} {:>8} {:>14} {:>14} {:>13} {:>9} {:>8}",
            cell.name,
            cell.nodes,
            cell.groups,
            processes,
            cell.alive_payloads,
            cell.alive_datagrams,
            eps_json(cell.events_per_sec),
            format!("{}/{}", cell.groups_agreed, cell.groups),
            cell.wall_ms
        );
        assert_eq!(
            cell.groups_agreed, cell.groups,
            "{}: not every group elected",
            cell.name
        );
        cells.push(cell);
    }

    // Family 3: the same S3 shapes on the sharded parallel simulator. Each
    // probe shape runs at w1 and wN — identical event counts and agreement
    // are asserted (determinism), and the w1→wN throughput ratio is the
    // speedup the JSON trajectory tracks. The full sweep adds the frontier
    // at wN. N defaults to min(8, host cores); the speedup sanity check
    // only bites when the host can actually run N workers in parallel.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let par_workers = args.sim_workers.unwrap_or_else(|| cores.min(8)).max(1);
    // (nodes, groups, members, window secs, detection ms) probe shapes; the
    // smoke list is a prefix-by-name of the full list's smoke-sized probe.
    let par_probe: (usize, usize, usize, u64, u64) = if args.smoke {
        (200, 200, 5, 10, 1000)
    } else {
        (1000, 10000, 10, 5, 2000)
    };
    println!(
        "\nparallel sim: S3 scale-out on ParWorld, {par_workers} sim worker(s), {cores} core(s)"
    );
    println!(
        "{:<34} {:>8} {:>8} {:>13} {:>9} {:>8}",
        "cell", "workers", "procs", "events/s", "agreed", "wall-ms"
    );
    let mut par_pair: Vec<usize> = vec![1];
    if par_workers > 1 {
        par_pair.push(par_workers);
    }
    let (p_nodes, p_groups, p_members, p_window, p_detection) = par_probe;
    let mut probe_cells: Vec<Cell> = Vec::new();
    for &workers in &par_pair {
        let deployment = Deployment::strided(p_nodes, p_groups, p_members);
        let cell = run_cell_par(
            &format!("par-scale-s3-{p_nodes}x{p_groups}x{p_members}-w{workers}"),
            &deployment,
            ElectorKind::OmegaL,
            0x5CA1E,
            SETTLE,
            SimDuration::from_secs(p_window),
            SimDuration::from_millis(p_detection),
            workers,
        );
        println!(
            "{:<34} {:>8} {:>8} {:>13} {:>9} {:>8}",
            cell.name,
            cell.sim_workers,
            cell.processes,
            eps_json(cell.events_per_sec),
            format!("{}/{}", cell.groups_agreed, cell.groups),
            cell.wall_ms
        );
        assert_eq!(
            cell.groups_agreed, cell.groups,
            "{}: not every group elected",
            cell.name
        );
        probe_cells.push(cell);
    }
    let mut failed = false;
    if let [w1, wn] = &probe_cells[..] {
        // The determinism claim, in cheap form: sharding must not change
        // what the simulation computes, only how fast.
        assert_eq!(
            w1.events_processed, wn.events_processed,
            "parallel probe diverged from the single-worker run"
        );
        assert_eq!(w1.groups_agreed, wn.groups_agreed);
        match (w1.events_per_sec, wn.events_per_sec) {
            (Some(a), Some(b)) if cores >= wn.sim_workers => {
                let speedup = b / a;
                println!(
                    "parallel speedup: {speedup:.2}x at w{} (floor {MIN_PAR_SPEEDUP}x)",
                    wn.sim_workers
                );
                if speedup < MIN_PAR_SPEEDUP {
                    eprintln!(
                        "FAIL: parallel probe speedup {speedup:.2}x < {MIN_PAR_SPEEDUP}x at w{} \
                         on {cores} cores",
                        wn.sim_workers
                    );
                    failed = true;
                }
            }
            _ => println!(
                "parallel speedup check skipped ({cores} core(s) < {} workers, or sub-floor wall)",
                wn.sim_workers
            ),
        }
    }
    cells.append(&mut probe_cells);
    if !args.smoke && par_workers > 1 {
        // The frontier on the parallel driver: the headline cell of the
        // speedup trajectory.
        let (nodes, groups, members, window_secs, detection_ms) =
            (10000, 100000, 10, 5u64, 8000u64);
        let deployment = Deployment::strided(nodes, groups, members);
        let cell = run_cell_par(
            &format!("par-scale-s3-{nodes}x{groups}x{members}-w{par_workers}"),
            &deployment,
            ElectorKind::OmegaL,
            0x5CA1E,
            SETTLE,
            SimDuration::from_secs(window_secs),
            SimDuration::from_millis(detection_ms),
            par_workers,
        );
        println!(
            "{:<34} {:>8} {:>8} {:>13} {:>9} {:>8}",
            cell.name,
            cell.sim_workers,
            cell.processes,
            eps_json(cell.events_per_sec),
            format!("{}/{}", cell.groups_agreed, cell.groups),
            cell.wall_ms
        );
        assert_eq!(
            cell.groups_agreed, cell.groups,
            "{}: not every group elected",
            cell.name
        );
        cells.push(cell);
    }

    let json = render_json(&cells, s2_slope, s3_slope, args.smoke);
    std::fs::write(&args.out, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", args.out);
        std::process::exit(2);
    });
    println!(
        "\nwrote {} ({} cells) in {:.1}s wall-clock",
        args.out,
        cells.len(),
        total.elapsed().as_secs_f64()
    );

    // The headline assertion: S3's steady-state ALIVE count grows O(n),
    // S2's O(n²). Generous tolerances keep the check insensitive to the
    // ±1 of "n" vs "n-1" and to settle jitter, while still cleanly
    // separating linear from quadratic growth.
    if s2_slope < 1.7 {
        eprintln!("FAIL: S2 growth slope {s2_slope:.2} < 1.7 — expected O(n^2) ALIVE traffic");
        failed = true;
    }
    if s3_slope > 1.4 {
        eprintln!("FAIL: S3 growth slope {s3_slope:.2} > 1.4 — expected O(n) ALIVE traffic");
        failed = true;
    }
    if let Some(path) = &args.gate_against {
        if !gate_against(&cells, path) {
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("OK: S3 ALIVE traffic grows O(n), S2 grows O(n^2)");
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the pinned-percentile bug: every cell used to report
    /// election_p50_ms 5.9 and election_p99_ms 1518.5 regardless of its
    /// detection parameter, because log-midpoint interpolation collapsed any
    /// symmetric bucket population to `bucket_lower * sqrt(2)`. Cells whose
    /// detection timeouts differ by 8x must report different election
    /// percentiles.
    #[test]
    fn cells_with_different_detection_report_different_percentiles() {
        let deployment = Deployment::single_group(8);
        let fast = run_cell(
            "pctl-fast",
            &deployment,
            ElectorKind::OmegaL,
            7,
            SimDuration::from_secs(30),
            SimDuration::from_secs(10),
            SimDuration::from_millis(1_000),
        );
        let slow = run_cell(
            "pctl-slow",
            &deployment,
            ElectorKind::OmegaL,
            7,
            SimDuration::from_secs(30),
            SimDuration::from_secs(10),
            SimDuration::from_millis(8_000),
        );
        // The median startup election is a few ms for either detection
        // bound; the *tail* elections are the ones that ride out a full
        // grace period, so p99 must track the detection parameter.
        assert!(
            (fast.election_p99_ms - slow.election_p99_ms).abs() > 1e-6,
            "p99 pinned: fast {} == slow {}",
            fast.election_p99_ms,
            slow.election_p99_ms
        );
        // And within one cell the histogram is not collapsed to a constant.
        assert!(
            fast.election_p99_ms > fast.election_p50_ms,
            "fast cell degenerate: p50 {} p99 {}",
            fast.election_p50_ms,
            fast.election_p99_ms
        );
    }

    /// The parallel runner agrees with the sequential one on the
    /// partition-independent aggregates for the same shape.
    #[test]
    fn parallel_cell_matches_itself_across_worker_counts() {
        let deployment = Deployment::strided(24, 6, 4);
        let w1 = run_cell_par(
            "par-w1",
            &deployment,
            ElectorKind::OmegaL,
            11,
            SimDuration::from_secs(20),
            SimDuration::from_secs(10),
            SimDuration::from_millis(1_000),
            1,
        );
        let w4 = run_cell_par(
            "par-w4",
            &deployment,
            ElectorKind::OmegaL,
            11,
            SimDuration::from_secs(20),
            SimDuration::from_secs(10),
            SimDuration::from_millis(1_000),
            4,
        );
        assert_eq!(w1.events_processed, w4.events_processed);
        assert_eq!(w1.groups_agreed, w4.groups_agreed);
        assert_eq!(w1.groups_agreed, w1.groups, "every group elected");
        assert_eq!(w1.alive_payloads, w4.alive_payloads);
        assert_eq!(w1.messages_total, w4.messages_total);
        assert_eq!(w1.election_p50_ms, w4.election_p50_ms);
        assert_eq!(w1.election_p99_ms, w4.election_p99_ms);
    }
}
