//! The fenced replicated counter and the audit ledger that checks it.

use std::sync::{Arc, Mutex};

use sle_core::lease::{FencedApp, FencingToken, StaleToken};
use sle_core::process::GroupId;

/// A point-in-time copy of a [`FencingAudit`]'s ledger totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AuditSnapshot {
    /// Writes accepted (across every replica sharing the audit).
    pub accepts: u64,
    /// Writes rejected by the fencing check.
    pub rejections: u64,
    /// Accepted writes whose token was *below* a previously accepted one —
    /// fencing violations. A correct deployment keeps this at zero.
    pub violations: u64,
    /// The highest token accepted so far, if any write was accepted.
    pub high_water: Option<FencingToken>,
}

#[derive(Debug, Default)]
struct AuditInner {
    accepts: u64,
    rejections: u64,
    violations: u64,
    high_water: Option<FencingToken>,
}

/// A ledger shared (via [`Arc`]) by every replica's [`FencedCounter`],
/// recording each accepted write's fencing token in global acceptance
/// order.
///
/// Because the ledger's mutex serializes the accepts of *all* replicas, a
/// token observed below the running maximum means two leaderships' writes
/// interleaved — exactly the safety violation fencing exists to prevent —
/// and is counted in [`AuditSnapshot::violations`]. `bench_app` and the
/// integration tests assert this count stays zero through forced leader
/// crashes.
#[derive(Debug, Default)]
pub struct FencingAudit {
    inner: Mutex<AuditInner>,
}

impl FencingAudit {
    /// Creates an empty audit ledger behind an [`Arc`], ready to hand to
    /// many [`FencedCounter`]s.
    pub fn shared() -> Arc<Self> {
        Arc::new(FencingAudit::default())
    }

    /// Records one accepted write under `token`.
    pub fn record_accept(&self, token: FencingToken) {
        let mut inner = self.inner.lock().expect("fencing audit poisoned");
        inner.accepts += 1;
        match inner.high_water {
            Some(high) if token < high => inner.violations += 1,
            _ => inner.high_water = Some(token),
        }
    }

    /// Records one write rejected by the fencing check.
    pub fn record_rejection(&self) {
        let mut inner = self.inner.lock().expect("fencing audit poisoned");
        inner.rejections += 1;
    }

    /// A copy of the current totals.
    pub fn snapshot(&self) -> AuditSnapshot {
        let inner = self.inner.lock().expect("fencing audit poisoned");
        AuditSnapshot {
            accepts: inner.accepts,
            rejections: inner.rejections,
            violations: inner.violations,
            high_water: inner.high_water,
        }
    }
}

/// The demo state machine of the client tier: a counter that accepts
/// `add payload` writes only under a fencing token at or above its
/// high-water mark.
///
/// One instance is installed per service node
/// ([`ClusterHandle::install_app`](sle_core::runtime::ClusterHandle::install_app));
/// instances optionally share a [`FencingAudit`] so the cross-replica
/// acceptance order can be checked. `LeaseGrant` broadcasts advance the
/// high-water mark even on replicas that never served a write
/// ([`FencedApp::observe_token`]), so a deposed leader's delayed write is
/// rejected *everywhere*, not just where the new leader already wrote.
#[derive(Debug, Default)]
pub struct FencedCounter {
    value: u64,
    high_water: Option<FencingToken>,
    audit: Option<Arc<FencingAudit>>,
}

impl FencedCounter {
    /// A counter starting at zero with no audit attached.
    pub fn new() -> Self {
        FencedCounter::default()
    }

    /// A counter reporting every accept/reject into `audit`.
    pub fn with_audit(audit: Arc<FencingAudit>) -> Self {
        FencedCounter {
            audit: Some(audit),
            ..FencedCounter::default()
        }
    }

    /// The current counter value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The highest token this replica has accepted or observed.
    pub fn high_water(&self) -> Option<FencingToken> {
        self.high_water
    }
}

impl FencedApp for FencedCounter {
    fn apply(
        &mut self,
        _group: GroupId,
        token: FencingToken,
        payload: u64,
    ) -> Result<u64, StaleToken> {
        if let Some(high) = self.high_water {
            if token < high {
                if let Some(audit) = &self.audit {
                    audit.record_rejection();
                }
                return Err(StaleToken {
                    presented: token,
                    high_water: high,
                });
            }
        }
        self.high_water = Some(token);
        self.value = self.value.wrapping_add(payload);
        if let Some(audit) = &self.audit {
            audit.record_accept(token);
        }
        Ok(self.value)
    }

    fn observe_token(&mut self, _group: GroupId, token: FencingToken) {
        if self.high_water.is_none_or(|high| token > high) {
            self.high_water = Some(token);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::NodeId;
    use sle_sim::time::{SimDuration, SimInstant};

    fn token(ms: u64, node: u32) -> FencingToken {
        FencingToken {
            accusation_time: SimInstant::ZERO + SimDuration::from_millis(ms),
            node: NodeId(node),
            epoch: 0,
            incarnation: 0,
        }
    }

    #[test]
    fn counter_applies_monotone_tokens_and_rejects_stale_ones() {
        let audit = FencingAudit::shared();
        let mut counter = FencedCounter::with_audit(Arc::clone(&audit));
        let group = GroupId(1);
        assert_eq!(counter.apply(group, token(1, 0), 5), Ok(5));
        assert_eq!(counter.apply(group, token(2, 1), 7), Ok(12));
        // The deposed leader's delayed write bounces…
        let stale = counter.apply(group, token(1, 0), 100).unwrap_err();
        assert_eq!(stale.presented, token(1, 0));
        assert_eq!(stale.high_water, token(2, 1));
        // …and the value is untouched.
        assert_eq!(counter.value(), 12);
        let snap = audit.snapshot();
        assert_eq!(snap.accepts, 2);
        assert_eq!(snap.rejections, 1);
        assert_eq!(snap.violations, 0);
        assert_eq!(snap.high_water, Some(token(2, 1)));
    }

    #[test]
    fn observed_tokens_fence_before_the_first_write() {
        let mut counter = FencedCounter::new();
        let group = GroupId(1);
        // The new leader's LeaseGrant is heard first…
        counter.observe_token(group, token(5, 2));
        // …so the old leader's delayed first write is rejected even though
        // this replica never served a request.
        assert!(counter.apply(group, token(3, 0), 1).is_err());
        // Equal-to-high-water tokens still apply (same leadership).
        assert_eq!(counter.apply(group, token(5, 2), 1), Ok(1));
        // Observing an older token never regresses the mark.
        counter.observe_token(group, token(4, 1));
        assert_eq!(counter.high_water(), Some(token(5, 2)));
    }

    #[test]
    fn audit_counts_out_of_order_accepts_as_violations() {
        let audit = FencingAudit::shared();
        audit.record_accept(token(2, 0));
        audit.record_accept(token(1, 0)); // out of order: a violation
        let snap = audit.snapshot();
        assert_eq!(snap.accepts, 2);
        assert_eq!(snap.violations, 1);
        assert_eq!(snap.high_water, Some(token(2, 0)));
    }
}
