//! The client session layer: leader discovery, request routing, and
//! transparent retry on redirects, fencing rejections and leader crashes.

use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

use sle_core::messages::ServiceMessage;
use sle_core::process::GroupId;
use sle_net::transport::MessageEndpoint;
use sle_sim::actor::NodeId;

/// Configuration of a [`ClientHub`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// The group whose leader serves the requests.
    pub group: GroupId,
    /// The service nodes to probe when no leader is known.
    pub servers: Vec<NodeId>,
    /// How long one attempt waits for an answer before it is retried
    /// against (possibly) another server.
    pub request_timeout: Duration,
    /// How many requests may be outstanding at once across all sessions.
    pub max_inflight: usize,
    /// How long a session backs off before retrying after an answer that
    /// carried no leader hint (an election in progress).
    pub retry_backoff: Duration,
    /// Reply gaps longer than this count toward
    /// [`HubReport::stalled`] — the unavailability accounting.
    pub stall_floor: Duration,
    /// Give-up bound for a whole workload run: if the cluster never comes
    /// back, [`ClientHub::run_workload`] returns the partial report instead
    /// of spinning forever. `None` waits indefinitely.
    pub deadline: Option<Duration>,
}

impl ClientConfig {
    /// A sensible default configuration against `servers`.
    pub fn new(group: GroupId, servers: Vec<NodeId>) -> Self {
        ClientConfig {
            group,
            servers,
            request_timeout: Duration::from_millis(250),
            max_inflight: 256,
            retry_backoff: Duration::from_millis(10),
            stall_floor: Duration::from_millis(50),
            deadline: None,
        }
    }
}

/// What one workload run through a [`ClientHub`] observed.
#[derive(Debug, Clone, Default)]
pub struct HubReport {
    /// Sessions the workload multiplexed.
    pub sessions: u64,
    /// Requests answered with `applied = true` (the workload's completions).
    pub completed: u64,
    /// Replies with `applied = false`: the serving leader's app rejected
    /// the write's fencing token. The request is retried, so these do not
    /// count as completions.
    pub rejected_replies: u64,
    /// Redirect answers received (served by a non-leader).
    pub redirects: u64,
    /// Attempts that timed out (typically: sent to a crashed leader).
    pub timeouts: u64,
    /// Replies for attempts no longer outstanding (late answers to retried
    /// requests — the at-least-once duplicates).
    pub duplicate_replies: u64,
    /// Request datagrams sent, counting retries.
    pub attempts: u64,
    /// Client-observed latency of every completed request, first issue to
    /// applied reply (so retries and leader-crash stalls are included),
    /// in nanoseconds.
    pub latencies_ns: Vec<u64>,
    /// Total time covered by reply gaps above the configured stall floor —
    /// the workload's unavailability.
    pub stalled: Duration,
    /// The single longest reply gap.
    pub longest_stall: Duration,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Whether the run gave up at the configured deadline with requests
    /// still unanswered.
    pub gave_up: bool,
}

impl HubReport {
    /// Nearest-rank percentile of the completed-request latencies, in
    /// milliseconds. Returns 0 when nothing completed.
    pub fn latency_percentile_ms(&self, p: f64) -> f64 {
        if self.latencies_ns.is_empty() {
            return 0.0;
        }
        let mut sorted = self.latencies_ns.clone();
        sorted.sort_unstable();
        let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1] as f64 / 1e6
    }
}

/// Per-session progress: the sequence number currently being worked on and
/// when it was first issued (for client-observed latency).
struct SessionState {
    seq: u64,
    started_at: Instant,
}

/// A client-side hub multiplexing many logical sessions over one transport
/// endpoint.
///
/// The hub's endpoint lives *outside* the cluster (its node id is not one
/// of the service nodes), which every bundled transport supports — the same
/// hub code runs over the in-memory mesh, the legacy UDP transport and the
/// shared UDP plane. Routing state machine, per outstanding request:
///
/// 1. send to the known leader, or round-robin-probe a server if none,
/// 2. `ClientReply { applied: true }` → completed; `applied: false` → the
///    write was fencing-rejected, retry (a new leader will serve it),
/// 3. `Redirect` → adopt the carried leader hint and retry; back off
///    briefly when the hint is `None` (an election is in progress) or names
///    the node already targeted (its lease has not settled yet),
/// 4. timeout → forget the leader hint (it may have crashed) and retry
///    against the next server.
///
/// Delivery is at-least-once: a request retried past a slow (not dead)
/// answer can be applied twice. Sessions carry `(session, seq)` on every
/// message, so exactly-once apps can deduplicate; the fenced counter demo
/// deliberately does not.
pub struct ClientHub<E> {
    endpoint: E,
    config: ClientConfig,
    leader_hint: Option<NodeId>,
    probe_cursor: usize,
}

impl<E: MessageEndpoint<ServiceMessage>> ClientHub<E> {
    /// Creates a hub speaking through `endpoint`.
    ///
    /// # Panics
    ///
    /// Panics if `config.servers` is empty or `config.max_inflight` is 0.
    pub fn new(endpoint: E, config: ClientConfig) -> Self {
        assert!(!config.servers.is_empty(), "a hub needs servers to talk to");
        assert!(config.max_inflight > 0, "max_inflight must be positive");
        ClientHub {
            endpoint,
            config,
            leader_hint: None,
            probe_cursor: 0,
        }
    }

    /// The server the next attempt goes to: the known leader, or the next
    /// server in round-robin order while none is known.
    fn target(&mut self) -> NodeId {
        match self.leader_hint {
            Some(leader) => leader,
            None => {
                let target = self.config.servers[self.probe_cursor % self.config.servers.len()];
                self.probe_cursor = self.probe_cursor.wrapping_add(1);
                target
            }
        }
    }

    /// Runs a complete workload: `sessions` logical sessions, each issuing
    /// `per_session` sequential `add payload` requests, with up to
    /// [`ClientConfig::max_inflight`] requests outstanding across sessions.
    /// Returns when every request has been applied (or at the configured
    /// deadline).
    pub fn run_workload(&mut self, sessions: u64, per_session: u64, payload: u64) -> HubReport {
        let started = Instant::now();
        let total = sessions * per_session;
        let mut report = HubReport {
            sessions,
            latencies_ns: Vec::with_capacity(total.min(4_000_000) as usize),
            ..HubReport::default()
        };
        let mut states: Vec<SessionState> = (0..sessions)
            .map(|_| SessionState {
                seq: 0,
                started_at: started,
            })
            .collect();
        // Sessions with a request to (re)issue now / after a backoff.
        let mut ready: VecDeque<u64> = (0..sessions).collect();
        let mut deferred: VecDeque<(Instant, u64)> = VecDeque::new();
        // Outstanding attempts by (session, seq): when they were sent, and
        // to whom (so a timeout only discredits the server it targeted).
        let mut inflight: HashMap<(u64, u64), (Instant, NodeId)> = HashMap::new();
        let mut last_success = started;
        let mut next_timeout_scan = started + self.config.request_timeout;

        while report.completed < total {
            let now = Instant::now();
            if let Some(deadline) = self.config.deadline {
                if now.duration_since(started) > deadline {
                    report.gave_up = true;
                    break;
                }
            }
            // Backed-off sessions whose pause has elapsed become ready
            // again (the queue is FIFO with a constant backoff, so the
            // front is always the earliest due).
            while deferred.front().is_some_and(|&(due, _)| due <= now) {
                let (_, session) = deferred.pop_front().expect("checked front");
                ready.push_back(session);
            }
            // Fill the window.
            while inflight.len() < self.config.max_inflight {
                let Some(session) = ready.pop_front() else {
                    break;
                };
                let state = &mut states[session as usize];
                let target = self.target();
                report.attempts += 1;
                let _ = self.endpoint.send(
                    target,
                    ServiceMessage::ClientRequest {
                        group: self.config.group,
                        session,
                        seq: state.seq,
                        payload,
                    },
                );
                inflight.insert((session, state.seq), (Instant::now(), target));
            }
            // Drain answers; block briefly only when nothing is queued.
            let mut received = false;
            while let Some(incoming) = self.endpoint.try_recv() {
                received = true;
                self.handle_answer(
                    incoming.msg,
                    per_session,
                    &mut states,
                    &mut ready,
                    &mut deferred,
                    &mut inflight,
                    &mut last_success,
                    &mut report,
                );
            }
            if !received {
                if let Some(incoming) = self.endpoint.recv_timeout(Duration::from_millis(2)) {
                    self.handle_answer(
                        incoming.msg,
                        per_session,
                        &mut states,
                        &mut ready,
                        &mut deferred,
                        &mut inflight,
                        &mut last_success,
                        &mut report,
                    );
                }
            }
            // Retire timed-out attempts (cheap: the window is small).
            let now = Instant::now();
            if now >= next_timeout_scan {
                next_timeout_scan = now + self.config.request_timeout / 4;
                let timeout = self.config.request_timeout;
                let expired: Vec<((u64, u64), NodeId)> = inflight
                    .iter()
                    .filter(|(_, &(sent, _))| now.duration_since(sent) > timeout)
                    .map(|(&key, &(_, target))| (key, target))
                    .collect();
                for (key, target) in expired {
                    inflight.remove(&key);
                    report.timeouts += 1;
                    // The server we targeted may be dead: probe afresh —
                    // but only drop the hint if it still names that server.
                    // A straggler timing out against the *previous* leader
                    // must not discard the successor another session has
                    // already discovered.
                    if self.leader_hint == Some(target) {
                        self.leader_hint = None;
                    }
                    ready.push_back(key.0);
                }
            }
        }
        report.elapsed = started.elapsed();
        report
    }

    /// Processes one answer from the cluster, updating the workload state.
    #[allow(clippy::too_many_arguments)]
    fn handle_answer(
        &mut self,
        msg: ServiceMessage,
        per_session: u64,
        states: &mut [SessionState],
        ready: &mut VecDeque<u64>,
        deferred: &mut VecDeque<(Instant, u64)>,
        inflight: &mut HashMap<(u64, u64), (Instant, NodeId)>,
        last_success: &mut Instant,
        report: &mut HubReport,
    ) {
        match msg {
            ServiceMessage::ClientReply {
                session,
                seq,
                applied,
                ..
            } => {
                if inflight.remove(&(session, seq)).is_none() {
                    report.duplicate_replies += 1;
                    return;
                }
                let state = &mut states[session as usize];
                if applied {
                    let now = Instant::now();
                    report.completed += 1;
                    report.latencies_ns.push(
                        u64::try_from(now.duration_since(state.started_at).as_nanos())
                            .unwrap_or(u64::MAX),
                    );
                    let gap = now.duration_since(*last_success);
                    *last_success = now;
                    if gap > self.config.stall_floor {
                        report.stalled += gap;
                        report.longest_stall = report.longest_stall.max(gap);
                    }
                    state.seq += 1;
                    state.started_at = now;
                    // Sessions with work left re-enter the issue queue.
                    if state.seq < per_session {
                        ready.push_back(session);
                    }
                } else {
                    // Fencing-rejected: the lease raced a leadership change.
                    // Retry; the new leader will serve it.
                    report.rejected_replies += 1;
                    ready.push_back(session);
                }
            }
            ServiceMessage::Redirect {
                session,
                seq,
                leader,
                ..
            } => {
                if inflight.remove(&(session, seq)).is_none() {
                    report.duplicate_replies += 1;
                    return;
                }
                report.redirects += 1;
                match leader {
                    // A redirect naming the node we already target means the
                    // leader-elect is not serving yet (its lease has not
                    // settled): back off instead of hammering it.
                    Some(process) if self.leader_hint == Some(process.node) => {
                        deferred.push_back((Instant::now() + self.config.retry_backoff, session));
                    }
                    Some(process) => {
                        self.leader_hint = Some(process.node);
                        ready.push_back(session);
                    }
                    None => {
                        // Election in progress: back off briefly.
                        self.leader_hint = None;
                        deferred.push_back((Instant::now() + self.config.retry_backoff, session));
                    }
                }
            }
            // Anything else (gossip that leaked to a client id) is noise.
            _ => {}
        }
    }

    /// Dissolves the hub, returning its endpoint.
    pub fn into_endpoint(self) -> E {
        self.endpoint
    }
}
