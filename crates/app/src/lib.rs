//! # sle-app — the client tier of the leader-election service
//!
//! The service elects leaders; this crate is what an *application* builds on
//! top of that answer (see `docs/APP.md` for the full model):
//!
//! * [`FencedCounter`] — a replicated-counter state machine implementing
//!   [`FencedApp`](sle_core::FencedApp): it is installed on every service
//!   node, applies writes only under the leader's fencing token, and rejects
//!   any token below its high-water mark — a deposed leader's delayed writes
//!   can never land,
//! * [`FencingAudit`] — a shared ledger recording every accepted write's
//!   token across all replicas, so a test or benchmark can *prove* the
//!   tokens were applied in monotone order (zero fencing violations),
//! * [`ClientHub`] — a client session layer that discovers the leader,
//!   routes requests to it, and transparently retries on redirects, fencing
//!   rejections and leader crashes. It is generic over the
//!   [`MessageEndpoint`](sle_net::transport::MessageEndpoint) seam, so the
//!   same client code runs over the
//!   in-memory mesh, the legacy one-socket-per-node UDP transport and the
//!   shared-socket UDP plane.
//!
//! The `bench_app` binary in `sle-bench` drives a [`ClientHub`] with ~one
//! million requests through repeated forced leader crashes and asserts the
//! audit stays violation-free while unavailability stays within the QoS
//! budget.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod counter;

pub use client::{ClientConfig, ClientHub, HubReport};
pub use counter::{AuditSnapshot, FencedCounter, FencingAudit};
