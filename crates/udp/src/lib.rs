//! # sle-udp — the service over real UDP sockets
//!
//! The DSN 2008 paper runs the leader-election service as **one lightweight
//! daemon per workstation exchanging UDP datagrams** (Section 6 evaluates
//! exactly that deployment on a 12-workstation cluster). This crate is that
//! deployment shape for the reproduction: a [`UdpEndpoint`] owns one
//! `std::net::UdpSocket`, a peer address book mapping
//! [`NodeId`]s to socket addresses, and a reader
//! thread that decodes arriving datagrams with the `sle-wire` codec
//! (`docs/WIRE.md`) and queues them for the runtime.
//!
//! [`UdpEndpoint`] implements the same
//! [`MessageEndpoint`] contract as the
//! in-memory mesh of `sle-net`, so `sle-core`'s real-time
//! [`Cluster`](sle_core::runtime::Cluster) drives either transport with the
//! *identical* protocol state machine — swapping channels for sockets is
//! `Cluster::start_with_endpoints(bind_loopback_mesh(n)?, …)`.
//!
//! The endpoint is hardened the way a daemon facing a real network must be:
//! oversized datagrams, truncated or corrupted frames, unknown senders and
//! spoofed source addresses are counted ([`UdpStats`]) and dropped, never
//! parsed into a panic (the codec is total; see `sle-wire`'s property
//! tests).
//!
//! ## Example: two endpoints on the loopback interface
//!
//! ```
//! use sle_net::transport::MessageEndpoint;
//! use sle_sim::actor::NodeId;
//! use sle_udp::bind_loopback_mesh;
//! use std::time::Duration;
//!
//! // Two sockets on 127.0.0.1 with ephemeral ports, already introduced to
//! // each other.
//! let mut endpoints = bind_loopback_mesh::<u64>(2).unwrap();
//! let b = endpoints.pop().unwrap();
//! let a = endpoints.pop().unwrap();
//!
//! a.send(NodeId(1), 42).unwrap();
//! let incoming = b.recv_timeout(Duration::from_secs(5)).expect("delivered");
//! assert_eq!(incoming.from, NodeId(0));
//! assert_eq!(incoming.msg, 42);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod plane;
pub mod pool;

pub use plane::{
    PlaneStats, PlaneStatsSnapshot, SharedUdpEndpoint, SharedUdpPlane, COALESCE_BUDGET,
    MAX_PLANE_DATAGRAM, RECORD_HEADER,
};
pub use pool::{BufferPool, PoolStats, PoolStatsSnapshot, PooledBuf};

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sle_net::transport::{Incoming, MessageEndpoint, ShardDelivery, TransportError};
use sle_obs::{Counter, DropReason, ProtoEvent, Registry, SharedClock, TraceRing};
use sle_sim::actor::NodeId;
use sle_wire::{decode_frame, encode_frame, WireFormat, MAX_DATAGRAM};

/// Fallback read timeout installed at shutdown, in case the zero-byte wake
/// datagram is lost. In steady state the reader blocks indefinitely — its
/// shutdown is edge-triggered (see [`UdpEndpoint`]'s `Drop`), so an idle
/// endpoint causes no periodic wakeups at all.
const SHUTDOWN_FALLBACK_POLL: Duration = Duration::from_millis(25);

/// Datagram-level counters of one endpoint, all monotonically increasing.
///
/// The `dropped_*` counters are the endpoint's hardening made visible:
/// every datagram the reader refused, by reason. The fields are
/// [`sle_obs::Counter`] handles, so the same cells can be bound into a
/// metrics [`Registry`] with [`UdpStats::bind`] — the endpoint then updates
/// the exported metrics and this struct's view with one atomic increment.
#[derive(Debug, Default)]
pub struct UdpStats {
    /// Well-formed datagrams handed to the runtime.
    pub delivered: Counter,
    /// Datagrams larger than [`MAX_DATAGRAM`], dropped unparsed.
    pub dropped_oversized: Counter,
    /// Datagrams the `sle-wire` codec rejected (bad magic or version,
    /// truncation, corruption, trailing bytes).
    pub dropped_malformed: Counter,
    /// Well-formed datagrams whose claimed sender is not in the address
    /// book, or whose UDP source address does not match the address book
    /// entry for that sender (a spoof, or a peer behind a NAT rebinding).
    pub dropped_misaddressed: Counter,
    /// Outbound messages that could not be encoded into one datagram
    /// ([`WireError::TooLarge`](sle_wire::WireError)). Unlike the
    /// `dropped_*` receive counters this is a *send-side* failure: it
    /// recurs deterministically for the same message, so a non-zero value
    /// means the node is trying to say something the wire cannot carry
    /// (e.g. a HELLO gossiping more members than fit in
    /// [`MAX_DATAGRAM`]) — not that the network is lossy.
    pub send_unencodable: Counter,
    /// Times the reader thread woke from `recv_from`, for any reason. The
    /// reader blocks without a timeout, so on an idle endpoint this stays
    /// flat — the regression guard for "no periodic wakeups when nothing
    /// arrives".
    pub reader_wakeups: Counter,
}

/// A point-in-time copy of [`UdpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UdpStatsSnapshot {
    /// Well-formed datagrams handed to the runtime.
    pub delivered: u64,
    /// Datagrams larger than [`MAX_DATAGRAM`], dropped unparsed.
    pub dropped_oversized: u64,
    /// Datagrams the codec rejected.
    pub dropped_malformed: u64,
    /// Datagrams with an unknown or spoofed sender.
    pub dropped_misaddressed: u64,
    /// Outbound messages too large to encode into one datagram.
    pub send_unencodable: u64,
    /// Times the reader thread woke from `recv_from`, for any reason.
    pub reader_wakeups: u64,
}

impl UdpStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> UdpStatsSnapshot {
        UdpStatsSnapshot {
            delivered: self.delivered.get(),
            dropped_oversized: self.dropped_oversized.get(),
            dropped_malformed: self.dropped_malformed.get(),
            dropped_misaddressed: self.dropped_misaddressed.get(),
            send_unencodable: self.send_unencodable.get(),
            reader_wakeups: self.reader_wakeups.get(),
        }
    }

    /// Binds the live counters into `registry` under `<prefix>.<counter>`
    /// (e.g. `node.3.udp.delivered`), making this struct a view over the
    /// exported metrics.
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}.delivered"), &self.delivered);
        registry.bind_counter(
            &format!("{prefix}.dropped_oversized"),
            &self.dropped_oversized,
        );
        registry.bind_counter(
            &format!("{prefix}.dropped_malformed"),
            &self.dropped_malformed,
        );
        registry.bind_counter(
            &format!("{prefix}.dropped_misaddressed"),
            &self.dropped_misaddressed,
        );
        registry.bind_counter(
            &format!("{prefix}.send_unencodable"),
            &self.send_unencodable,
        );
        registry.bind_counter(&format!("{prefix}.reader_wakeups"), &self.reader_wakeups);
    }
}

/// Where a hardened endpoint reports refused datagrams: a trace ring plus
/// the clock stamping the [`DatagramDropped`](ProtoEvent::DatagramDropped)
/// events. Installed with [`UdpEndpoint::set_trace`].
struct UdpTrace {
    ring: TraceRing,
    clock: SharedClock,
}

impl UdpTrace {
    fn dropped(&self, node: NodeId, reason: DropReason) {
        self.ring.push(
            node,
            self.clock.now(),
            ProtoEvent::DatagramDropped { reason },
        );
    }
}

/// Where the reader thread currently delivers decoded messages: the
/// endpoint's pull channel (the default) or a sharded runtime's mailbox.
enum UdpDelivery<M> {
    Channel(Sender<Incoming<M>>),
    Shard(ShardDelivery<M>),
}

/// One workstation's UDP attachment to the service: a socket, an address
/// book, and a reader thread feeding decoded messages to the runtime.
///
/// Dropping the endpoint stops and joins the reader thread.
pub struct UdpEndpoint<M> {
    node: NodeId,
    socket: UdpSocket,
    peers: Arc<Vec<SocketAddr>>,
    rx: Receiver<Incoming<M>>,
    delivery: Arc<Mutex<UdpDelivery<M>>>,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
    stats: Arc<UdpStats>,
    trace: Arc<Mutex<Option<UdpTrace>>>,
}

impl<M: WireFormat + Send + 'static> UdpEndpoint<M> {
    /// Wraps an already-bound socket as the endpoint of `node`, with
    /// `peers[i]` the address of node `i` (including this node's own
    /// address at `peers[node]`).
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be cloned for the reader thread or its
    /// read timeout cannot be cleared.
    pub fn new(node: NodeId, socket: UdpSocket, peers: Vec<SocketAddr>) -> io::Result<Self> {
        let peers = Arc::new(peers);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(UdpStats::default());
        let trace: Arc<Mutex<Option<UdpTrace>>> = Arc::new(Mutex::new(None));
        let (tx, rx) = channel();
        let delivery = Arc::new(Mutex::new(UdpDelivery::Channel(tx)));

        let reader_socket = socket.try_clone()?;
        // The reader blocks until a datagram arrives; shutdown is
        // edge-triggered by a zero-byte self-send (see `Drop`), so an idle
        // endpoint never wakes.
        reader_socket.set_read_timeout(None)?;
        let reader = std::thread::Builder::new()
            .name(format!("sle-udp-reader-{node}"))
            .spawn({
                let peers = Arc::clone(&peers);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                let delivery = Arc::clone(&delivery);
                let trace = Arc::clone(&trace);
                move || {
                    reader_loop(
                        node,
                        reader_socket,
                        &peers,
                        &stop,
                        &stats,
                        &delivery,
                        &trace,
                    )
                }
            })?;

        Ok(UdpEndpoint {
            node,
            socket,
            peers,
            rx,
            delivery,
            stop,
            reader: Some(reader),
            stats,
            trace,
        })
    }

    /// The address this endpoint's socket is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The address-book entry for `node`, if it has one.
    pub fn peer_addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.peers.get(node.index()).copied()
    }

    /// A copy of the endpoint's datagram counters.
    pub fn stats(&self) -> UdpStatsSnapshot {
        self.stats.snapshot()
    }

    /// A shared handle to the live counters, for observing an endpoint
    /// after it has moved into a runtime thread (a daemon's metrics
    /// exporter holds one of these).
    pub fn stats_handle(&self) -> Arc<UdpStats> {
        Arc::clone(&self.stats)
    }

    /// Reports every refused datagram into `ring` as a
    /// [`ProtoEvent::DatagramDropped`] event, stamped by `clock`. The drop
    /// paths are cold (a healthy endpoint refuses nothing), so the trace
    /// costs nothing on the delivery fast path.
    pub fn set_trace(&self, ring: TraceRing, clock: SharedClock) {
        *self.trace.lock().expect("udp trace poisoned") = Some(UdpTrace { ring, clock });
    }
}

fn reader_loop<M: WireFormat>(
    node: NodeId,
    socket: UdpSocket,
    peers: &[SocketAddr],
    stop: &AtomicBool,
    stats: &UdpStats,
    delivery: &Mutex<UdpDelivery<M>>,
    trace: &Mutex<Option<UdpTrace>>,
) {
    let trace_dropped = |reason: DropReason| {
        if let Some(trace) = &*trace.lock().expect("udp trace poisoned") {
            trace.dropped(node, reason);
        }
    };
    // One byte over the limit so an in-limit read is provably untruncated.
    let mut buf = vec![0u8; MAX_DATAGRAM + 1];
    while !stop.load(Ordering::Relaxed) {
        let received = socket.recv_from(&mut buf);
        stats.reader_wakeups.inc();
        let (len, src) = match received {
            Ok(received) => received,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            // Transient errors (e.g. ECONNREFUSED bounced back by a dead
            // peer's ICMP on Linux) must not kill the daemon's reader.
            Err(_) => continue,
        };
        if len == 0 {
            // A zero-byte datagram carries nothing the codec could accept;
            // it is the shutdown wake-up (or noise), so just re-check the
            // stop flag.
            continue;
        }
        if len > MAX_DATAGRAM {
            stats.dropped_oversized.inc();
            trace_dropped(DropReason::Oversized);
            continue;
        }
        let (from, msg) = match decode_frame::<M>(&buf[..len]) {
            Ok(decoded) => decoded,
            Err(_) => {
                stats.dropped_malformed.inc();
                trace_dropped(DropReason::Malformed);
                continue;
            }
        };
        // The claimed sender must be in the address book *and* the datagram
        // must actually come from that peer's socket.
        if peers.get(from.index()) != Some(&src) {
            stats.dropped_misaddressed.inc();
            trace_dropped(DropReason::Misaddressed);
            continue;
        }
        stats.delivered.inc();
        let incoming = Incoming { from, msg };
        match &*delivery.lock().expect("udp delivery poisoned") {
            UdpDelivery::Channel(tx) => {
                if tx.send(incoming).is_err() {
                    // The endpoint (and its receiver) is gone.
                    return;
                }
            }
            UdpDelivery::Shard(sink) => sink.push((node, incoming)),
        }
    }
}

impl<M: WireFormat + Send + 'static> MessageEndpoint<M> for UdpEndpoint<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    /// Encodes `msg` and sends it as one datagram, best effort.
    ///
    /// OS-level send failures are swallowed: to the protocol they are the
    /// network losing a message, which it is built to tolerate.
    fn send(&self, to: NodeId, msg: M) -> Result<(), TransportError> {
        let addr = self
            .peers
            .get(to.index())
            .ok_or(TransportError::UnknownDestination(to))?;
        let frame = encode_frame(self.node, &msg).map_err(|e| {
            self.stats.send_unencodable.inc();
            if let Some(trace) = &*self.trace.lock().expect("udp trace poisoned") {
                trace.dropped(self.node, DropReason::Unencodable);
            }
            TransportError::Unencodable(e.to_string())
        })?;
        let _ = self.socket.send_to(&frame, addr);
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(incoming) => Some(incoming),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn try_recv(&self) -> Option<Incoming<M>> {
        self.rx.try_recv().ok()
    }

    fn set_delivery_sink(&self, sink: ShardDelivery<M>) -> bool {
        {
            let mut delivery = self.delivery.lock().expect("udp delivery poisoned");
            *delivery = UdpDelivery::Shard(sink.clone());
        }
        // Datagrams decoded before the switch must not be stranded in the
        // pull channel (the reader only pushes to the sink from now on).
        while let Ok(incoming) = self.rx.try_recv() {
            sink.push((self.node, incoming));
        }
        true
    }
}

impl<M> Drop for UdpEndpoint<M> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // The fallback read timeout covers a reader that has not yet
        // re-entered `recv_from` (socket options are shared with the
        // clone); a reader already parked inside the syscall is only woken
        // by the zero-byte self-send below.
        let _ = self.socket.set_read_timeout(Some(SHUTDOWN_FALLBACK_POLL));
        // Edge-triggered shutdown: a zero-byte datagram to our own socket
        // wakes the blocked reader, which re-checks the stop flag and
        // exits. A wildcard-bound socket reports an unspecified local IP
        // that is not a valid destination everywhere, so route the wake
        // through the matching loopback address instead.
        let woken = self
            .socket
            .local_addr()
            .and_then(|mut addr| {
                if addr.ip().is_unspecified() {
                    match addr {
                        SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                        SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
                    }
                }
                self.socket.send_to(&[], addr)
            })
            .is_ok();
        if let Some(reader) = self.reader.take() {
            if woken {
                let _ = reader.join();
            }
            // If the wake could not even be sent, the reader may be parked
            // in `recv_from` indefinitely; leaking it (it exits on the next
            // datagram or timeout tick) beats hanging the dropping thread
            // forever.
        }
    }
}

/// Binds `n` endpoints to ephemeral ports on `127.0.0.1` and introduces
/// them to each other — the socket-world equivalent of
/// [`InMemoryMesh::new(n)`](sle_net::transport::InMemoryMesh::new), used by
/// the `udp_cluster` example and the loopback integration tests.
///
/// Endpoint `i` has identity `NodeId(i)`.
///
/// # Errors
///
/// Fails if any socket cannot be bound or any reader thread cannot start.
pub fn bind_loopback_mesh<M: WireFormat + Send + 'static>(
    n: usize,
) -> io::Result<Vec<UdpEndpoint<M>>> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr())
        .collect::<io::Result<_>>()?;
    sockets
        .into_iter()
        .enumerate()
        .map(|(i, socket)| UdpEndpoint::new(NodeId(i as u32), socket, addrs.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_mesh_routes_datagrams() {
        let endpoints = bind_loopback_mesh::<u64>(3).unwrap();
        assert_eq!(endpoints[1].node(), NodeId(1));
        endpoints[0].send(NodeId(1), 10).unwrap();
        endpoints[2].send(NodeId(1), 20).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let incoming = endpoints[1]
                .recv_timeout(Duration::from_secs(5))
                .expect("datagram delivered on loopback");
            got.push((incoming.from, incoming.msg));
        }
        got.sort();
        assert_eq!(got, vec![(NodeId(0), 10), (NodeId(2), 20)]);
        assert_eq!(endpoints[1].stats().delivered, 2);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        assert_eq!(
            endpoints[0].send(NodeId(9), 1),
            Err(TransportError::UnknownDestination(NodeId(9)))
        );
    }

    #[test]
    fn garbage_and_oversized_datagrams_are_counted_and_dropped() {
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        let target = endpoints[0].local_addr().unwrap();
        let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();

        attacker.send_to(b"definitely not a frame", target).unwrap();
        attacker.send_to(&[0u8; MAX_DATAGRAM + 64], target).unwrap();
        // A well-formed frame, but from a socket that is not in the
        // address book (spoofing NodeId(0)'s identity).
        let spoof = encode_frame(NodeId(0), &7u64).unwrap();
        attacker.send_to(&spoof, target).unwrap();

        // Nothing may surface to the application...
        assert!(endpoints[0]
            .recv_timeout(Duration::from_millis(300))
            .is_none());
        // ...and each drop is attributed to its reason.
        let stats = endpoints[0].stats();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped_malformed, 1);
        assert_eq!(stats.dropped_oversized, 1);
        assert_eq!(stats.dropped_misaddressed, 1);
    }

    #[test]
    fn refused_datagrams_are_traced_with_their_reason() {
        use sle_obs::ManualClock;

        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        let ring = TraceRing::new(16);
        endpoints[0].set_trace(ring.clone(), Arc::new(ManualClock::new()));
        let target = endpoints[0].local_addr().unwrap();
        let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();

        attacker.send_to(b"definitely not a frame", target).unwrap();
        assert!(endpoints[0]
            .recv_timeout(Duration::from_millis(300))
            .is_none());

        let drain = ring.drain();
        assert_eq!(drain.dropped, 0);
        assert_eq!(drain.events.len(), 1);
        assert!(matches!(
            drain.events[0].event,
            ProtoEvent::DatagramDropped {
                reason: DropReason::Malformed
            }
        ));
    }

    #[test]
    fn unencodable_sends_error_and_are_counted() {
        use sle_core::messages::{GroupAnnouncement, ServiceMessage};
        use sle_core::process::GroupId;
        use sle_sim::time::SimInstant;

        let endpoints = bind_loopback_mesh::<ServiceMessage>(2).unwrap();
        // A HELLO gossiping more groups than fit in MAX_DATAGRAM.
        let huge = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements: (0..250)
                .map(|i| GroupAnnouncement {
                    group: GroupId(i),
                    processes: Vec::new(),
                })
                .collect(),
        };
        assert!(matches!(
            endpoints[0].send(NodeId(1), huge),
            Err(TransportError::Unencodable(_))
        ));
        assert_eq!(endpoints[0].stats().send_unencodable, 1);
        assert!(endpoints[1]
            .recv_timeout(Duration::from_millis(100))
            .is_none());
    }

    #[test]
    fn self_send_works_like_any_peer() {
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        endpoints[0].send(NodeId(0), 5).unwrap();
        let incoming = endpoints[0].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(incoming.from, NodeId(0));
        assert_eq!(incoming.msg, 5);
        assert_eq!(
            endpoints[0].peer_addr(NodeId(0)),
            endpoints[0].local_addr().ok()
        );
        assert_eq!(endpoints[0].peer_addr(NodeId(3)), None);
    }

    #[test]
    fn drop_joins_the_reader_thread_promptly() {
        // Shutdown is edge-triggered (zero-byte self-send), so joining the
        // readers must not wait out any polling interval.
        let endpoints = bind_loopback_mesh::<u64>(4).unwrap();
        let start = std::time::Instant::now();
        drop(endpoints);
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "reader shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn idle_reader_does_not_wake() {
        // The reader blocks without a read timeout: an endpoint receiving
        // nothing must record zero reader wakeups, however long it idles.
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(endpoints[0].stats().reader_wakeups, 0);
    }

    #[test]
    fn delivery_sink_receives_decoded_datagrams() {
        use sle_net::mailbox::Mailbox;
        use std::time::Instant;

        let endpoints = bind_loopback_mesh::<u64>(2).unwrap();
        let mailbox: Mailbox<(NodeId, Incoming<u64>)> = Mailbox::new();
        assert!(endpoints[1].set_delivery_sink(mailbox.sender()));
        endpoints[0].send(NodeId(1), 9).unwrap();
        let mut buf = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while buf.is_empty() && Instant::now() < deadline {
            mailbox.wait_until(Some(Instant::now() + Duration::from_millis(50)), &mut buf);
        }
        let (node, incoming) = buf.pop().expect("datagram delivered to the sink");
        assert_eq!(node, NodeId(1));
        assert_eq!(incoming.from, NodeId(0));
        assert_eq!(incoming.msg, 9);
        // The pull path sees nothing once the endpoint is in push mode.
        assert!(endpoints[1].try_recv().is_none());
    }
}
