//! # sle-udp — the service over real UDP sockets
//!
//! The DSN 2008 paper runs the leader-election service as **one lightweight
//! daemon per workstation exchanging UDP datagrams** (Section 6 evaluates
//! exactly that deployment on a 12-workstation cluster). This crate is that
//! deployment shape for the reproduction: a [`UdpEndpoint`] owns one
//! `std::net::UdpSocket`, a peer address book mapping
//! [`NodeId`]s to socket addresses, and a reader
//! thread that decodes arriving datagrams with the `sle-wire` codec
//! (`docs/WIRE.md`) and queues them for the runtime.
//!
//! [`UdpEndpoint`] implements the same
//! [`MessageEndpoint`] contract as the
//! in-memory mesh of `sle-net`, so `sle-core`'s real-time
//! [`Cluster`](sle_core::runtime::Cluster) drives either transport with the
//! *identical* protocol state machine — swapping channels for sockets is
//! `Cluster::start_with_endpoints(bind_loopback_mesh(n)?, …)`.
//!
//! The endpoint is hardened the way a daemon facing a real network must be:
//! oversized datagrams, truncated or corrupted frames, unknown senders and
//! spoofed source addresses are counted ([`UdpStats`]) and dropped, never
//! parsed into a panic (the codec is total; see `sle-wire`'s property
//! tests).
//!
//! ## Example: two endpoints on the loopback interface
//!
//! ```
//! use sle_net::transport::MessageEndpoint;
//! use sle_sim::actor::NodeId;
//! use sle_udp::bind_loopback_mesh;
//! use std::time::Duration;
//!
//! // Two sockets on 127.0.0.1 with ephemeral ports, already introduced to
//! // each other.
//! let mut endpoints = bind_loopback_mesh::<u64>(2).unwrap();
//! let b = endpoints.pop().unwrap();
//! let a = endpoints.pop().unwrap();
//!
//! a.send(NodeId(1), 42).unwrap();
//! let incoming = b.recv_timeout(Duration::from_secs(5)).expect("delivered");
//! assert_eq!(incoming.from, NodeId(0));
//! assert_eq!(incoming.msg, 42);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use sle_net::transport::{Incoming, MessageEndpoint, TransportError};
use sle_sim::actor::NodeId;
use sle_wire::{decode_frame, encode_frame, WireFormat, MAX_DATAGRAM};

/// How long the reader thread blocks in `recv_from` before re-checking the
/// shutdown flag.
const READER_POLL: Duration = Duration::from_millis(25);

/// Datagram-level counters of one endpoint, all monotonically increasing.
///
/// The `dropped_*` counters are the endpoint's hardening made visible:
/// every datagram the reader refused, by reason.
#[derive(Debug, Default)]
pub struct UdpStats {
    /// Well-formed datagrams handed to the runtime.
    pub delivered: AtomicU64,
    /// Datagrams larger than [`MAX_DATAGRAM`], dropped unparsed.
    pub dropped_oversized: AtomicU64,
    /// Datagrams the `sle-wire` codec rejected (bad magic or version,
    /// truncation, corruption, trailing bytes).
    pub dropped_malformed: AtomicU64,
    /// Well-formed datagrams whose claimed sender is not in the address
    /// book, or whose UDP source address does not match the address book
    /// entry for that sender (a spoof, or a peer behind a NAT rebinding).
    pub dropped_misaddressed: AtomicU64,
    /// Outbound messages that could not be encoded into one datagram
    /// ([`WireError::TooLarge`](sle_wire::WireError)). Unlike the
    /// `dropped_*` receive counters this is a *send-side* failure: it
    /// recurs deterministically for the same message, so a non-zero value
    /// means the node is trying to say something the wire cannot carry
    /// (e.g. a HELLO gossiping more members than fit in
    /// [`MAX_DATAGRAM`]) — not that the network is lossy.
    pub send_unencodable: AtomicU64,
}

/// A point-in-time copy of [`UdpStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UdpStatsSnapshot {
    /// Well-formed datagrams handed to the runtime.
    pub delivered: u64,
    /// Datagrams larger than [`MAX_DATAGRAM`], dropped unparsed.
    pub dropped_oversized: u64,
    /// Datagrams the codec rejected.
    pub dropped_malformed: u64,
    /// Datagrams with an unknown or spoofed sender.
    pub dropped_misaddressed: u64,
    /// Outbound messages too large to encode into one datagram.
    pub send_unencodable: u64,
}

impl UdpStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> UdpStatsSnapshot {
        UdpStatsSnapshot {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_oversized: self.dropped_oversized.load(Ordering::Relaxed),
            dropped_malformed: self.dropped_malformed.load(Ordering::Relaxed),
            dropped_misaddressed: self.dropped_misaddressed.load(Ordering::Relaxed),
            send_unencodable: self.send_unencodable.load(Ordering::Relaxed),
        }
    }
}

/// One workstation's UDP attachment to the service: a socket, an address
/// book, and a reader thread feeding decoded messages to the runtime.
///
/// Dropping the endpoint stops and joins the reader thread.
pub struct UdpEndpoint<M> {
    node: NodeId,
    socket: UdpSocket,
    peers: Arc<Vec<SocketAddr>>,
    rx: Receiver<Incoming<M>>,
    stop: Arc<AtomicBool>,
    reader: Option<JoinHandle<()>>,
    stats: Arc<UdpStats>,
}

impl<M: WireFormat + Send + 'static> UdpEndpoint<M> {
    /// Wraps an already-bound socket as the endpoint of `node`, with
    /// `peers[i]` the address of node `i` (including this node's own
    /// address at `peers[node]`).
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be cloned for the reader thread or its
    /// read timeout cannot be set.
    pub fn new(node: NodeId, socket: UdpSocket, peers: Vec<SocketAddr>) -> io::Result<Self> {
        let peers = Arc::new(peers);
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(UdpStats::default());
        let (tx, rx) = channel();

        let reader_socket = socket.try_clone()?;
        reader_socket.set_read_timeout(Some(READER_POLL))?;
        let reader = std::thread::Builder::new()
            .name(format!("sle-udp-reader-{node}"))
            .spawn({
                let peers = Arc::clone(&peers);
                let stop = Arc::clone(&stop);
                let stats = Arc::clone(&stats);
                move || reader_loop(reader_socket, &peers, &stop, &stats, &tx)
            })?;

        Ok(UdpEndpoint {
            node,
            socket,
            peers,
            rx,
            stop,
            reader: Some(reader),
            stats,
        })
    }

    /// The address this endpoint's socket is bound to.
    ///
    /// # Errors
    ///
    /// Propagates the OS error if the socket has no local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.socket.local_addr()
    }

    /// The address-book entry for `node`, if it has one.
    pub fn peer_addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.peers.get(node.index()).copied()
    }

    /// A copy of the endpoint's datagram counters.
    pub fn stats(&self) -> UdpStatsSnapshot {
        self.stats.snapshot()
    }

    /// A shared handle to the live counters, for observing an endpoint
    /// after it has moved into a runtime thread (a daemon's metrics
    /// exporter holds one of these).
    pub fn stats_handle(&self) -> Arc<UdpStats> {
        Arc::clone(&self.stats)
    }
}

fn reader_loop<M: WireFormat>(
    socket: UdpSocket,
    peers: &[SocketAddr],
    stop: &AtomicBool,
    stats: &UdpStats,
    tx: &Sender<Incoming<M>>,
) {
    // One byte over the limit so an in-limit read is provably untruncated.
    let mut buf = vec![0u8; MAX_DATAGRAM + 1];
    while !stop.load(Ordering::Relaxed) {
        let (len, src) = match socket.recv_from(&mut buf) {
            Ok(received) => received,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            // Transient errors (e.g. ECONNREFUSED bounced back by a dead
            // peer's ICMP on Linux) must not kill the daemon's reader.
            Err(_) => continue,
        };
        if len > MAX_DATAGRAM {
            stats.dropped_oversized.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        let (from, msg) = match decode_frame::<M>(&buf[..len]) {
            Ok(decoded) => decoded,
            Err(_) => {
                stats.dropped_malformed.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        };
        // The claimed sender must be in the address book *and* the datagram
        // must actually come from that peer's socket.
        if peers.get(from.index()) != Some(&src) {
            stats.dropped_misaddressed.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        stats.delivered.fetch_add(1, Ordering::Relaxed);
        if tx.send(Incoming { from, msg }).is_err() {
            // The endpoint (and its receiver) is gone: nothing left to do.
            return;
        }
    }
}

impl<M: WireFormat + Send + 'static> MessageEndpoint<M> for UdpEndpoint<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    /// Encodes `msg` and sends it as one datagram, best effort.
    ///
    /// OS-level send failures are swallowed: to the protocol they are the
    /// network losing a message, which it is built to tolerate.
    fn send(&self, to: NodeId, msg: M) -> Result<(), TransportError> {
        let addr = self
            .peers
            .get(to.index())
            .ok_or(TransportError::UnknownDestination(to))?;
        let frame = encode_frame(self.node, &msg).map_err(|e| {
            self.stats.send_unencodable.fetch_add(1, Ordering::Relaxed);
            TransportError::Unencodable(e.to_string())
        })?;
        let _ = self.socket.send_to(&frame, addr);
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(incoming) => Some(incoming),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn try_recv(&self) -> Option<Incoming<M>> {
        self.rx.try_recv().ok()
    }
}

impl<M> Drop for UdpEndpoint<M> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
    }
}

/// Binds `n` endpoints to ephemeral ports on `127.0.0.1` and introduces
/// them to each other — the socket-world equivalent of
/// [`InMemoryMesh::new(n)`](sle_net::transport::InMemoryMesh::new), used by
/// the `udp_cluster` example and the loopback integration tests.
///
/// Endpoint `i` has identity `NodeId(i)`.
///
/// # Errors
///
/// Fails if any socket cannot be bound or any reader thread cannot start.
pub fn bind_loopback_mesh<M: WireFormat + Send + 'static>(
    n: usize,
) -> io::Result<Vec<UdpEndpoint<M>>> {
    let sockets: Vec<UdpSocket> = (0..n)
        .map(|_| UdpSocket::bind("127.0.0.1:0"))
        .collect::<io::Result<_>>()?;
    let addrs: Vec<SocketAddr> = sockets
        .iter()
        .map(|s| s.local_addr())
        .collect::<io::Result<_>>()?;
    sockets
        .into_iter()
        .enumerate()
        .map(|(i, socket)| UdpEndpoint::new(NodeId(i as u32), socket, addrs.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_mesh_routes_datagrams() {
        let endpoints = bind_loopback_mesh::<u64>(3).unwrap();
        assert_eq!(endpoints[1].node(), NodeId(1));
        endpoints[0].send(NodeId(1), 10).unwrap();
        endpoints[2].send(NodeId(1), 20).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let incoming = endpoints[1]
                .recv_timeout(Duration::from_secs(5))
                .expect("datagram delivered on loopback");
            got.push((incoming.from, incoming.msg));
        }
        got.sort();
        assert_eq!(got, vec![(NodeId(0), 10), (NodeId(2), 20)]);
        assert_eq!(endpoints[1].stats().delivered, 2);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        assert_eq!(
            endpoints[0].send(NodeId(9), 1),
            Err(TransportError::UnknownDestination(NodeId(9)))
        );
    }

    #[test]
    fn garbage_and_oversized_datagrams_are_counted_and_dropped() {
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        let target = endpoints[0].local_addr().unwrap();
        let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();

        attacker.send_to(b"definitely not a frame", target).unwrap();
        attacker.send_to(&[0u8; MAX_DATAGRAM + 64], target).unwrap();
        // A well-formed frame, but from a socket that is not in the
        // address book (spoofing NodeId(0)'s identity).
        let spoof = encode_frame(NodeId(0), &7u64).unwrap();
        attacker.send_to(&spoof, target).unwrap();

        // Nothing may surface to the application...
        assert!(endpoints[0]
            .recv_timeout(Duration::from_millis(300))
            .is_none());
        // ...and each drop is attributed to its reason.
        let stats = endpoints[0].stats();
        assert_eq!(stats.delivered, 0);
        assert_eq!(stats.dropped_malformed, 1);
        assert_eq!(stats.dropped_oversized, 1);
        assert_eq!(stats.dropped_misaddressed, 1);
    }

    #[test]
    fn unencodable_sends_error_and_are_counted() {
        use sle_core::messages::{GroupAnnouncement, ServiceMessage};
        use sle_core::process::GroupId;
        use sle_sim::time::SimInstant;

        let endpoints = bind_loopback_mesh::<ServiceMessage>(2).unwrap();
        // A HELLO gossiping more groups than fit in MAX_DATAGRAM.
        let huge = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements: (0..250)
                .map(|i| GroupAnnouncement {
                    group: GroupId(i),
                    processes: Vec::new(),
                })
                .collect(),
        };
        assert!(matches!(
            endpoints[0].send(NodeId(1), huge),
            Err(TransportError::Unencodable(_))
        ));
        assert_eq!(endpoints[0].stats().send_unencodable, 1);
        assert!(endpoints[1]
            .recv_timeout(Duration::from_millis(100))
            .is_none());
    }

    #[test]
    fn self_send_works_like_any_peer() {
        let endpoints = bind_loopback_mesh::<u64>(1).unwrap();
        endpoints[0].send(NodeId(0), 5).unwrap();
        let incoming = endpoints[0].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(incoming.from, NodeId(0));
        assert_eq!(incoming.msg, 5);
        assert_eq!(
            endpoints[0].peer_addr(NodeId(0)),
            endpoints[0].local_addr().ok()
        );
        assert_eq!(endpoints[0].peer_addr(NodeId(3)), None);
    }

    #[test]
    fn drop_joins_the_reader_thread() {
        let endpoints = bind_loopback_mesh::<u64>(2).unwrap();
        drop(endpoints);
        // Nothing to assert beyond "this returns": Drop joins the readers.
    }
}
