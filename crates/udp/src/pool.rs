//! A reusable receive-buffer pool for the hot datagram path.
//!
//! The shared-socket UDP plane ([`SharedUdpPlane`](crate::SharedUdpPlane))
//! receives thousands of datagrams per second per socket; allocating a fresh
//! buffer per datagram would put the allocator on the hottest path in the
//! daemon. A [`BufferPool`] keeps a fixed set of fixed-size buffers on a
//! free list: the reader **checks out** a buffer, fills it from
//! `recv_from`, decodes, and the buffer **restores** itself to the pool on
//! drop. After a short warm-up the steady state allocates nothing.
//!
//! The pool never blocks: when every pooled buffer is checked out, checkout
//! falls back to a fresh one-shot allocation (dropped on restore, not
//! retained), and the fallback is counted — exhaustion shows up in metrics,
//! not as latency. Occupancy accounting is exact: the `in_use` gauge and
//! `peak_in_use` high-water mark are updated under the free-list lock, so a
//! registry snapshot can never observe more pooled buffers outstanding than
//! the pool's capacity.

use std::sync::{Arc, Mutex};

use sle_obs::{Counter, Gauge, Registry};

/// Occupancy and allocation counters of one [`BufferPool`], all live
/// [`sle_obs`] handles so they can be bound into a metrics [`Registry`].
#[derive(Debug, Default)]
pub struct PoolStats {
    /// Buffers handed out, pooled or fallback.
    pub checkouts: Counter,
    /// Buffers returned to the free list (fallback buffers are dropped on
    /// restore and do not count here).
    pub restores: Counter,
    /// Fresh heap allocations: lazy warm-up of the pooled set plus every
    /// exhaustion fallback. Flat after warm-up in a healthy steady state.
    pub allocations: Counter,
    /// Checkouts that found the pool empty with all `capacity` buffers
    /// outstanding and fell back to a one-shot allocation.
    pub exhausted: Counter,
    /// Pooled buffers currently checked out (exact; never exceeds the
    /// pool's capacity).
    pub in_use: Gauge,
    /// High-water mark of `in_use` since the pool was created.
    pub peak_in_use: Gauge,
}

/// A point-in-time copy of [`PoolStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStatsSnapshot {
    /// Buffers handed out, pooled or fallback.
    pub checkouts: u64,
    /// Buffers returned to the free list.
    pub restores: u64,
    /// Fresh heap allocations (warm-up + fallbacks).
    pub allocations: u64,
    /// Exhaustion fallbacks.
    pub exhausted: u64,
    /// Pooled buffers currently checked out.
    pub in_use: i64,
    /// High-water mark of `in_use`.
    pub peak_in_use: i64,
}

impl PoolStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PoolStatsSnapshot {
        PoolStatsSnapshot {
            checkouts: self.checkouts.get(),
            restores: self.restores.get(),
            allocations: self.allocations.get(),
            exhausted: self.exhausted.get(),
            in_use: self.in_use.get(),
            peak_in_use: self.peak_in_use.get(),
        }
    }

    /// Binds the live counters into `registry` under `<prefix>.<name>`
    /// (e.g. `udp.plane.pool.in_use`).
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}.checkouts"), &self.checkouts);
        registry.bind_counter(&format!("{prefix}.restores"), &self.restores);
        registry.bind_counter(&format!("{prefix}.allocations"), &self.allocations);
        registry.bind_counter(&format!("{prefix}.exhausted"), &self.exhausted);
        registry.bind_gauge(&format!("{prefix}.in_use"), &self.in_use);
        registry.bind_gauge(&format!("{prefix}.peak_in_use"), &self.peak_in_use);
    }
}

struct PoolShared {
    free: Mutex<FreeList>,
    capacity: usize,
    buf_len: usize,
    stats: PoolStats,
}

struct FreeList {
    bufs: Vec<Vec<u8>>,
    /// Pooled buffers created so far (free + checked out), ≤ capacity.
    created: usize,
}

/// A fixed-capacity pool of fixed-size byte buffers with checkout/restore
/// semantics (see the module docs for the exhaustion and accounting rules).
///
/// ```
/// use sle_udp::BufferPool;
///
/// let pool = BufferPool::new(2, 1024);
/// let a = pool.checkout();
/// assert_eq!(a.len(), 1024);
/// assert_eq!(pool.stats().in_use, 1);
/// drop(a);
/// assert_eq!(pool.stats().in_use, 0);
/// // The buffer is reused, not reallocated.
/// let _b = pool.checkout();
/// assert_eq!(pool.stats().allocations, 1);
/// ```
#[derive(Clone)]
pub struct BufferPool {
    shared: Arc<PoolShared>,
}

impl BufferPool {
    /// Creates a pool that retains at most `capacity` buffers of `buf_len`
    /// bytes each. Buffers are created lazily, so an idle pool costs only
    /// its bookkeeping.
    pub fn new(capacity: usize, buf_len: usize) -> Self {
        BufferPool {
            shared: Arc::new(PoolShared {
                free: Mutex::new(FreeList {
                    bufs: Vec::with_capacity(capacity),
                    created: 0,
                }),
                capacity,
                buf_len,
                stats: PoolStats::default(),
            }),
        }
    }

    /// The maximum number of buffers the pool retains.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// The length, in bytes, of every buffer the pool hands out.
    pub fn buf_len(&self) -> usize {
        self.shared.buf_len
    }

    /// Checks a buffer out, zero-length-extended to the pool's `buf_len`.
    /// Never blocks: if all `capacity` pooled buffers are outstanding, a
    /// one-shot fallback buffer is allocated (and counted as `exhausted`).
    pub fn checkout(&self) -> PooledBuf {
        let stats = &self.shared.stats;
        stats.checkouts.inc();
        let pooled = {
            let mut free = self.shared.free.lock().expect("buffer pool poisoned");
            let buf = if let Some(buf) = free.bufs.pop() {
                Some(buf)
            } else if free.created < self.shared.capacity {
                free.created += 1;
                stats.allocations.inc();
                Some(vec![0u8; self.shared.buf_len])
            } else {
                None
            };
            // Occupancy moves under the lock, so no observer can see the
            // gauge exceed the pool's capacity even transiently.
            if buf.is_some() {
                stats.in_use.add(1);
                stats.peak_in_use.set_max(stats.in_use.get());
            }
            buf
        };
        match pooled {
            Some(buf) => PooledBuf {
                buf,
                pool: Some(Arc::clone(&self.shared)),
            },
            None => {
                stats.exhausted.inc();
                stats.allocations.inc();
                PooledBuf {
                    buf: vec![0u8; self.shared.buf_len],
                    pool: None,
                }
            }
        }
    }

    /// A point-in-time copy of the pool's counters.
    pub fn stats(&self) -> PoolStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Binds the pool's live counters into `registry` under
    /// `<prefix>.<name>`.
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        self.shared.stats.bind(registry, prefix);
    }
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.shared.capacity)
            .field("buf_len", &self.shared.buf_len)
            .finish_non_exhaustive()
    }
}

/// A buffer checked out of a [`BufferPool`]; restores itself (or, for an
/// exhaustion fallback, frees itself) on drop.
pub struct PooledBuf {
    buf: Vec<u8>,
    /// `Some` for a pooled buffer, `None` for an exhaustion fallback.
    pool: Option<Arc<PoolShared>>,
}

impl PooledBuf {
    /// Whether this buffer came from the pooled set (as opposed to an
    /// exhaustion fallback that will be freed on restore).
    pub fn is_pooled(&self) -> bool {
        self.pool.is_some()
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            let buf = std::mem::take(&mut self.buf);
            let mut free = pool.free.lock().expect("buffer pool poisoned");
            free.bufs.push(buf);
            pool.stats.in_use.add(-1);
            pool.stats.restores.inc();
        }
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PooledBuf")
            .field("len", &self.buf.len())
            .field("pooled", &self.is_pooled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_restore_reuses_buffers() {
        let pool = BufferPool::new(2, 64);
        assert_eq!(pool.capacity(), 2);
        assert_eq!(pool.buf_len(), 64);
        let a = pool.checkout();
        let b = pool.checkout();
        assert!(a.is_pooled() && b.is_pooled());
        assert_eq!(pool.stats().in_use, 2);
        drop(a);
        drop(b);
        let stats = pool.stats();
        assert_eq!(stats.in_use, 0);
        assert_eq!(stats.allocations, 2);
        assert_eq!(stats.restores, 2);
        // Reuse allocates nothing further.
        let _c = pool.checkout();
        assert_eq!(pool.stats().allocations, 2);
    }

    #[test]
    fn exhaustion_falls_back_and_is_counted() {
        let pool = BufferPool::new(1, 16);
        let a = pool.checkout();
        let b = pool.checkout();
        assert!(a.is_pooled());
        assert!(!b.is_pooled());
        assert_eq!(b.len(), 16);
        let stats = pool.stats();
        assert_eq!(stats.exhausted, 1);
        assert_eq!(stats.in_use, 1, "fallbacks are not pooled occupancy");
        drop(b);
        drop(a);
        let stats = pool.stats();
        assert_eq!(stats.in_use, 0);
        assert_eq!(stats.restores, 1, "fallbacks are freed, not restored");
        assert_eq!(stats.peak_in_use, 1);
    }

    #[test]
    fn stats_bind_into_a_registry() {
        let pool = BufferPool::new(1, 8);
        let registry = Registry::default();
        pool.bind(&registry, "udp.plane.pool");
        let _a = pool.checkout();
        let snap = registry.snapshot();
        assert_eq!(snap.sum_counters("udp.plane.pool.", "checkouts"), 1);
        assert!(format!("{pool:?}").contains("BufferPool"));
        assert!(format!("{:?}", pool.checkout()).contains("PooledBuf"));
    }
}
