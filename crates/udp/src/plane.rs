//! # The shared-socket UDP data plane
//!
//! The legacy [`UdpEndpoint`](crate::UdpEndpoint) spawns one socket and one
//! reader thread per node — faithful to the paper's one-daemon-per-
//! workstation deployment, but O(n) threads when one process hosts a whole
//! cell. This module collapses the plane to **O(sockets)**: a
//! [`SharedUdpPlane`] binds a small, fixed number of `UdpSocket`s, assigns
//! every node to one of them (node `i` → socket `i % sockets`), and runs one
//! demultiplexing reader thread per socket. Arriving datagrams are decoded
//! into per-node records and routed to the resident destination's delivery
//! sink — the same pull channel / [`ShardDelivery`] seam the legacy
//! endpoint uses, so `sle-core`'s `Cluster` drives a
//! [`SharedUdpEndpoint`] unchanged.
//!
//! ## Datagram format
//!
//! A shared socket serves many destinations, so the sle-wire frame (which
//! names only the *sender*) is wrapped in a plane **record** carrying the
//! destination:
//!
//! ```text
//! datagram := record+
//! record   := dest_node u32 BE | frame_len u16 BE | frame   (sle-wire)
//! ```
//!
//! Senders coalesce: records bound for the same destination socket accrue
//! in a pending buffer until the [`COALESCE_BUDGET`] would overflow or the
//! runtime flushes at a batch boundary
//! ([`MessageEndpoint::flush_sends`]), so co-sharded senders to the same
//! destination share datagrams. The budget mirrors the protocol's
//! `MAX_ALIVE_BATCH_BYTES` (1200 bytes): the wire keeps the same
//! conservative no-fragmentation envelope the ALIVE batcher already
//! guarantees. A single record may exceed the budget (up to
//! [`MAX_PLANE_DATAGRAM`]); it is then sent alone, exactly like an
//! unbatched legacy datagram.
//!
//! ## Hardening
//!
//! The demux refuses, counts, and (optionally) traces every byte it cannot
//! attribute, per reason — see [`PlaneStats`]. Record framing is untrusted:
//! a datagram that ends mid-record is abandoned from the truncation point
//! (`dropped_truncated`), while a record that parses but fails frame
//! decoding, sender validation, or destination residency is skipped and the
//! demux continues with the next record. One deliberate trust boundary is
//! documented here: nodes sharing a source socket are indistinguishable at
//! the address level, so a resident node *can* claim a co-socketed
//! sibling's identity. In-process siblings are inside the trust domain (the
//! legacy plane's per-node sockets draw the same boundary around the
//! process); cross-socket spoofing is still refused.
//!
//! Receive buffers come from a fixed [`BufferPool`] — the hot path stops
//! allocating per datagram after warm-up, and pool occupancy is exact in
//! the exported metrics.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use sle_net::transport::{Incoming, MessageEndpoint, ShardDelivery, TransportError};
use sle_obs::{Counter, DropReason, ProtoEvent, Registry, SharedClock, TraceRing};
use sle_sim::actor::NodeId;
use sle_wire::{decode_frame, encode_frame, WireFormat, MAX_DATAGRAM};

use crate::pool::{BufferPool, PoolStatsSnapshot};

/// Bytes of plane framing preceding each record's sle-wire frame:
/// `dest_node: u32 BE | frame_len: u16 BE`.
pub const RECORD_HEADER: usize = 6;

/// The coalescing budget: a pending buffer is flushed before appending a
/// record that would push it past this many bytes. Mirrors the protocol's
/// `MAX_ALIVE_BATCH_BYTES` so the plane keeps the same conservative
/// no-fragmentation envelope as the ALIVE batcher.
pub const COALESCE_BUDGET: usize = 1200;

/// The largest datagram the plane ever sends or accepts: one maximal
/// record (a full [`MAX_DATAGRAM`] sle-wire frame plus plane framing).
/// Coalesced datagrams stay under [`COALESCE_BUDGET`], which is smaller.
pub const MAX_PLANE_DATAGRAM: usize = RECORD_HEADER + MAX_DATAGRAM;

/// Fallback read timeout installed at shutdown, in case the zero-byte wake
/// datagram is lost (see [`UdpEndpoint`](crate::UdpEndpoint) for the same
/// pattern). In steady state the readers block indefinitely.
const SHUTDOWN_FALLBACK_POLL: Duration = Duration::from_millis(25);

/// Datagram- and record-level counters of one [`SharedUdpPlane`], all
/// monotonically increasing and shared by every socket reader.
///
/// The `dropped_*` counters are the demux's hardening made visible; the
/// `datagrams_*`/`records_sent` trio measures coalescing
/// (`records_sent / datagrams_sent` is the packing ratio). The fields are
/// [`sle_obs::Counter`] handles, so [`PlaneStats::bind`] exposes the same
/// cells through a metrics [`Registry`].
#[derive(Debug, Default)]
pub struct PlaneStats {
    /// Records decoded, validated, and handed to a resident node.
    pub delivered: Counter,
    /// Datagrams larger than [`MAX_PLANE_DATAGRAM`], dropped unparsed.
    pub dropped_oversized: Counter,
    /// Datagrams that ended mid-record (framing truncation). The remainder
    /// of the datagram is abandoned; records before the truncation point
    /// were already processed.
    pub dropped_truncated: Counter,
    /// Records whose sle-wire frame the codec rejected.
    pub dropped_malformed: Counter,
    /// Records whose claimed sender is unknown or whose UDP source address
    /// is not the claimed sender's plane socket (a cross-socket spoof).
    pub dropped_misaddressed: Counter,
    /// Records addressed to a node that is not resident behind the
    /// receiving socket: out-of-range, assigned to a different socket, or
    /// currently without an endpoint (departed mid-stream).
    pub dropped_misrouted: Counter,
    /// Outbound messages that could not be encoded into one frame
    /// (send-side, deterministic; see
    /// [`UdpStats::send_unencodable`](crate::UdpStats)).
    pub send_unencodable: Counter,
    /// Times any plane reader woke from `recv_from`, for any reason. Flat
    /// on an idle plane — the regression guard for "no periodic wakeups".
    pub reader_wakeups: Counter,
    /// Datagrams received by the plane's sockets (before any validation).
    pub datagrams_received: Counter,
    /// Datagrams the plane put on the wire.
    pub datagrams_sent: Counter,
    /// Records the plane put on the wire (several per datagram when
    /// coalescing is effective).
    pub records_sent: Counter,
}

/// A point-in-time copy of [`PlaneStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlaneStatsSnapshot {
    /// Records handed to a resident node.
    pub delivered: u64,
    /// Datagrams larger than [`MAX_PLANE_DATAGRAM`].
    pub dropped_oversized: u64,
    /// Datagrams that ended mid-record.
    pub dropped_truncated: u64,
    /// Records whose frame the codec rejected.
    pub dropped_malformed: u64,
    /// Records with an unknown or cross-socket-spoofed sender.
    pub dropped_misaddressed: u64,
    /// Records for a non-resident destination.
    pub dropped_misrouted: u64,
    /// Outbound messages too large to encode.
    pub send_unencodable: u64,
    /// Reader wakeups, any reason.
    pub reader_wakeups: u64,
    /// Datagrams received (before validation).
    pub datagrams_received: u64,
    /// Datagrams sent.
    pub datagrams_sent: u64,
    /// Records sent.
    pub records_sent: u64,
}

impl PlaneStats {
    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> PlaneStatsSnapshot {
        PlaneStatsSnapshot {
            delivered: self.delivered.get(),
            dropped_oversized: self.dropped_oversized.get(),
            dropped_truncated: self.dropped_truncated.get(),
            dropped_malformed: self.dropped_malformed.get(),
            dropped_misaddressed: self.dropped_misaddressed.get(),
            dropped_misrouted: self.dropped_misrouted.get(),
            send_unencodable: self.send_unencodable.get(),
            reader_wakeups: self.reader_wakeups.get(),
            datagrams_received: self.datagrams_received.get(),
            datagrams_sent: self.datagrams_sent.get(),
            records_sent: self.records_sent.get(),
        }
    }

    /// Binds the live counters into `registry` under `<prefix>.<counter>`
    /// (e.g. `udp.plane.delivered`).
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        registry.bind_counter(&format!("{prefix}.delivered"), &self.delivered);
        registry.bind_counter(
            &format!("{prefix}.dropped_oversized"),
            &self.dropped_oversized,
        );
        registry.bind_counter(
            &format!("{prefix}.dropped_truncated"),
            &self.dropped_truncated,
        );
        registry.bind_counter(
            &format!("{prefix}.dropped_malformed"),
            &self.dropped_malformed,
        );
        registry.bind_counter(
            &format!("{prefix}.dropped_misaddressed"),
            &self.dropped_misaddressed,
        );
        registry.bind_counter(
            &format!("{prefix}.dropped_misrouted"),
            &self.dropped_misrouted,
        );
        registry.bind_counter(
            &format!("{prefix}.send_unencodable"),
            &self.send_unencodable,
        );
        registry.bind_counter(&format!("{prefix}.reader_wakeups"), &self.reader_wakeups);
        registry.bind_counter(
            &format!("{prefix}.datagrams_received"),
            &self.datagrams_received,
        );
        registry.bind_counter(&format!("{prefix}.datagrams_sent"), &self.datagrams_sent);
        registry.bind_counter(&format!("{prefix}.records_sent"), &self.records_sent);
    }
}

/// Where the demux reports refused traffic: a trace ring plus the clock
/// stamping the [`ProtoEvent::DatagramDropped`] events. Drops are
/// attributed to the record's destination node; drops with no parseable
/// destination (oversized datagrams, header-level truncation) are counted
/// in [`PlaneStats`] but not traced.
struct PlaneTrace {
    ring: TraceRing,
    clock: SharedClock,
}

impl PlaneTrace {
    fn dropped(&self, node: NodeId, reason: DropReason) {
        self.ring.push(
            node,
            self.clock.now(),
            ProtoEvent::DatagramDropped { reason },
        );
    }
}

/// Where records for one resident node currently go: the node's endpoint
/// pull channel (the default) or a sharded runtime's mailbox. `None` when
/// the node has no live endpoint (never created, or departed).
type ResidentSlot<M> = Mutex<Option<PlaneDelivery<M>>>;

enum PlaneDelivery<M> {
    Channel(Sender<Incoming<M>>),
    Shard(ShardDelivery<M>),
}

/// State shared by the plane handle, every endpoint, and (piecewise) the
/// reader threads. Dropping the last handle shuts the readers down.
struct PlaneShared<M> {
    sockets: Vec<UdpSocket>,
    /// node → index into `sockets` of the socket it lives behind.
    node_sockets: Arc<Vec<usize>>,
    /// node → the plane address of its socket (the address book used for
    /// sender validation and destination addressing).
    node_addrs: Arc<Vec<SocketAddr>>,
    residents: Arc<Vec<ResidentSlot<M>>>,
    /// Per-source-socket pending coalescing buffers, keyed by destination
    /// socket address.
    pending: Vec<Mutex<HashMap<SocketAddr, Vec<u8>>>>,
    stats: Arc<PlaneStats>,
    pool: BufferPool,
    stop: Arc<AtomicBool>,
    trace: Arc<Mutex<Option<PlaneTrace>>>,
    readers: Mutex<Vec<JoinHandle<()>>>,
}

impl<M> Drop for PlaneShared<M> {
    fn drop(&mut self) {
        // Every endpoint flushes its socket on drop, so the buffers are
        // normally empty by now — but if an endpoint leaked (mem::forget, a
        // panicking thread), its coalesced sends must still not be
        // stranded: the sockets are alive until the end of this drop.
        for socket_idx in 0..self.sockets.len() {
            self.flush_socket(socket_idx);
        }
        self.stop.store(true, Ordering::Relaxed);
        let mut woken_all = true;
        for socket in &self.sockets {
            // Same edge-triggered shutdown as the legacy endpoint: a
            // fallback timeout for readers not yet parked, a zero-byte
            // self-send for readers already inside `recv_from`.
            let _ = socket.set_read_timeout(Some(SHUTDOWN_FALLBACK_POLL));
            let woken = socket
                .local_addr()
                .and_then(|mut addr| {
                    if addr.ip().is_unspecified() {
                        match addr {
                            SocketAddr::V4(_) => addr.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                            SocketAddr::V6(_) => addr.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
                        }
                    }
                    socket.send_to(&[], addr)
                })
                .is_ok();
            woken_all &= woken;
        }
        if woken_all {
            for reader in self
                .readers
                .lock()
                .expect("plane readers poisoned")
                .drain(..)
            {
                let _ = reader.join();
            }
        }
        // If a wake could not be sent, a reader may be parked indefinitely;
        // leaking it (it exits on the next datagram or timeout tick) beats
        // hanging the dropping thread.
    }
}

/// A shared-socket UDP plane hosting `nodes` endpoints behind
/// `sockets` sockets, with one demultiplexing reader thread per socket —
/// the O(workers) replacement for the legacy one-thread-per-node
/// [`UdpEndpoint`](crate::UdpEndpoint) when one process hosts many nodes.
///
/// The handle is cheap to clone; the readers shut down when the last
/// handle **and** the last [`SharedUdpEndpoint`] drop.
///
/// ```
/// use sle_net::transport::MessageEndpoint;
/// use sle_sim::actor::NodeId;
/// use sle_udp::SharedUdpPlane;
/// use std::time::Duration;
///
/// // Four nodes behind two sockets: two reader threads total.
/// let plane = SharedUdpPlane::<u64>::bind_loopback(4, 2).unwrap();
/// let endpoints = plane.endpoints();
/// endpoints[0].send(NodeId(3), 42).unwrap();
/// let incoming = endpoints[3].recv_timeout(Duration::from_secs(5)).unwrap();
/// assert_eq!(incoming.from, NodeId(0));
/// assert_eq!(incoming.msg, 42);
/// ```
pub struct SharedUdpPlane<M> {
    shared: Arc<PlaneShared<M>>,
}

impl<M> Clone for SharedUdpPlane<M> {
    fn clone(&self) -> Self {
        SharedUdpPlane {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<M> std::fmt::Debug for SharedUdpPlane<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedUdpPlane")
            .field("nodes", &self.shared.node_sockets.len())
            .field("sockets", &self.shared.sockets.len())
            .finish_non_exhaustive()
    }
}

impl<M: WireFormat + Send + 'static> SharedUdpPlane<M> {
    /// Binds `sockets` sockets to ephemeral ports on `127.0.0.1` and
    /// assigns `nodes` node identities to them round-robin (node `i` →
    /// socket `i % sockets`) — the shared-socket equivalent of
    /// [`bind_loopback_mesh`](crate::bind_loopback_mesh). One reader
    /// thread is spawned per socket.
    ///
    /// # Errors
    ///
    /// Fails if any socket cannot be bound or cloned, or any reader thread
    /// cannot start.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `sockets` is zero, or `nodes` exceeds `u32`
    /// range (node identities are `u32`).
    pub fn bind_loopback(nodes: usize, sockets: usize) -> io::Result<Self> {
        assert!(nodes > 0, "a plane needs at least one node");
        assert!(sockets > 0, "a plane needs at least one socket");
        assert!(u32::try_from(nodes).is_ok(), "node identities are u32");
        let sockets: Vec<UdpSocket> = (0..sockets.min(nodes))
            .map(|_| UdpSocket::bind("127.0.0.1:0"))
            .collect::<io::Result<_>>()?;
        let socket_addrs: Vec<SocketAddr> = sockets
            .iter()
            .map(|s| s.local_addr())
            .collect::<io::Result<_>>()?;
        let node_sockets: Arc<Vec<usize>> =
            Arc::new((0..nodes).map(|i| i % sockets.len()).collect());
        let node_addrs: Arc<Vec<SocketAddr>> =
            Arc::new(node_sockets.iter().map(|&s| socket_addrs[s]).collect());
        let residents: Arc<Vec<ResidentSlot<M>>> =
            Arc::new((0..nodes).map(|_| Mutex::new(None)).collect());
        let stats = Arc::new(PlaneStats::default());
        // One buffer per reader covers the steady state exactly; a second
        // per reader absorbs restore/checkout races without falling back.
        let pool = BufferPool::new(sockets.len() * 2, MAX_PLANE_DATAGRAM + 1);
        let stop = Arc::new(AtomicBool::new(false));
        let trace: Arc<Mutex<Option<PlaneTrace>>> = Arc::new(Mutex::new(None));

        let mut readers = Vec::with_capacity(sockets.len());
        for (socket_idx, socket) in sockets.iter().enumerate() {
            let reader_socket = socket.try_clone()?;
            reader_socket.set_read_timeout(None)?;
            readers.push(
                std::thread::Builder::new()
                    .name(format!("sle-udp-plane-{socket_idx}"))
                    .spawn({
                        let stop = Arc::clone(&stop);
                        let stats = Arc::clone(&stats);
                        let pool = pool.clone();
                        let residents = Arc::clone(&residents);
                        let node_sockets = Arc::clone(&node_sockets);
                        let node_addrs = Arc::clone(&node_addrs);
                        let trace = Arc::clone(&trace);
                        move || {
                            demux_loop(
                                socket_idx,
                                reader_socket,
                                &stop,
                                &stats,
                                &pool,
                                &residents,
                                &node_sockets,
                                &node_addrs,
                                &trace,
                            )
                        }
                    })?,
            );
        }

        let pending = sockets.iter().map(|_| Mutex::new(HashMap::new())).collect();
        Ok(SharedUdpPlane {
            shared: Arc::new(PlaneShared {
                sockets,
                node_sockets,
                node_addrs,
                residents,
                pending,
                stats,
                pool,
                stop,
                trace,
                readers: Mutex::new(readers),
            }),
        })
    }

    /// Creates the endpoint of `node`, making it resident: the demux
    /// routes records addressed to it from now on.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the plane or already has a live
    /// endpoint. A node whose endpoint has been dropped can be re-created
    /// (mid-stream churn): records that arrived while it was away were
    /// counted as misrouted and dropped, exactly as a restarted daemon
    /// misses datagrams sent while it was down.
    pub fn endpoint(&self, node: NodeId) -> SharedUdpEndpoint<M> {
        let slot = self
            .shared
            .residents
            .get(node.index())
            .unwrap_or_else(|| panic!("node {node} is outside this plane"));
        let (tx, rx) = channel();
        {
            let mut slot = slot.lock().expect("plane resident poisoned");
            assert!(
                slot.is_none(),
                "node {node} already has a live endpoint on this plane"
            );
            *slot = Some(PlaneDelivery::Channel(tx));
        }
        SharedUdpEndpoint {
            node,
            plane: self.clone(),
            rx,
            coalesce: AtomicBool::new(false),
        }
    }

    /// Creates the endpoints of every node in the plane, in node order —
    /// ready for `Cluster::start_with_endpoints`.
    ///
    /// # Panics
    ///
    /// Panics if any node already has a live endpoint.
    pub fn endpoints(&self) -> Vec<SharedUdpEndpoint<M>> {
        (0..self.shared.node_sockets.len())
            .map(|i| self.endpoint(NodeId(i as u32)))
            .collect()
    }

    /// The number of nodes the plane hosts.
    pub fn node_count(&self) -> usize {
        self.shared.node_sockets.len()
    }

    /// The number of shared sockets (= demux reader threads).
    pub fn socket_count(&self) -> usize {
        self.shared.sockets.len()
    }

    /// The plane address of `node` — the local address of the shared
    /// socket it lives behind — if `node` is in the plane.
    pub fn node_addr(&self, node: NodeId) -> Option<SocketAddr> {
        self.shared.node_addrs.get(node.index()).copied()
    }

    /// A copy of the plane's datagram and record counters.
    pub fn stats(&self) -> PlaneStatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// A copy of the receive-buffer pool's occupancy counters.
    pub fn pool_stats(&self) -> PoolStatsSnapshot {
        self.shared.pool.stats()
    }

    /// Binds the plane's live counters into `registry`: [`PlaneStats`]
    /// under `<prefix>.<counter>` and the receive-buffer pool under
    /// `<prefix>.pool.<counter>`.
    pub fn bind(&self, registry: &Registry, prefix: &str) {
        self.shared.stats.bind(registry, prefix);
        self.shared.pool.bind(registry, &format!("{prefix}.pool"));
    }

    /// Reports refused records into `ring` as
    /// [`ProtoEvent::DatagramDropped`] events stamped by `clock`,
    /// attributed to the record's destination node. Drops with no
    /// parseable destination (oversized datagrams, header-level
    /// truncation) are counted but not traced.
    pub fn set_trace(&self, ring: TraceRing, clock: SharedClock) {
        *self.shared.trace.lock().expect("plane trace poisoned") = Some(PlaneTrace { ring, clock });
    }

    /// Flushes every pending coalescing buffer on every source socket.
    /// Endpoints flush their own socket's buffers via
    /// [`MessageEndpoint::flush_sends`]; this is the whole-plane variant
    /// for tests and shutdown paths.
    pub fn flush_all(&self) {
        for socket_idx in 0..self.shared.sockets.len() {
            self.shared.flush_socket(socket_idx);
        }
    }

    /// Total bytes currently sitting in pending coalescing buffers across
    /// every source socket — records accepted by a push-mode `send` but not
    /// yet written to any socket.
    ///
    /// A correctly driven plane returns to zero at every batch boundary
    /// (the runtime's `flush_sends`/[`SharedUdpPlane::flush_all`]); a
    /// non-zero value after the owning runtime has shut down means sends
    /// were stranded (asserted by `tests/transport_conformance.rs`).
    pub fn pending_backlog(&self) -> usize {
        self.shared
            .pending
            .iter()
            .map(|buffers| {
                buffers
                    .lock()
                    .expect("plane pending poisoned")
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }
}

impl<M> PlaneShared<M> {
    /// Sends and clears every pending buffer of source socket
    /// `socket_idx`.
    fn flush_socket(&self, socket_idx: usize) {
        let mut pending = self.pending[socket_idx]
            .lock()
            .expect("plane pending poisoned");
        if pending.is_empty() {
            return;
        }
        let socket = &self.sockets[socket_idx];
        for (dest, buf) in pending.drain() {
            // A taken-but-not-removed entry leaves an empty buffer behind;
            // there is nothing to send for it.
            if buf.is_empty() {
                continue;
            }
            // OS-level send failures are swallowed, like the legacy
            // endpoint: to the protocol they are network loss.
            let _ = socket.send_to(&buf, dest);
            self.stats.datagrams_sent.inc();
        }
    }
}

/// One node's endpoint on a [`SharedUdpPlane`]: the same
/// [`MessageEndpoint`] contract as [`UdpEndpoint`](crate::UdpEndpoint),
/// minus the dedicated socket and reader thread.
///
/// In pull mode every `send` writes through immediately. Installing a
/// delivery sink ([`MessageEndpoint::set_delivery_sink`]) switches the
/// endpoint to coalescing sends: records accrue in the plane's pending
/// buffers until the [`COALESCE_BUDGET`] would overflow or the owning
/// runtime calls [`MessageEndpoint::flush_sends`] at a batch boundary.
///
/// Dropping the endpoint makes the node non-resident: the demux counts
/// subsequent records for it as misrouted, as for a departed daemon.
pub struct SharedUdpEndpoint<M> {
    node: NodeId,
    plane: SharedUdpPlane<M>,
    rx: Receiver<Incoming<M>>,
    /// Whether sends accrue in the pending buffers (push mode, a runtime
    /// flushes at batch boundaries) or write through per send (pull mode).
    coalesce: AtomicBool,
}

impl<M> std::fmt::Debug for SharedUdpEndpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedUdpEndpoint")
            .field("node", &self.node)
            .finish_non_exhaustive()
    }
}

impl<M: WireFormat + Send + 'static> SharedUdpEndpoint<M> {
    /// The plane this endpoint lives on.
    pub fn plane(&self) -> &SharedUdpPlane<M> {
        &self.plane
    }
}

impl<M: WireFormat + Send + 'static> MessageEndpoint<M> for SharedUdpEndpoint<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    /// Encodes `msg` into a plane record bound for `to`'s shared socket,
    /// best effort (OS-level send failures are network loss to the
    /// protocol). In pull mode the record is put on the wire immediately;
    /// in push mode it coalesces with other pending records for the same
    /// destination socket until the budget fills or the runtime flushes.
    fn send(&self, to: NodeId, msg: M) -> Result<(), TransportError> {
        let shared = &self.plane.shared;
        let dest_addr = *shared
            .node_addrs
            .get(to.index())
            .ok_or(TransportError::UnknownDestination(to))?;
        let frame = encode_frame(self.node, &msg).map_err(|e| {
            shared.stats.send_unencodable.inc();
            if let Some(trace) = &*shared.trace.lock().expect("plane trace poisoned") {
                trace.dropped(self.node, DropReason::Unencodable);
            }
            TransportError::Unencodable(e.to_string())
        })?;
        let socket_idx = shared.node_sockets[self.node.index()];
        let record_len = RECORD_HEADER + frame.len();
        let flush_now = {
            let mut pending = shared.pending[socket_idx]
                .lock()
                .expect("plane pending poisoned");
            let buf = pending.entry(dest_addr).or_default();
            if !buf.is_empty() && buf.len() + record_len > COALESCE_BUDGET {
                // The record would not fit: flush what accrued so far and
                // start a fresh datagram with this record.
                let full = std::mem::take(buf);
                let _ = shared.sockets[socket_idx].send_to(&full, dest_addr);
                shared.stats.datagrams_sent.inc();
            }
            buf.extend_from_slice(&to.0.to_be_bytes());
            buf.extend_from_slice(&(frame.len() as u16).to_be_bytes());
            buf.extend_from_slice(&frame);
            shared.stats.records_sent.inc();
            if !self.coalesce.load(Ordering::Relaxed) || buf.len() >= COALESCE_BUDGET {
                // Taking (rather than removing) the buffer keeps its
                // allocation in the map for the next send to this socket.
                Some(std::mem::take(buf))
            } else {
                None
            }
        };
        if let Some(full) = flush_now {
            let _ = shared.sockets[socket_idx].send_to(&full, dest_addr);
            shared.stats.datagrams_sent.inc();
        }
        Ok(())
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        match self.rx.recv_timeout(timeout) {
            Ok(incoming) => Some(incoming),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    fn try_recv(&self) -> Option<Incoming<M>> {
        self.rx.try_recv().ok()
    }

    fn set_delivery_sink(&self, sink: ShardDelivery<M>) -> bool {
        {
            let slot = &self.plane.shared.residents[self.node.index()];
            let mut slot = slot.lock().expect("plane resident poisoned");
            *slot = Some(PlaneDelivery::Shard(sink.clone()));
        }
        // Records decoded before the switch must not be stranded in the
        // pull channel.
        while let Ok(incoming) = self.rx.try_recv() {
            sink.push((self.node, incoming));
        }
        // The owning runtime flushes at batch boundaries from now on, so
        // sends may coalesce.
        self.coalesce.store(true, Ordering::Relaxed);
        true
    }

    fn flush_sends(&self) {
        let socket_idx = self.plane.shared.node_sockets[self.node.index()];
        self.plane.shared.flush_socket(socket_idx);
    }
}

impl<M> Drop for SharedUdpEndpoint<M> {
    fn drop(&mut self) {
        // Departing must not strand coalesced sends of co-socketed
        // residents (or our own final messages).
        let socket_idx = self.plane.shared.node_sockets[self.node.index()];
        self.plane.shared.flush_socket(socket_idx);
        let slot = &self.plane.shared.residents[self.node.index()];
        *slot.lock().expect("plane resident poisoned") = None;
    }
}

/// The per-socket demultiplexer: receives datagrams into pooled buffers,
/// walks the records, validates each, and routes to the resident
/// destination. See the module docs for the refusal rules.
#[allow(clippy::too_many_arguments)]
fn demux_loop<M: WireFormat>(
    socket_idx: usize,
    socket: UdpSocket,
    stop: &AtomicBool,
    stats: &PlaneStats,
    pool: &BufferPool,
    residents: &[ResidentSlot<M>],
    node_sockets: &[usize],
    node_addrs: &[SocketAddr],
    trace: &Mutex<Option<PlaneTrace>>,
) {
    let trace_dropped = |node: NodeId, reason: DropReason| {
        if let Some(trace) = &*trace.lock().expect("plane trace poisoned") {
            trace.dropped(node, reason);
        }
    };
    while !stop.load(Ordering::Relaxed) {
        // Checked out per datagram and restored on scope exit: the pool's
        // occupancy gauge is an exact count of in-flight receives.
        let mut buf = pool.checkout();
        let received = socket.recv_from(&mut buf);
        stats.reader_wakeups.inc();
        let (len, src) = match received {
            Ok(received) => received,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            // Transient errors (e.g. ECONNREFUSED bounced back by a dead
            // peer's ICMP on Linux) must not kill the demux.
            Err(_) => continue,
        };
        if len == 0 {
            // The shutdown wake-up (or noise): re-check the stop flag.
            continue;
        }
        stats.datagrams_received.inc();
        if len > MAX_PLANE_DATAGRAM {
            // The buffer is one byte larger than the maximum, so an
            // over-limit read is detectable even when the OS truncates.
            stats.dropped_oversized.inc();
            continue;
        }
        let datagram = &buf[..len];
        let mut off = 0;
        while off < len {
            if len - off < RECORD_HEADER {
                // Not even a record header left: framing truncation with
                // no destination to attribute it to.
                stats.dropped_truncated.inc();
                break;
            }
            let dest = NodeId(u32::from_be_bytes(
                datagram[off..off + 4].try_into().expect("4-byte slice"),
            ));
            let frame_len = u16::from_be_bytes(
                datagram[off + 4..off + RECORD_HEADER]
                    .try_into()
                    .expect("2-byte slice"),
            ) as usize;
            let start = off + RECORD_HEADER;
            if frame_len > len - start {
                // The record claims more bytes than the datagram holds.
                // Nothing after this point can be trusted: abandon the
                // rest of the datagram.
                stats.dropped_truncated.inc();
                trace_dropped(dest, DropReason::Truncated);
                break;
            }
            let frame = &datagram[start..start + frame_len];
            off = start + frame_len;
            // Framing is intact from here on: an invalid record is
            // skipped and the walk continues with the next one.
            let (from, msg) = match decode_frame::<M>(frame) {
                Ok(decoded) => decoded,
                Err(_) => {
                    stats.dropped_malformed.inc();
                    trace_dropped(dest, DropReason::Malformed);
                    continue;
                }
            };
            // The claimed sender must be in the plane *and* the datagram
            // must come from the sender's own shared socket. Co-socketed
            // residents are indistinguishable here — see the module docs
            // for this trust boundary.
            if node_addrs.get(from.index()) != Some(&src) {
                stats.dropped_misaddressed.inc();
                trace_dropped(dest, DropReason::Misaddressed);
                continue;
            }
            // The destination must live behind *this* socket and have a
            // live endpoint.
            if node_sockets.get(dest.index()) != Some(&socket_idx) {
                stats.dropped_misrouted.inc();
                trace_dropped(dest, DropReason::Misrouted);
                continue;
            }
            let incoming = Incoming { from, msg };
            let slot = residents[dest.index()]
                .lock()
                .expect("plane resident poisoned");
            match &*slot {
                Some(PlaneDelivery::Channel(tx)) => {
                    if tx.send(incoming).is_ok() {
                        stats.delivered.inc();
                    } else {
                        // The endpoint is mid-drop (receiver already gone,
                        // slot not yet cleared): the node is departing.
                        stats.dropped_misrouted.inc();
                        trace_dropped(dest, DropReason::Misrouted);
                    }
                }
                Some(PlaneDelivery::Shard(sink)) => {
                    sink.push((dest, incoming));
                    stats.delivered.inc();
                }
                None => {
                    stats.dropped_misrouted.inc();
                    trace_dropped(dest, DropReason::Misrouted);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_across_shared_sockets() {
        let plane = SharedUdpPlane::<u64>::bind_loopback(5, 2).unwrap();
        assert_eq!(plane.node_count(), 5);
        assert_eq!(plane.socket_count(), 2);
        let endpoints = plane.endpoints();
        // 0 and 2 share socket 0; 1 and 3 share socket 1; 4 is on 0.
        assert_eq!(plane.node_addr(NodeId(0)), plane.node_addr(NodeId(2)));
        assert_ne!(plane.node_addr(NodeId(0)), plane.node_addr(NodeId(1)));
        endpoints[0].send(NodeId(3), 30).unwrap();
        endpoints[1].send(NodeId(3), 31).unwrap();
        endpoints[3].send(NodeId(0), 3).unwrap();
        endpoints[4].send(NodeId(4), 44).unwrap();
        let mut got = Vec::new();
        for _ in 0..2 {
            let incoming = endpoints[3].recv_timeout(Duration::from_secs(5)).unwrap();
            got.push((incoming.from, incoming.msg));
        }
        got.sort();
        assert_eq!(got, vec![(NodeId(0), 30), (NodeId(1), 31)]);
        let incoming = endpoints[0].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((incoming.from, incoming.msg), (NodeId(3), 3));
        let incoming = endpoints[4].recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!((incoming.from, incoming.msg), (NodeId(4), 44));
        // The reader counts a delivery just *after* handing it to the
        // channel, so the counter can trail a successful recv briefly.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while plane.stats().delivered != 4 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(plane.stats().delivered, 4);
    }

    #[test]
    fn sockets_never_exceed_the_requested_count() {
        let plane = SharedUdpPlane::<u64>::bind_loopback(3, 8).unwrap();
        // More sockets than nodes would leave readers with no residents.
        assert_eq!(plane.socket_count(), 3);
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let plane = SharedUdpPlane::<u64>::bind_loopback(1, 1).unwrap();
        let endpoint = plane.endpoint(NodeId(0));
        assert_eq!(
            endpoint.send(NodeId(9), 1),
            Err(TransportError::UnknownDestination(NodeId(9)))
        );
    }

    #[test]
    fn push_mode_coalesces_until_flushed() {
        use sle_net::mailbox::Mailbox;
        use std::time::Instant;

        let plane = SharedUdpPlane::<u64>::bind_loopback(4, 2).unwrap();
        let endpoints = plane.endpoints();
        // Receiver 1 in push mode so we can observe sink delivery; senders
        // 0 and 2 (co-socketed) in push mode so their sends coalesce.
        let mailbox: Mailbox<(NodeId, Incoming<u64>)> = Mailbox::new();
        assert!(endpoints[1].set_delivery_sink(mailbox.sender()));
        let sender_box: Mailbox<(NodeId, Incoming<u64>)> = Mailbox::new();
        assert!(endpoints[0].set_delivery_sink(sender_box.sender()));
        assert!(endpoints[2].set_delivery_sink(sender_box.sender()));

        endpoints[0].send(NodeId(1), 10).unwrap();
        endpoints[2].send(NodeId(1), 20).unwrap();
        assert_eq!(plane.stats().datagrams_sent, 0, "coalescing, not sending");
        assert_eq!(plane.stats().records_sent, 2);
        endpoints[0].flush_sends();
        assert_eq!(plane.stats().datagrams_sent, 1, "both records share one");

        let mut buf = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(5);
        while buf.len() < 2 && Instant::now() < deadline {
            mailbox.wait_until(Some(Instant::now() + Duration::from_millis(50)), &mut buf);
        }
        let mut got: Vec<_> = buf
            .into_iter()
            .map(|(node, incoming)| (node, incoming.from, incoming.msg))
            .collect();
        got.sort();
        assert_eq!(
            got,
            vec![(NodeId(1), NodeId(0), 10), (NodeId(1), NodeId(2), 20)]
        );
    }

    #[test]
    fn departed_nodes_records_are_misrouted() {
        let plane = SharedUdpPlane::<u64>::bind_loopback(2, 1).unwrap();
        let a = plane.endpoint(NodeId(0));
        let b = plane.endpoint(NodeId(1));
        a.send(NodeId(1), 1).unwrap();
        assert!(b.recv_timeout(Duration::from_secs(5)).is_some());
        drop(b);
        a.send(NodeId(1), 2).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while plane.stats().dropped_misrouted == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(plane.stats().dropped_misrouted, 1);
        // Churn: the node can come back and receive again.
        let b = plane.endpoint(NodeId(1));
        a.send(NodeId(1), 3).unwrap();
        let incoming = b.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(incoming.msg, 3);
    }

    #[test]
    fn drop_joins_the_readers_promptly() {
        let plane = SharedUdpPlane::<u64>::bind_loopback(8, 4).unwrap();
        let endpoints = plane.endpoints();
        let start = std::time::Instant::now();
        drop(endpoints);
        drop(plane);
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "plane shutdown took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn idle_plane_does_not_wake() {
        let plane = SharedUdpPlane::<u64>::bind_loopback(4, 2).unwrap();
        let _endpoints = plane.endpoints();
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(plane.stats().reader_wakeups, 0);
    }
}
