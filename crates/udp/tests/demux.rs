//! SimRng-driven property/fuzz suite for the shared-socket demultiplexer.
//!
//! The demux sits on the trust boundary of the daemon: whatever arrives on
//! a shared socket — interleaved legitimate traffic from many peers,
//! spoofed or unknown sources, truncated `AliveBatch` fragments, records
//! for nodes that departed mid-stream — must route each record to exactly
//! the addressed resident or refuse it under exactly one counted reason.
//! Every test here asserts **zero cross-node delivery leakage** (a record
//! never surfaces at any endpoint but the addressed one) and **byte-exact
//! per-reason drop counters** (the full [`PlaneStatsSnapshot`] is compared
//! against a hand-computed expectation, so an uncounted or double-counted
//! drop fails, not just a missing one).

use std::collections::BTreeMap;
use std::net::UdpSocket;
use std::time::{Duration, Instant};

use sle_core::messages::{GroupAlive, ServiceMessage};
use sle_core::process::{GroupId, ProcessId};
use sle_election::{AlivePayload, LeaderClaim};
use sle_net::transport::MessageEndpoint;
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::NodeId;
use sle_udp::{
    PlaneStatsSnapshot, SharedUdpEndpoint, SharedUdpPlane, MAX_PLANE_DATAGRAM, RECORD_HEADER,
};
use sle_wire::encode_frame;

/// Spins until `predicate` holds or five seconds pass; the demux runs on
/// its own reader threads, so every expectation needs a settle.
fn await_settled(mut predicate: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !predicate() {
        assert!(Instant::now() < deadline, "demux did not settle in 5s");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Builds one plane record: `dest u32 BE | frame_len u16 BE | frame`.
fn record(dest: u32, frame: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(RECORD_HEADER + frame.len());
    rec.extend_from_slice(&dest.to_be_bytes());
    rec.extend_from_slice(&(frame.len() as u16).to_be_bytes());
    rec.extend_from_slice(frame);
    rec
}

#[test]
fn interleaved_traffic_from_many_peers_never_leaks_across_nodes() {
    const NODES: usize = 12;
    const SOCKETS: usize = 3;
    const SENDS: usize = 400;

    let mut rng = SimRng::seed_from(0xD311);
    let plane = SharedUdpPlane::<u64>::bind_loopback(NODES, SOCKETS).unwrap();
    let endpoints = plane.endpoints();

    // Random interleaving of senders and destinations; the payload encodes
    // (sequence, destination) so a leaked delivery identifies itself.
    let mut expected: BTreeMap<usize, Vec<(NodeId, u64)>> = BTreeMap::new();
    for seq in 0..SENDS as u64 {
        let from = rng.uniform_usize(NODES);
        let to = rng.uniform_usize(NODES);
        let payload = (seq << 8) | to as u64;
        endpoints[from].send(NodeId(to as u32), payload).unwrap();
        expected
            .entry(to)
            .or_default()
            .push((NodeId(from as u32), payload));
    }

    await_settled(|| plane.stats().delivered == SENDS as u64);

    for (node, endpoint) in endpoints.iter().enumerate() {
        let mut got = Vec::new();
        while let Some(incoming) = endpoint.try_recv() {
            // Zero leakage: the payload's embedded destination must be the
            // node that received it.
            assert_eq!(
                (incoming.msg & 0xFF) as usize,
                node,
                "record for node {} surfaced at node {node}",
                incoming.msg & 0xFF
            );
            got.push((incoming.from, incoming.msg));
        }
        let mut want = expected.remove(&node).unwrap_or_default();
        want.sort();
        got.sort();
        assert_eq!(got, want, "node {node} delivery set mismatch");
    }

    // Byte-exact counters: every send delivered, nothing refused.
    let stats = plane.stats();
    assert_eq!(
        stats,
        PlaneStatsSnapshot {
            delivered: SENDS as u64,
            datagrams_received: stats.datagrams_received,
            datagrams_sent: stats.datagrams_sent,
            records_sent: SENDS as u64,
            reader_wakeups: stats.reader_wakeups,
            ..PlaneStatsSnapshot::default()
        }
    );
    // Pull mode writes through: one datagram per record, none refused.
    assert_eq!(stats.datagrams_sent, SENDS as u64);
    assert_eq!(stats.datagrams_received, SENDS as u64);
}

#[test]
fn spoofed_and_unknown_sources_are_refused_byte_exactly() {
    let plane = SharedUdpPlane::<u64>::bind_loopback(4, 2).unwrap();
    let endpoints = plane.endpoints();
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    // Socket 0 hosts nodes 0 and 2.
    let target = plane.node_addr(NodeId(0)).unwrap();

    // A well-formed record claiming an in-plane sender, but from the
    // attacker's socket: refused as misaddressed (cross-socket spoof).
    let spoof = record(0, &encode_frame(NodeId(1), &7u64).unwrap());
    attacker.send_to(&spoof, target).unwrap();
    // A well-formed record claiming a sender outside the plane entirely.
    let unknown = record(0, &encode_frame(NodeId(99), &7u64).unwrap());
    attacker.send_to(&unknown, target).unwrap();
    // A record whose frame bytes the sle-wire codec rejects.
    let garbage = record(0, b"definitely not a frame");
    attacker.send_to(&garbage, target).unwrap();
    // A datagram larger than any the plane ever emits, dropped unparsed.
    attacker
        .send_to(&vec![0u8; MAX_PLANE_DATAGRAM + 64], target)
        .unwrap();

    await_settled(|| plane.stats().datagrams_received == 4);
    await_settled(|| {
        let s = plane.stats();
        s.dropped_misaddressed + s.dropped_malformed + s.dropped_oversized == 4
    });

    // Nothing surfaced anywhere...
    for endpoint in &endpoints {
        assert!(endpoint.try_recv().is_none());
    }
    // ...and the whole snapshot matches, reason by reason.
    let stats = plane.stats();
    assert_eq!(
        stats,
        PlaneStatsSnapshot {
            dropped_misaddressed: 2,
            dropped_malformed: 1,
            dropped_oversized: 1,
            datagrams_received: 4,
            reader_wakeups: stats.reader_wakeups,
            ..PlaneStatsSnapshot::default()
        }
    );
}

#[test]
fn truncation_aborts_the_datagram_but_earlier_records_survive() {
    let plane = SharedUdpPlane::<u64>::bind_loopback(2, 1).unwrap();
    let endpoints = plane.endpoints();
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    let target = plane.node_addr(NodeId(0)).unwrap();

    // One datagram: [valid-framing record from the attacker (misaddressed,
    // walk continues)] [record claiming more bytes than the datagram holds
    // (truncated, counted once, walk ends)]. Records before the truncation
    // point are judged normally; the truncated tail never reaches the
    // codec.
    let mut datagram = record(0, &encode_frame(NodeId(1), &1u64).unwrap());
    let mut lying = record(0, &encode_frame(NodeId(1), &2u64).unwrap());
    let cut = lying.len() - 4;
    lying.truncate(cut);
    datagram.extend_from_slice(&lying);
    attacker.send_to(&datagram, target).unwrap();

    // A datagram that ends inside a record *header* (< 6 bytes remain).
    attacker.send_to(&[0, 0, 0, 1, 0], target).unwrap();

    await_settled(|| {
        let s = plane.stats();
        s.dropped_truncated == 2 && s.dropped_misaddressed == 1
    });
    for endpoint in &endpoints {
        assert!(endpoint.try_recv().is_none());
    }
    let stats = plane.stats();
    assert_eq!(
        stats,
        PlaneStatsSnapshot {
            dropped_truncated: 2,
            dropped_misaddressed: 1,
            // The truncated tails are *not* additionally counted
            // malformed: they were abandoned before reaching the codec.
            dropped_malformed: 0,
            datagrams_received: 2,
            reader_wakeups: stats.reader_wakeups,
            ..PlaneStatsSnapshot::default()
        }
    );
}

#[test]
fn truncated_alive_batch_fragments_never_surface() {
    // The hostile variant of the protocol's real workload: a legitimate
    // AliveBatch frame cut mid-entry, at every prefix length a lossy or
    // malicious path could produce.
    let batch = ServiceMessage::AliveBatch {
        incarnation: 3,
        seq: 17,
        sent_at: SimInstant::from_nanos(1_000_000),
        alives: (1..=4)
            .map(|g| GroupAlive {
                group: GroupId(g),
                sending_interval: SimDuration::from_millis(250),
                requested_interval: SimDuration::from_millis(250),
                payload: AlivePayload {
                    accusation_time: SimInstant::ZERO,
                    epoch: 2,
                    local_leader: Some(LeaderClaim {
                        node: NodeId(1),
                        accusation_time: SimInstant::ZERO,
                    }),
                },
                representative: ProcessId::new(NodeId(1), 0),
            })
            .collect(),
    };
    let frame = encode_frame(NodeId(1), &batch).unwrap();

    let plane = SharedUdpPlane::<ServiceMessage>::bind_loopback(2, 1).unwrap();
    let endpoints = plane.endpoints();
    let attacker = UdpSocket::bind("127.0.0.1:0").unwrap();
    let target = plane.node_addr(NodeId(0)).unwrap();

    let mut rng = SimRng::seed_from(0xA11E);
    const FRAGMENTS: usize = 64;
    for _ in 0..FRAGMENTS {
        // An honestly-framed fragment: the record's length field matches
        // the bytes present, but the frame inside is cut short, so the
        // codec must reject it (malformed), never panic or deliver.
        let cut = 1 + rng.uniform_usize(frame.len() - 1);
        attacker.send_to(&record(0, &frame[..cut]), target).unwrap();
    }
    // The intact frame from the attacker's socket still fails the sender
    // check — truncation is not the only reason hostile batches die.
    attacker.send_to(&record(0, &frame), target).unwrap();

    await_settled(|| {
        let s = plane.stats();
        s.dropped_malformed == FRAGMENTS as u64 && s.dropped_misaddressed == 1
    });
    for endpoint in &endpoints {
        assert!(endpoint.try_recv().is_none());
    }
    let stats = plane.stats();
    assert_eq!(
        stats,
        PlaneStatsSnapshot {
            dropped_malformed: FRAGMENTS as u64,
            dropped_misaddressed: 1,
            datagrams_received: FRAGMENTS as u64 + 1,
            reader_wakeups: stats.reader_wakeups,
            ..PlaneStatsSnapshot::default()
        }
    );
}

#[test]
fn mid_stream_churn_routes_or_refuses_every_record_exactly_once() {
    const NODES: usize = 8;
    const SOCKETS: usize = 2;
    const STEPS: usize = 200;

    let mut rng = SimRng::seed_from(0xC4);
    let plane = SharedUdpPlane::<u64>::bind_loopback(NODES, SOCKETS).unwrap();
    // Node 0 is the ever-present sender; nodes 1.. churn in and out.
    let mut endpoints: Vec<Option<SharedUdpEndpoint<u64>>> =
        plane.endpoints().into_iter().map(Some).collect();

    let mut expect_delivered = 0u64;
    let mut expect_misrouted = 0u64;
    for step in 0..STEPS as u64 {
        let target = 1 + rng.uniform_usize(NODES - 1);
        // Maybe churn the target first: depart if resident, return if not.
        if rng.bernoulli(0.3) {
            match endpoints[target].take() {
                Some(endpoint) => drop(endpoint),
                None => endpoints[target] = Some(plane.endpoint(NodeId(target as u32))),
            }
        }
        let payload = (step << 8) | target as u64;
        endpoints[0]
            .as_ref()
            .unwrap()
            .send(NodeId(target as u32), payload)
            .unwrap();
        if endpoints[target].is_some() {
            expect_delivered += 1;
        } else {
            expect_misrouted += 1;
        }
        // Settle before the next churn decision: an in-flight record must
        // be judged against the residency it was sent under.
        let want = (expect_delivered, expect_misrouted);
        await_settled(|| {
            let s = plane.stats();
            (s.delivered, s.dropped_misrouted) == want
        });
    }

    // Zero leakage under churn: every surfaced record names its receiver.
    for (node, endpoint) in endpoints.iter().enumerate() {
        let Some(endpoint) = endpoint else { continue };
        while let Some(incoming) = endpoint.try_recv() {
            assert_eq!(incoming.from, NodeId(0));
            assert_eq!((incoming.msg & 0xFF) as usize, node);
        }
    }
    let stats = plane.stats();
    assert_eq!(
        stats,
        PlaneStatsSnapshot {
            delivered: expect_delivered,
            dropped_misrouted: expect_misrouted,
            records_sent: STEPS as u64,
            datagrams_sent: STEPS as u64,
            datagrams_received: STEPS as u64,
            reader_wakeups: stats.reader_wakeups,
            ..PlaneStatsSnapshot::default()
        }
    );
    assert_eq!(expect_delivered + expect_misrouted, STEPS as u64);
}
