//! SimRng-driven property tests for the receive-buffer pool: exact
//! occupancy under concurrent schedules, zero steady-state allocation
//! after warm-up, and counted (never blocking) exhaustion fallback.

use std::time::{Duration, Instant};

use sle_sim::rng::SimRng;
use sle_udp::{BufferPool, PooledBuf};

#[test]
fn concurrent_checkout_restore_never_exceeds_capacity() {
    const CAPACITY: usize = 6;
    const THREADS: usize = 4;
    const STEPS: usize = 2_000;

    let pool = BufferPool::new(CAPACITY, 256);
    let mut rng = SimRng::seed_from(0x9001);
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let pool = pool.clone();
            let mut rng = rng.fork(t as u64);
            std::thread::spawn(move || {
                let mut held: Vec<PooledBuf> = Vec::new();
                for _ in 0..STEPS {
                    // A random schedule of holds and releases, biased so
                    // the threads together regularly saturate the pool.
                    if held.is_empty() || rng.bernoulli(0.55) {
                        held.push(pool.checkout());
                    } else {
                        held.swap_remove(rng.uniform_usize(held.len()));
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("pool worker panicked");
    }

    let stats = pool.stats();
    // Exact occupancy: pooled buffers outstanding never exceeded the
    // capacity, whatever the interleaving, and all are back.
    assert!(
        stats.peak_in_use as usize <= CAPACITY,
        "peak occupancy {} exceeded capacity {CAPACITY}",
        stats.peak_in_use
    );
    assert_eq!(stats.in_use, 0);
    // Conservation: every checkout either restored to the free list
    // (pooled) or was a counted fallback.
    assert_eq!(stats.checkouts, stats.restores + stats.exhausted);
    // The pooled set itself was allocated at most once per slot.
    assert_eq!(stats.allocations, CAPACITY as u64 + stats.exhausted);
}

#[test]
fn steady_state_allocates_nothing_after_warmup() {
    const CAPACITY: usize = 8;
    let pool = BufferPool::new(CAPACITY, 128);
    let mut rng = SimRng::seed_from(0x5EED);

    // Warm up: touch every slot once.
    let warm: Vec<PooledBuf> = (0..CAPACITY).map(|_| pool.checkout()).collect();
    drop(warm);
    assert_eq!(pool.stats().allocations, CAPACITY as u64);

    // Steady state: any schedule holding at most `capacity` buffers.
    let mut held: Vec<PooledBuf> = Vec::new();
    for _ in 0..5_000 {
        if held.len() < CAPACITY && (held.is_empty() || rng.bernoulli(0.5)) {
            held.push(pool.checkout());
        } else {
            held.swap_remove(rng.uniform_usize(held.len()));
        }
    }
    drop(held);

    let stats = pool.stats();
    assert_eq!(
        stats.allocations,
        CAPACITY as u64,
        "steady state allocated {} fresh buffers",
        stats.allocations - CAPACITY as u64
    );
    assert_eq!(stats.exhausted, 0);
    assert_eq!(stats.in_use, 0);
}

#[test]
fn exhaustion_falls_back_counted_instead_of_blocking() {
    const CAPACITY: usize = 4;
    const OVERDRAW: usize = 3;
    let pool = BufferPool::new(CAPACITY, 64);

    // Overdraw the pool on one thread: if exhaustion blocked, this test
    // would deadlock; the elapsed bound catches a hidden wait, too.
    let start = Instant::now();
    let held: Vec<PooledBuf> = (0..CAPACITY + OVERDRAW).map(|_| pool.checkout()).collect();
    assert!(
        start.elapsed() < Duration::from_millis(200),
        "overdrawn checkout took {:?}",
        start.elapsed()
    );

    assert_eq!(held.iter().filter(|b| b.is_pooled()).count(), CAPACITY);
    let stats = pool.stats();
    assert_eq!(stats.exhausted, OVERDRAW as u64);
    assert_eq!(stats.in_use, CAPACITY as i64, "fallbacks are not occupancy");
    assert_eq!(stats.peak_in_use, CAPACITY as i64);

    // Fallback buffers are freed on restore, not retained: the pool ends
    // balanced and the next checkout reuses a pooled slot.
    drop(held);
    let stats = pool.stats();
    assert_eq!(stats.in_use, 0);
    assert_eq!(stats.restores, CAPACITY as u64);
    assert!(pool.checkout().is_pooled());
    assert_eq!(pool.stats().allocations, (CAPACITY + OVERDRAW) as u64);
}
