//! # sle-net — network substrate for the stable leader-election service
//!
//! The DSN 2008 evaluation runs the leader-election service over networks
//! whose behaviour is controlled precisely: lossy links characterised by a
//! `(mean delay, loss probability)` pair, and crash-prone links that
//! periodically disconnect a receiver from a sender for seconds at a time.
//! This crate models those networks for the discrete-event simulator
//! (implementing [`sle_sim::Medium`]) and provides an in-process real-time
//! transport for running the service as a normal library.
//!
//! * [`link`] — per-link behaviour: [`link::LinkSpec`] (lossy links) and
//!   [`link::LinkCrashSpec`]/[`link::LinkOutageState`] (crash-prone links),
//! * [`network`] — whole-network models ([`network::NetworkModel`] /
//!   [`network::SimulatedNetwork`]) with per-link overrides and statistics,
//! * [`drift`] — networks whose behaviour shifts between regimes mid-run
//!   ([`drift::DriftSchedule`] / [`drift::DriftingNetwork`]), the workload of
//!   the adaptive-tuning evaluation,
//! * [`transport`] — the [`transport::MessageEndpoint`] abstraction the
//!   real-time runtime is generic over, and the in-memory mesh
//!   implementation of it (the UDP implementation lives in `sle-udp`),
//! * [`mailbox`] — the condvar-parked shard mailbox through which push-mode
//!   transports deliver straight to a sharded runtime's workers
//!   ([`transport::MessageEndpoint::set_delivery_sink`]).
//!
//! ## Example: the paper's harshest lossy network
//!
//! ```
//! use sle_net::link::LinkSpec;
//! use sle_net::network::NetworkModel;
//! use sle_sim::prelude::*;
//!
//! let mut net = NetworkModel::new(LinkSpec::from_paper_tuple(100.0, 0.1)).build(7);
//! let mut rng = SimRng::seed_from(1);
//! // ~90% of messages are delivered with an exponential 100 ms mean delay.
//! let verdict = net.transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 64, &mut rng);
//! let _ = verdict;
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod drift;
pub mod link;
pub mod mailbox;
pub mod network;
pub mod transport;

pub use drift::{DriftSchedule, DriftingNetwork};
pub use link::{LinkCrashSpec, LinkOutageState, LinkSpec};
pub use mailbox::{Mailbox, MailboxSender};
pub use network::{NetworkModel, NetworkStats, SimulatedNetwork};
pub use transport::{
    Endpoint, InMemoryMesh, Incoming, MessageEndpoint, ShardDelivery, TransportError,
};
