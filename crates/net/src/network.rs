//! Whole-network models implementing the simulator's [`Medium`] interface.
//!
//! A [`NetworkModel`] describes the full mesh of `n(n-1)` directed links of a
//! group (paper Section 6.1): a default [`LinkSpec`] for every link,
//! optional per-link overrides, and an optional crash-prone overlay in which
//! each directed link independently alternates between up and down periods.

use std::collections::HashMap;

use sle_sim::actor::NodeId;
use sle_sim::medium::{Fate, Medium, Verdict};
use sle_sim::rng::SimRng;
use sle_sim::time::SimInstant;

use crate::link::{LinkCrashSpec, LinkOutageState, LinkSpec};

/// Builder-style description of the network connecting a set of nodes.
///
/// ```
/// use sle_net::network::NetworkModel;
/// use sle_net::link::{LinkCrashSpec, LinkSpec};
/// use sle_sim::time::SimDuration;
///
/// // 12 workstations, every link loses 1 message in 10 and has a 100 ms
/// // average delay, and every link crashes for ~3 s every ~60 s.
/// let model = NetworkModel::new(LinkSpec::from_paper_tuple(100.0, 0.1))
///     .with_link_crashes(LinkCrashSpec::from_paper_uptime_secs(60));
/// assert!(model.crash_spec().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    default_link: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    crash_spec: Option<LinkCrashSpec>,
    /// Links that are administratively severed for the whole run (useful for
    /// partition experiments and tests).
    severed: HashMap<(NodeId, NodeId), bool>,
}

impl NetworkModel {
    /// A network in which every directed link follows `default_link`.
    pub fn new(default_link: LinkSpec) -> Self {
        NetworkModel {
            default_link,
            overrides: HashMap::new(),
            crash_spec: None,
            severed: HashMap::new(),
        }
    }

    /// A network with perfect links; useful in tests.
    pub fn perfect() -> Self {
        NetworkModel::new(LinkSpec::perfect())
    }

    /// The authors' real LAN (0.025 ms delay, no losses).
    pub fn lan() -> Self {
        NetworkModel::new(LinkSpec::lan())
    }

    /// Overrides the behaviour of the directed link `from -> to`.
    pub fn with_link(mut self, from: NodeId, to: NodeId, spec: LinkSpec) -> Self {
        self.overrides.insert((from, to), spec);
        self
    }

    /// Makes every directed link crash-prone with the given up/down times.
    pub fn with_link_crashes(mut self, spec: LinkCrashSpec) -> Self {
        self.crash_spec = Some(spec);
        self
    }

    /// Permanently severs the directed link `from -> to` (all messages lost).
    pub fn with_severed_link(mut self, from: NodeId, to: NodeId) -> Self {
        self.severed.insert((from, to), true);
        self
    }

    /// The default behaviour of links without an override.
    pub fn default_link(&self) -> LinkSpec {
        self.default_link
    }

    /// The behaviour of the directed link `from -> to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkSpec {
        self.overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// The crash-prone overlay, if configured.
    pub fn crash_spec(&self) -> Option<LinkCrashSpec> {
        self.crash_spec
    }

    /// Returns whether the directed link `from -> to` is permanently severed.
    pub fn is_severed(&self, from: NodeId, to: NodeId) -> bool {
        self.severed.get(&(from, to)).copied().unwrap_or(false)
    }

    /// The minimum delay any delivered message can experience on any link:
    /// the smallest [`LinkSpec::min_delay`] across the default link and all
    /// per-link overrides. This is the conservative lookahead bound the
    /// parallel simulation driver queries through
    /// [`Medium::min_delay`].
    pub fn min_delay(&self) -> sle_sim::time::SimDuration {
        self.overrides
            .values()
            .map(LinkSpec::min_delay)
            .fold(self.default_link.min_delay(), |acc, d| acc.min(d))
    }

    /// Instantiates the runtime state for this model, ready to be handed to a
    /// [`World`](sle_sim::world::World). `seed` controls the per-link outage
    /// processes and is independent from the world's message-level seed.
    pub fn build(self, seed: u64) -> SimulatedNetwork {
        SimulatedNetwork {
            model: self,
            outages: HashMap::new(),
            outage_seed: seed,
            stats: NetworkStats::default(),
            partition: None,
        }
    }
}

impl Default for NetworkModel {
    fn default() -> Self {
        NetworkModel::perfect()
    }
}

/// Aggregate counters maintained by [`SimulatedNetwork`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages offered to the network.
    pub offered: u64,
    /// Messages dropped because of random loss.
    pub lost: u64,
    /// Messages dropped because the link was crashed or severed.
    pub blocked: u64,
    /// Messages dropped because an active partition separated the endpoints.
    pub partitioned: u64,
    /// Messages accepted for delivery.
    pub delivered: u64,
    /// Messages the network duplicated (a second copy of an accepted
    /// message; not included in `delivered`).
    pub duplicated: u64,
    /// Total payload bytes accepted for delivery.
    pub delivered_bytes: u64,
}

impl NetworkStats {
    /// Fraction of offered messages that were dropped (for any reason).
    pub fn drop_ratio(&self) -> f64 {
        if self.offered == 0 {
            0.0
        } else {
            (self.lost + self.blocked + self.partitioned) as f64 / self.offered as f64
        }
    }

    /// Publishes this snapshot into `registry` as gauges named
    /// `<prefix>.<counter>` (e.g. `sim.net.offered`).
    ///
    /// `NetworkStats` is deliberately a plain `Copy` value — the chaos
    /// engine compares whole snapshots for run determinism — so instead of
    /// live registry-backed cells the simulation publishes a snapshot
    /// whenever an exporter is about to read the registry.
    pub fn publish(&self, registry: &sle_obs::Registry, prefix: &str) {
        let set = |name: &str, value: u64| {
            registry
                .gauge(&format!("{prefix}.{name}"))
                .set(value as i64);
        };
        set("offered", self.offered);
        set("lost", self.lost);
        set("blocked", self.blocked);
        set("partitioned", self.partitioned);
        set("delivered", self.delivered);
        set("duplicated", self.duplicated);
        set("delivered_bytes", self.delivered_bytes);
    }

    /// Adds another counter set into this one, field by field — how the
    /// parallel simulation driver folds the per-shard network clones into
    /// one whole-run snapshot.
    pub fn merge(&mut self, other: &NetworkStats) {
        self.offered += other.offered;
        self.lost += other.lost;
        self.blocked += other.blocked;
        self.partitioned += other.partitioned;
        self.delivered += other.delivered;
        self.duplicated += other.duplicated;
        self.delivered_bytes += other.delivered_bytes;
    }

    /// Accounts for a link-level fate: loss, delivery, or duplication of a
    /// `wire_bytes`-byte message (blocked/partitioned drops are counted at
    /// their own call sites, before a link fate is ever sampled).
    pub fn record_fate(&mut self, fate: Fate, wire_bytes: usize) {
        match fate {
            Fate::Dropped => {
                self.lost += 1;
            }
            Fate::Deliver { .. } => {
                self.delivered += 1;
                self.delivered_bytes += wire_bytes as u64;
            }
            Fate::DeliverTwice { .. } => {
                self.delivered += 1;
                self.duplicated += 1;
                self.delivered_bytes += 2 * wire_bytes as u64;
            }
        }
    }
}

/// The runtime network state: implements [`Medium`] for the simulator.
#[derive(Debug, Clone)]
pub struct SimulatedNetwork {
    model: NetworkModel,
    outages: HashMap<(NodeId, NodeId), LinkOutageState>,
    /// Base seed of the per-link outage streams. Each link's stream is
    /// derived *purely* from `(outage_seed, from, to)` — never from a
    /// shared, mutating RNG — so the streams are independent of the order
    /// in which links are first queried. The parallel simulation driver
    /// relies on this: every shard holds a clone of this network and must
    /// see identical outage processes regardless of which links it happens
    /// to query.
    outage_seed: u64,
    stats: NetworkStats,
    /// Active partition: component id per node. `None` means the network is
    /// whole. Nodes absent from the map are isolated (every message to or
    /// from them is dropped).
    partition: Option<HashMap<NodeId, u32>>,
}

impl SimulatedNetwork {
    /// The model this network was built from.
    pub fn model(&self) -> &NetworkModel {
        &self.model
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }

    fn components_to_map(components: &[Vec<NodeId>]) -> HashMap<NodeId, u32> {
        let mut map = HashMap::new();
        for (id, component) in components.iter().enumerate() {
            for &node in component {
                map.insert(node, id as u32);
            }
        }
        map
    }

    /// Partitions the network into the given components: messages crossing
    /// a component boundary are dropped until [`SimulatedNetwork::heal_partition`].
    /// Nodes listed in no component are isolated entirely. Replaces any
    /// previously active partition.
    pub fn set_partition(&mut self, components: &[Vec<NodeId>]) {
        self.partition = Some(Self::components_to_map(components));
    }

    /// Removes any active partition: all links carry traffic again.
    pub fn heal_partition(&mut self) {
        self.partition = None;
    }

    /// Returns whether the currently active partition is exactly the one
    /// described by `components` (false when the network is whole).
    pub fn partition_matches(&self, components: &[Vec<NodeId>]) -> bool {
        self.partition
            .as_ref()
            .is_some_and(|current| *current == Self::components_to_map(components))
    }

    /// Returns whether a partition is currently active.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Replaces the behaviour of every link without an override — how the
    /// chaos engine applies (and later removes) duplication, reordering,
    /// burst-loss and delay-step overlays mid-run. Per-link overrides and
    /// accumulated outage state are untouched.
    pub fn set_default_link(&mut self, spec: LinkSpec) {
        self.model.default_link = spec;
    }

    /// Returns whether an active partition separates `from` and `to`.
    pub fn crosses_partition(&self, from: NodeId, to: NodeId) -> bool {
        match &self.partition {
            None => false,
            Some(map) => match (map.get(&from), map.get(&to)) {
                (Some(a), Some(b)) => a != b,
                // An endpoint in no component is isolated.
                _ => true,
            },
        }
    }

    /// Returns whether the directed link `from -> to` is up at `now`
    /// (considering both permanent severing and the crash-prone overlay).
    pub fn link_up_at(&mut self, now: SimInstant, from: NodeId, to: NodeId) -> bool {
        if self.model.is_severed(from, to) {
            return false;
        }
        let Some(crash_spec) = self.model.crash_spec else {
            return true;
        };
        let outage_seed = self.outage_seed;
        let state = self.outages.entry((from, to)).or_insert_with(|| {
            // Derive the link's stream purely from the seed and the link
            // endpoints (splitmix64-style finalizer), so neither first-use
            // order nor queries on other links perturb it.
            let label = ((from.0 as u64) << 32) | to.0 as u64;
            let mut z = outage_seed ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            LinkOutageState::new(crash_spec, SimRng::seed_from(z ^ (z >> 31)))
        });
        state.is_up_at(now)
    }
}

impl Medium for SimulatedNetwork {
    fn transmit(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Verdict {
        self.transmit_fate(now, from, to, wire_bytes, rng).into()
    }

    fn transmit_fate(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Fate {
        self.stats.offered += 1;
        if self.crosses_partition(from, to) {
            self.stats.partitioned += 1;
            return Fate::Dropped;
        }
        if !self.link_up_at(now, from, to) {
            self.stats.blocked += 1;
            return Fate::Dropped;
        }
        let fate = self.model.link(from, to).sample_fate(rng);
        self.stats.record_fate(fate, wire_bytes);
        fate
    }

    fn min_delay(&self) -> sle_sim::time::SimDuration {
        self.model.min_delay()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    fn transmit_many(net: &mut SimulatedNetwork, n: usize) -> (usize, usize) {
        let mut rng = SimRng::seed_from(11);
        let mut delivered = 0;
        let mut dropped = 0;
        for i in 0..n {
            let now = SimInstant::ZERO + SimDuration::from_millis(i as u64);
            match net.transmit(now, NodeId(0), NodeId(1), 100, &mut rng) {
                Verdict::Deliver { .. } => delivered += 1,
                Verdict::Dropped => dropped += 1,
            }
        }
        (delivered, dropped)
    }

    #[test]
    fn perfect_network_delivers_everything() {
        let mut net = NetworkModel::perfect().build(1);
        let (delivered, dropped) = transmit_many(&mut net, 1000);
        assert_eq!(delivered, 1000);
        assert_eq!(dropped, 0);
        assert_eq!(net.stats().delivered, 1000);
        assert_eq!(net.stats().delivered_bytes, 100_000);
        assert_eq!(net.stats().drop_ratio(), 0.0);
    }

    #[test]
    fn lossy_network_drops_at_the_configured_rate() {
        let mut net = NetworkModel::new(LinkSpec::from_paper_tuple(10.0, 0.1)).build(2);
        let (_, dropped) = transmit_many(&mut net, 20_000);
        let rate = dropped as f64 / 20_000.0;
        assert!((rate - 0.1).abs() < 0.01, "drop rate {rate}");
        assert!(net.stats().lost > 0);
        assert_eq!(net.stats().blocked, 0);
    }

    #[test]
    fn per_link_override_applies_to_that_link_only() {
        let model = NetworkModel::perfect().with_link(
            NodeId(0),
            NodeId(1),
            LinkSpec::lossy(SimDuration::ZERO, 1.0),
        );
        assert_eq!(model.link(NodeId(0), NodeId(1)).loss_probability(), 1.0);
        assert_eq!(model.link(NodeId(1), NodeId(0)).loss_probability(), 0.0);
        let mut net = model.build(3);
        let mut rng = SimRng::seed_from(4);
        assert_eq!(
            net.transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 10, &mut rng),
            Verdict::Dropped
        );
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(1), NodeId(0), 10, &mut rng)
            .is_delivered());
    }

    #[test]
    fn severed_link_blocks_all_messages() {
        let mut net = NetworkModel::perfect()
            .with_severed_link(NodeId(0), NodeId(1))
            .build(5);
        let (delivered, dropped) = transmit_many(&mut net, 100);
        assert_eq!(delivered, 0);
        assert_eq!(dropped, 100);
        assert_eq!(net.stats().blocked, 100);
    }

    #[test]
    fn crash_prone_network_blocks_roughly_the_expected_fraction() {
        // Mean uptime 60s, downtime 3s => ~4.8% of transmissions blocked.
        let mut net = NetworkModel::perfect()
            .with_link_crashes(LinkCrashSpec::from_paper_uptime_secs(60))
            .build(6);
        let mut rng = SimRng::seed_from(12);
        let mut blocked = 0usize;
        let n = 200_000usize;
        for i in 0..n {
            let now = SimInstant::ZERO + SimDuration::from_millis(i as u64 * 20);
            if net.transmit(now, NodeId(0), NodeId(1), 10, &mut rng) == Verdict::Dropped {
                blocked += 1;
            }
        }
        let ratio = blocked as f64 / n as f64;
        assert!((ratio - 3.0 / 63.0).abs() < 0.02, "blocked ratio {ratio}");
    }

    #[test]
    fn crash_prone_links_are_independent_per_direction() {
        let mut net = NetworkModel::perfect()
            .with_link_crashes(LinkCrashSpec::new(
                SimDuration::from_secs(10),
                SimDuration::from_secs(10),
            ))
            .build(7);
        // Scan for a time where one direction is up and the other down.
        let mut diverged = false;
        for i in 0..10_000u64 {
            let t = SimInstant::ZERO + SimDuration::from_millis(i * 100);
            let a = net.link_up_at(t, NodeId(0), NodeId(1));
            let b = net.link_up_at(t, NodeId(1), NodeId(0));
            if a != b {
                diverged = true;
                break;
            }
        }
        assert!(
            diverged,
            "directions never diverged; outage streams look coupled"
        );
    }

    #[test]
    fn partition_blocks_cross_component_traffic_until_healed() {
        let mut net = NetworkModel::perfect().build(9);
        assert!(!net.is_partitioned());
        net.set_partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2)]]);
        assert!(net.is_partitioned());
        let mut rng = SimRng::seed_from(2);
        // Within a component: delivered.
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 10, &mut rng)
            .is_delivered());
        // Across components, both directions: dropped.
        assert_eq!(
            net.transmit(SimInstant::ZERO, NodeId(0), NodeId(2), 10, &mut rng),
            Verdict::Dropped
        );
        assert_eq!(
            net.transmit(SimInstant::ZERO, NodeId(2), NodeId(1), 10, &mut rng),
            Verdict::Dropped
        );
        // A node in no component is isolated.
        assert_eq!(
            net.transmit(SimInstant::ZERO, NodeId(0), NodeId(3), 10, &mut rng),
            Verdict::Dropped
        );
        assert_eq!(net.stats().partitioned, 3);
        assert!(net.stats().drop_ratio() > 0.0);

        net.heal_partition();
        assert!(!net.is_partitioned());
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(2), 10, &mut rng)
            .is_delivered());
    }

    #[test]
    fn duplication_overlay_is_applied_and_counted() {
        let spec = LinkSpec::perfect().with_duplication(1.0);
        let mut net = NetworkModel::new(spec).build(4);
        let mut rng = SimRng::seed_from(6);
        let fate = net.transmit_fate(SimInstant::ZERO, NodeId(0), NodeId(1), 100, &mut rng);
        assert_eq!(fate.copies(), 2);
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().duplicated, 1);
        assert_eq!(net.stats().delivered_bytes, 200);
        // The single-delivery `transmit` view collapses to the first copy.
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 100, &mut rng)
            .is_delivered());
    }

    #[test]
    fn set_default_link_swaps_overlays_mid_run() {
        let mut net = NetworkModel::perfect().build(7);
        let mut rng = SimRng::seed_from(3);
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 10, &mut rng)
            .is_delivered());
        // Burst loss: everything dropped while the overlay is active.
        net.set_default_link(LinkSpec::lossy(SimDuration::ZERO, 1.0));
        assert_eq!(
            net.transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 10, &mut rng),
            Verdict::Dropped
        );
        assert_eq!(net.stats().lost, 1);
        // Restore.
        net.set_default_link(LinkSpec::perfect());
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 10, &mut rng)
            .is_delivered());
        assert_eq!(net.model().default_link(), LinkSpec::perfect());
    }

    #[test]
    fn stats_publish_as_gauges() {
        let mut net = NetworkModel::perfect().build(1);
        transmit_many(&mut net, 10);
        let registry = sle_obs::Registry::default();
        net.stats().publish(&registry, "sim.net");
        let snapshot = registry.snapshot();
        assert_eq!(
            snapshot.get("sim.net.offered"),
            Some(&sle_obs::MetricValue::Gauge(10))
        );
        assert_eq!(
            snapshot.get("sim.net.delivered"),
            Some(&sle_obs::MetricValue::Gauge(10))
        );
    }

    #[test]
    fn model_min_delay_is_the_floor_over_all_links() {
        let base =
            LinkSpec::from_paper_tuple(10.0, 0.0).with_min_delay(SimDuration::from_millis(2));
        let model = NetworkModel::new(base);
        assert_eq!(model.min_delay(), SimDuration::from_millis(2));
        // An override with a smaller floor drags the bound down.
        let model = model.with_link(
            NodeId(0),
            NodeId(1),
            LinkSpec::perfect().with_min_delay(SimDuration::from_millis(1)),
        );
        assert_eq!(model.min_delay(), SimDuration::from_millis(1));
        // An override with *no* floor collapses it to zero.
        let model = model.with_link(NodeId(1), NodeId(2), LinkSpec::perfect());
        assert_eq!(model.min_delay(), SimDuration::ZERO);
        // The Medium view agrees.
        let net = model.build(1);
        assert_eq!(Medium::min_delay(&net), SimDuration::ZERO);
    }

    #[test]
    fn outage_streams_are_independent_of_query_order() {
        let model = NetworkModel::perfect().with_link_crashes(LinkCrashSpec::new(
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
        ));
        // One clone queries (0->1) first, the other (1->0) first; afterwards
        // both must agree on every link at every instant.
        let mut a = model.clone().build(42);
        let mut b = model.build(42);
        let t0 = SimInstant::ZERO;
        a.link_up_at(t0, NodeId(0), NodeId(1));
        b.link_up_at(t0, NodeId(1), NodeId(0));
        for i in 0..10_000u64 {
            let t = SimInstant::ZERO + SimDuration::from_millis(i * 10);
            assert_eq!(
                a.link_up_at(t, NodeId(0), NodeId(1)),
                b.link_up_at(t, NodeId(0), NodeId(1)),
                "link 0->1 diverged at {t}"
            );
            assert_eq!(
                a.link_up_at(t, NodeId(1), NodeId(0)),
                b.link_up_at(t, NodeId(1), NodeId(0)),
                "link 1->0 diverged at {t}"
            );
        }
    }

    #[test]
    fn stats_merge_sums_fields() {
        let mut a = NetworkStats {
            offered: 1,
            lost: 2,
            blocked: 3,
            partitioned: 4,
            delivered: 5,
            duplicated: 6,
            delivered_bytes: 7,
        };
        a.merge(&a.clone());
        assert_eq!(a.offered, 2);
        assert_eq!(a.lost, 4);
        assert_eq!(a.blocked, 6);
        assert_eq!(a.partitioned, 8);
        assert_eq!(a.delivered, 10);
        assert_eq!(a.duplicated, 12);
        assert_eq!(a.delivered_bytes, 14);
    }

    #[test]
    fn default_model_is_perfect() {
        let model = NetworkModel::default();
        assert_eq!(model.default_link(), LinkSpec::perfect());
        assert!(model.crash_spec().is_none());
        assert!(!model.is_severed(NodeId(0), NodeId(1)));
    }
}
