//! Real-time transports for running the service outside the simulator.
//!
//! The paper's service runs as one daemon per workstation exchanging UDP
//! datagrams. For the library form of this reproduction we provide an
//! in-process mesh transport built on standard-library channels: every node
//! gets an [`Endpoint`] with a non-blocking `send` and a blocking/polling
//! `recv`.
//! The mesh can optionally inject losses and delays so examples can
//! demonstrate adverse conditions in real time.

use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use sle_sim::actor::NodeId;
use sle_sim::rng::SimRng;
use sle_sim::time::SimDuration;

use crate::link::LinkSpec;
use crate::mailbox::MailboxSender;

/// Errors returned by transport operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The destination node is not part of the mesh.
    UnknownDestination(NodeId),
    /// The mesh has been shut down.
    Closed,
    /// The message cannot be represented on this transport's wire (for
    /// example, it encodes to more bytes than one datagram may carry).
    Unencodable(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::UnknownDestination(node) => {
                write!(f, "unknown destination node {node}")
            }
            TransportError::Closed => write!(f, "transport is closed"),
            TransportError::Unencodable(reason) => {
                write!(f, "message cannot be encoded: {reason}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// The push-mode delivery seam between a transport and a sharded runtime:
/// a [`MailboxSender`] into the shard mailbox of whichever worker owns the
/// receiving endpoint's node. Arriving messages are tagged with the
/// receiving endpoint's identity (a shard mailbox multiplexes many resident
/// nodes) and the push itself wakes the parked worker.
pub type ShardDelivery<M> = MailboxSender<(NodeId, Incoming<M>)>;

/// The endpoint shape the real-time runtime in `sle-core` is written
/// against: an unreliable, unordered, node-addressed datagram service.
///
/// Two implementations exist: the in-process [`Endpoint`] of an
/// [`InMemoryMesh`] (std channels) and the `UdpEndpoint` of the `sle-udp`
/// crate (real `std::net::UdpSocket`s, one daemon per workstation exactly as
/// the paper deploys the service). Both are *best effort*: a send that
/// reaches the wire may still be lost, duplicated or reordered, which is
/// precisely the fault model the protocol is designed for, so runtimes must
/// never treat a successful `send` as a delivery guarantee.
pub trait MessageEndpoint<M> {
    /// The identity of this endpoint.
    fn node(&self) -> NodeId;

    /// Sends `msg` to `to`, best effort and without blocking on delivery.
    ///
    /// # Errors
    ///
    /// Implementations report only *local* failures (unknown destination,
    /// closed transport, unencodable message); losing the message in the
    /// network is silent, like UDP.
    fn send(&self, to: NodeId, msg: M) -> Result<(), TransportError>;

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// Returns `None` on timeout (or when the transport has shut down).
    fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>>;

    /// Receives a message if one is already queued, without blocking.
    fn try_recv(&self) -> Option<Incoming<M>>;

    /// Switches the endpoint to push-mode delivery: every message that
    /// arrives from now on is pushed into `sink` (tagged with this
    /// endpoint's [`node`](MessageEndpoint::node)) and wakes the owning
    /// shard's worker, instead of queuing for
    /// [`recv_timeout`](MessageEndpoint::recv_timeout) /
    /// [`try_recv`](MessageEndpoint::try_recv) pulls. Messages already
    /// queued at the moment of the switch are moved into the sink as well
    /// (their order relative to concurrent arrivals is unspecified, which a
    /// best-effort datagram contract already permits).
    ///
    /// Returns whether the transport supports push mode. The default
    /// implementation is pull-only and returns `false`; a sharded runtime
    /// then falls back to polling the endpoint on a short cadence.
    fn set_delivery_sink(&self, sink: ShardDelivery<M>) -> bool {
        let _ = sink;
        false
    }

    /// Flushes any sends the transport has buffered for coalescing.
    ///
    /// Transports that pack several small messages into one wire datagram
    /// (the shared-socket UDP plane of `sle-udp`) hold outgoing records in a
    /// pending buffer until either the datagram budget fills or the runtime
    /// signals a natural batch boundary by calling this. A sharded runtime
    /// calls it after every productive processing round, so co-sharded
    /// senders to the same destination share datagrams without adding
    /// latency beyond the round itself. Transports that write through on
    /// every `send` (the in-memory mesh, the legacy one-socket-per-node UDP
    /// endpoint) keep this default no-op.
    fn flush_sends(&self) {}
}

/// A message in flight, tagged with its sender.
#[derive(Debug, Clone, PartialEq)]
pub struct Incoming<M> {
    /// The node that sent the message.
    pub from: NodeId,
    /// The message payload.
    pub msg: M,
}

/// Where messages for one mesh destination currently go: its endpoint's
/// pull channel (the default), or straight into the shard mailbox of the
/// runtime worker that owns the destination node.
enum MeshRoute<M> {
    Channel(Sender<Incoming<M>>),
    Shard(ShardDelivery<M>),
}

struct MeshShared<M> {
    routes: Vec<Mutex<MeshRoute<M>>>,
    loss: LinkSpec,
    rng: Mutex<SimRng>,
}

/// An in-process full-mesh transport connecting `n` endpoints.
///
/// ```
/// use sle_net::transport::InMemoryMesh;
/// use sle_sim::actor::NodeId;
///
/// let mut mesh: InMemoryMesh<String> = InMemoryMesh::new(2);
/// let a = mesh.endpoint(NodeId(0)).unwrap();
/// let b = mesh.endpoint(NodeId(1)).unwrap();
/// a.send(NodeId(1), "hello".to_string()).unwrap();
/// let incoming = b.recv_timeout(std::time::Duration::from_secs(1)).unwrap();
/// assert_eq!(incoming.from, NodeId(0));
/// assert_eq!(incoming.msg, "hello");
/// ```
pub struct InMemoryMesh<M> {
    shared: Arc<MeshShared<M>>,
    receivers: Vec<Option<Receiver<Incoming<M>>>>,
}

impl<M: Send + 'static> InMemoryMesh<M> {
    /// Creates a mesh of `n` endpoints with perfect links.
    pub fn new(n: usize) -> Self {
        Self::with_links(n, LinkSpec::perfect(), 0)
    }

    /// Creates a mesh whose links follow `spec` (losses are applied at send
    /// time; delays are applied by the *sender* sleeping is deliberately NOT
    /// done — instead delayed delivery is approximated by dropping only,
    /// since blocking a sender would distort the caller's timing. Delay
    /// injection in real time is the responsibility of the runtime driver).
    pub fn with_links(n: usize, spec: LinkSpec, seed: u64) -> Self {
        let mut routes = Vec::with_capacity(n);
        let mut receivers = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            routes.push(Mutex::new(MeshRoute::Channel(tx)));
            receivers.push(Some(rx));
        }
        InMemoryMesh {
            shared: Arc::new(MeshShared {
                routes,
                loss: spec,
                rng: Mutex::new(SimRng::seed_from(seed)),
            }),
            receivers,
        }
    }

    /// Number of endpoints in the mesh.
    pub fn len(&self) -> usize {
        self.shared.routes.len()
    }

    /// Returns true if the mesh has no endpoints.
    pub fn is_empty(&self) -> bool {
        self.shared.routes.is_empty()
    }

    /// Takes the endpoint for `node`. Each endpoint can be taken once.
    pub fn endpoint(&mut self, node: NodeId) -> Option<Endpoint<M>> {
        let rx = self.receivers.get_mut(node.index())?.take()?;
        Some(Endpoint {
            node,
            shared: Arc::clone(&self.shared),
            receiver: rx,
        })
    }
}

/// One node's connection to an [`InMemoryMesh`].
pub struct Endpoint<M> {
    node: NodeId,
    shared: Arc<MeshShared<M>>,
    receiver: Receiver<Incoming<M>>,
}

impl<M: Send + 'static> Endpoint<M> {
    /// The identity of this endpoint.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Sends `msg` to `to`. Returns an error if `to` is not in the mesh.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::UnknownDestination`] for out-of-range nodes
    /// and [`TransportError::Closed`] if the destination endpoint (and its
    /// receiver) has been dropped.
    pub fn send(&self, to: NodeId, msg: M) -> Result<(), TransportError> {
        let route = self
            .shared
            .routes
            .get(to.index())
            .ok_or(TransportError::UnknownDestination(to))?;
        // Perfect links skip the loss lottery entirely: the shared RNG lock
        // would otherwise serialize every sender in the mesh.
        if self.shared.loss.loss_probability() > 0.0 {
            let mut rng = self.shared.rng.lock().expect("transport rng poisoned");
            if rng.bernoulli(self.shared.loss.loss_probability()) {
                // Message "lost on the wire": swallowed silently, like UDP.
                return Ok(());
            }
        }
        let incoming = Incoming {
            from: self.node,
            msg,
        };
        match &*route.lock().expect("mesh route poisoned") {
            MeshRoute::Channel(sender) => sender.send(incoming).map_err(|_| TransportError::Closed),
            MeshRoute::Shard(sink) => {
                // Delivered straight into the owning shard's mailbox, waking
                // its worker.
                sink.push((to, incoming));
                Ok(())
            }
        }
    }

    /// Receives the next message, waiting up to `timeout`.
    ///
    /// Returns `None` on timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(incoming) => Some(incoming),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Receives a message if one is already queued.
    pub fn try_recv(&self) -> Option<Incoming<M>> {
        self.receiver.try_recv().ok()
    }

    /// The nominal delay of the mesh links (provided for runtimes that want
    /// to emulate latency by deferring the handling of received messages).
    pub fn nominal_delay(&self) -> SimDuration {
        self.shared.loss.mean_delay()
    }

    /// Routes all future deliveries for this endpoint straight into `sink`
    /// (see [`MessageEndpoint::set_delivery_sink`]); anything already queued
    /// moves into the sink too.
    pub fn set_delivery_sink(&self, sink: ShardDelivery<M>) {
        {
            let mut route = self.shared.routes[self.node.index()]
                .lock()
                .expect("mesh route poisoned");
            *route = MeshRoute::Shard(sink.clone());
        }
        // Messages that reached the channel before the switch must not be
        // stranded: move them into the sink (senders now all use the sink,
        // so the channel can only drain).
        while let Ok(incoming) = self.receiver.try_recv() {
            sink.push((self.node, incoming));
        }
    }
}

impl<M: Send + 'static> MessageEndpoint<M> for Endpoint<M> {
    fn node(&self) -> NodeId {
        Endpoint::node(self)
    }

    fn send(&self, to: NodeId, msg: M) -> Result<(), TransportError> {
        Endpoint::send(self, to, msg)
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<Incoming<M>> {
        Endpoint::recv_timeout(self, timeout)
    }

    fn try_recv(&self) -> Option<Incoming<M>> {
        Endpoint::try_recv(self)
    }

    fn set_delivery_sink(&self, sink: ShardDelivery<M>) -> bool {
        Endpoint::set_delivery_sink(self, sink);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_routes_between_endpoints() {
        let mut mesh: InMemoryMesh<u32> = InMemoryMesh::new(3);
        assert_eq!(mesh.len(), 3);
        assert!(!mesh.is_empty());
        let a = mesh.endpoint(NodeId(0)).unwrap();
        let b = mesh.endpoint(NodeId(1)).unwrap();
        let c = mesh.endpoint(NodeId(2)).unwrap();
        a.send(NodeId(1), 10).unwrap();
        c.send(NodeId(1), 20).unwrap();
        let first = b.recv_timeout(Duration::from_millis(200)).unwrap();
        let second = b.recv_timeout(Duration::from_millis(200)).unwrap();
        let mut got = vec![(first.from, first.msg), (second.from, second.msg)];
        got.sort();
        assert_eq!(got, vec![(NodeId(0), 10), (NodeId(2), 20)]);
    }

    #[test]
    fn endpoint_can_be_taken_once() {
        let mut mesh: InMemoryMesh<u32> = InMemoryMesh::new(1);
        assert!(mesh.endpoint(NodeId(0)).is_some());
        assert!(mesh.endpoint(NodeId(0)).is_none());
        assert!(mesh.endpoint(NodeId(5)).is_none());
    }

    #[test]
    fn unknown_destination_is_an_error() {
        let mut mesh: InMemoryMesh<u32> = InMemoryMesh::new(1);
        let a = mesh.endpoint(NodeId(0)).unwrap();
        assert_eq!(
            a.send(NodeId(9), 1),
            Err(TransportError::UnknownDestination(NodeId(9)))
        );
        assert_eq!(
            TransportError::UnknownDestination(NodeId(9)).to_string(),
            "unknown destination node n9"
        );
    }

    #[test]
    fn try_recv_and_timeout_behave() {
        let mut mesh: InMemoryMesh<u32> = InMemoryMesh::new(2);
        let a = mesh.endpoint(NodeId(0)).unwrap();
        let b = mesh.endpoint(NodeId(1)).unwrap();
        assert!(b.try_recv().is_none());
        assert!(b.recv_timeout(Duration::from_millis(10)).is_none());
        a.send(NodeId(1), 7).unwrap();
        assert_eq!(b.try_recv().map(|i| i.msg), Some(7));
        assert_eq!(a.node(), NodeId(0));
    }

    #[test]
    fn lossy_mesh_swallows_messages_silently() {
        let mut mesh: InMemoryMesh<u32> =
            InMemoryMesh::with_links(2, LinkSpec::lossy(SimDuration::ZERO, 1.0), 3);
        let a = mesh.endpoint(NodeId(0)).unwrap();
        let b = mesh.endpoint(NodeId(1)).unwrap();
        for i in 0..50 {
            a.send(NodeId(1), i).unwrap();
        }
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn delivery_sink_receives_pushes_and_queued_backlog() {
        use crate::mailbox::Mailbox;

        let mut mesh: InMemoryMesh<u32> = InMemoryMesh::new(2);
        let a = mesh.endpoint(NodeId(0)).unwrap();
        let b = mesh.endpoint(NodeId(1)).unwrap();
        // A message queued before the switch must move into the sink.
        a.send(NodeId(1), 1).unwrap();
        let mailbox: Mailbox<(NodeId, Incoming<u32>)> = Mailbox::new();
        assert!(MessageEndpoint::set_delivery_sink(&b, mailbox.sender()));
        // And later sends go straight to the sink, waking the waiter.
        a.send(NodeId(1), 2).unwrap();
        let mut buf = Vec::new();
        assert!(mailbox.wait_until(None, &mut buf));
        while buf.len() < 2 {
            mailbox.drain(&mut buf);
        }
        let got: Vec<_> = buf
            .iter()
            .map(|(node, incoming)| (*node, incoming.from, incoming.msg))
            .collect();
        assert!(got.contains(&(NodeId(1), NodeId(0), 1)));
        assert!(got.contains(&(NodeId(1), NodeId(0), 2)));
        // Pulls see nothing once the endpoint is in push mode.
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn sending_across_threads_works() {
        let mut mesh: InMemoryMesh<u64> = InMemoryMesh::new(2);
        let a = mesh.endpoint(NodeId(0)).unwrap();
        let b = mesh.endpoint(NodeId(1)).unwrap();
        let handle = std::thread::spawn(move || {
            for i in 0..100u64 {
                a.send(NodeId(1), i).unwrap();
            }
        });
        let mut received = 0u64;
        while received < 100 {
            if b.recv_timeout(Duration::from_secs(1)).is_some() {
                received += 1;
            } else {
                break;
            }
        }
        handle.join().unwrap();
        assert_eq!(received, 100);
    }
}
