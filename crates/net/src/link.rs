//! Directed-link models.
//!
//! The DSN 2008 evaluation characterises a lossy link by the pair `(D, p_L)`:
//! every message is dropped with probability `p_L`, and if it is not dropped
//! its delay is exponentially distributed with mean `D` (Section 6.1,
//! "Communication links behavior"). Crash-prone links additionally alternate
//! between an *up* state (behaving like the underlying lossy link) and a
//! *down* state in which **all** messages are dropped; up and down times are
//! exponentially distributed.

use sle_sim::medium::Fate;
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};

/// The behaviour of one directed communication link.
///
/// ```
/// use sle_net::link::LinkSpec;
/// use sle_sim::time::SimDuration;
///
/// // The paper's worst lossy setting: D = 100 ms, p_L = 0.1.
/// let spec = LinkSpec::lossy(SimDuration::from_millis(100), 0.1);
/// assert_eq!(spec.loss_probability(), 0.1);
///
/// // The authors' real LAN: D = 0.025 ms and practically no losses.
/// let lan = LinkSpec::lan();
/// assert!(lan.loss_probability() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    mean_delay: SimDuration,
    loss_probability: f64,
    /// Chaos overlay: probability that a delivered message is duplicated.
    duplicate_probability: f64,
    /// Chaos overlay: extra uniformly distributed delay in `[0, jitter]`
    /// added to every delivered copy, independently per copy — on links with
    /// small base delay this is what makes messages overtake each other.
    jitter: SimDuration,
    /// Additive delay floor: every delivered copy takes at least this long
    /// on top of its sampled delay. A positive floor is the *lookahead* a
    /// conservative parallel simulation needs (see `sle_sim::par`); the
    /// default is zero, which preserves the paper's pure-exponential model.
    min_delay: SimDuration,
}

impl LinkSpec {
    /// A link with the given exponential mean delay and loss probability.
    ///
    /// # Panics
    ///
    /// Panics if `loss_probability` is not within `[0, 1]`.
    pub fn lossy(mean_delay: SimDuration, loss_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_probability),
            "loss probability must be within [0, 1]"
        );
        LinkSpec {
            mean_delay,
            loss_probability,
            duplicate_probability: 0.0,
            jitter: SimDuration::ZERO,
            min_delay: SimDuration::ZERO,
        }
    }

    /// A link that never loses nor delays messages.
    pub fn perfect() -> Self {
        LinkSpec::lossy(SimDuration::ZERO, 0.0)
    }

    /// The behaviour the paper measured on its real local-area network:
    /// average delay of 0.025 ms and practically no message loss.
    pub fn lan() -> Self {
        LinkSpec::lossy(SimDuration::from_micros(25), 0.0)
    }

    /// Adds a duplication overlay: every delivered message is duplicated
    /// with probability `p` (the second copy samples its own delay and
    /// jitter, so duplicates may also arrive out of order).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability must be within [0, 1]"
        );
        self.duplicate_probability = p;
        self
    }

    /// Adds a reordering overlay: every delivered copy gets an extra
    /// uniformly distributed delay in `[0, jitter]`.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }

    /// Sets an additive delay floor: every delivered copy takes at least
    /// `floor` plus its sampled exponential delay (and jitter). A positive
    /// floor gives the parallel simulation driver a non-zero lookahead.
    pub fn with_min_delay(mut self, floor: SimDuration) -> Self {
        self.min_delay = floor;
        self
    }

    /// Convenience constructor from `(mean delay in ms, loss probability)`,
    /// matching the `(D, p_L)` tuples used throughout the paper's figures.
    pub fn from_paper_tuple(mean_delay_ms: f64, loss_probability: f64) -> Self {
        LinkSpec::lossy(
            SimDuration::from_millis_f64(mean_delay_ms),
            loss_probability,
        )
    }

    /// The mean of the exponential message-delay distribution.
    pub fn mean_delay(&self) -> SimDuration {
        self.mean_delay
    }

    /// The probability that a message is dropped by the link.
    pub fn loss_probability(&self) -> f64 {
        self.loss_probability
    }

    /// The probability that a delivered message is duplicated.
    pub fn duplicate_probability(&self) -> f64 {
        self.duplicate_probability
    }

    /// The upper bound of the extra uniform delay added per delivered copy.
    pub fn jitter(&self) -> SimDuration {
        self.jitter
    }

    /// The additive delay floor of every delivered copy.
    pub fn min_delay(&self) -> SimDuration {
        self.min_delay
    }

    fn sample_delay(&self, rng: &mut SimRng) -> SimDuration {
        let base = self.min_delay + rng.exponential(self.mean_delay);
        if self.jitter.is_zero() {
            base
        } else {
            base + self.jitter.mul_f64(rng.uniform_f64())
        }
    }

    /// Samples the fate of a single message: `None` if it is lost, otherwise
    /// the transmission delay (of the first copy, if the duplication overlay
    /// fires).
    pub fn sample(&self, rng: &mut SimRng) -> Option<SimDuration> {
        self.sample_fate(rng).first_delay()
    }

    /// Samples the full fate of a single message, including the duplication
    /// and reordering overlays.
    pub fn sample_fate(&self, rng: &mut SimRng) -> Fate {
        if rng.bernoulli(self.loss_probability) {
            return Fate::Dropped;
        }
        let first = self.sample_delay(rng);
        if self.duplicate_probability > 0.0 && rng.bernoulli(self.duplicate_probability) {
            Fate::DeliverTwice {
                first,
                second: self.sample_delay(rng),
            }
        } else {
            Fate::Deliver { delay: first }
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::perfect()
    }
}

/// Parameters of a crash-prone link: how long it stays up and how long it
/// stays down, both exponentially distributed (paper Section 6.1, "links
/// prone to crashes": uptimes of 60/300/600 s, downtime of 3 s).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCrashSpec {
    mean_uptime: SimDuration,
    mean_downtime: SimDuration,
}

impl LinkCrashSpec {
    /// Creates a crash specification with the given mean up and down times.
    ///
    /// # Panics
    ///
    /// Panics if either mean is zero (a link must spend time in both states).
    pub fn new(mean_uptime: SimDuration, mean_downtime: SimDuration) -> Self {
        assert!(!mean_uptime.is_zero(), "mean uptime must be positive");
        assert!(!mean_downtime.is_zero(), "mean downtime must be positive");
        LinkCrashSpec {
            mean_uptime,
            mean_downtime,
        }
    }

    /// The paper's crash-prone settings: mean uptime in seconds with a fixed
    /// 3-second mean downtime.
    pub fn from_paper_uptime_secs(uptime_secs: u64) -> Self {
        LinkCrashSpec::new(
            SimDuration::from_secs(uptime_secs),
            SimDuration::from_secs(3),
        )
    }

    /// Mean time the link stays operational between crashes.
    pub fn mean_uptime(&self) -> SimDuration {
        self.mean_uptime
    }

    /// Mean time the link stays down after a crash.
    pub fn mean_downtime(&self) -> SimDuration {
        self.mean_downtime
    }
}

/// Lazily-evaluated up/down state of one crash-prone directed link.
///
/// The state machine alternates between exponentially-distributed up and
/// down periods, advanced on demand to the query time. Each link owns a
/// forked RNG stream so the evolution of one link never perturbs another.
#[derive(Debug, Clone)]
pub struct LinkOutageState {
    spec: LinkCrashSpec,
    rng: SimRng,
    up: bool,
    next_transition: SimInstant,
}

impl LinkOutageState {
    /// Creates a link that starts up at time zero.
    pub fn new(spec: LinkCrashSpec, mut rng: SimRng) -> Self {
        let first_uptime = rng.exponential(spec.mean_uptime);
        LinkOutageState {
            spec,
            rng,
            up: true,
            next_transition: SimInstant::ZERO + first_uptime,
        }
    }

    /// Returns whether the link is up at `now`, advancing the internal state
    /// machine as needed. `now` must be non-decreasing across calls.
    pub fn is_up_at(&mut self, now: SimInstant) -> bool {
        while self.next_transition <= now {
            let at = self.next_transition;
            if self.up {
                self.up = false;
                self.next_transition = at + self.rng.exponential(self.spec.mean_downtime);
            } else {
                self.up = true;
                self.next_transition = at + self.rng.exponential(self.spec.mean_uptime);
            }
        }
        self.up
    }

    /// The crash specification of this link.
    pub fn spec(&self) -> LinkCrashSpec {
        self.spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_link_never_drops_or_delays() {
        let spec = LinkSpec::perfect();
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            assert_eq!(spec.sample(&mut rng), Some(SimDuration::ZERO));
        }
    }

    #[test]
    fn lossy_link_drop_rate_matches_probability() {
        let spec = LinkSpec::from_paper_tuple(10.0, 0.1);
        let mut rng = SimRng::seed_from(2);
        let n = 20_000;
        let dropped = (0..n).filter(|_| spec.sample(&mut rng).is_none()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.01, "observed drop rate {rate}");
    }

    #[test]
    fn lossy_link_mean_delay_matches_spec() {
        let spec = LinkSpec::lossy(SimDuration::from_millis(100), 0.0);
        let mut rng = SimRng::seed_from(3);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| spec.sample(&mut rng).unwrap().as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.1).abs() < 0.01, "observed mean delay {mean}");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = LinkSpec::lossy(SimDuration::ZERO, 1.5);
    }

    #[test]
    fn duplication_overlay_rate_matches_probability() {
        let spec = LinkSpec::lossy(SimDuration::from_millis(5), 0.0).with_duplication(0.3);
        assert_eq!(spec.duplicate_probability(), 0.3);
        let mut rng = SimRng::seed_from(8);
        let n = 20_000;
        let duplicated = (0..n)
            .filter(|_| matches!(spec.sample_fate(&mut rng), Fate::DeliverTwice { .. }))
            .count();
        let rate = duplicated as f64 / n as f64;
        assert!(
            (rate - 0.3).abs() < 0.02,
            "observed duplication rate {rate}"
        );
    }

    #[test]
    fn jitter_overlay_adds_bounded_extra_delay_and_reorders() {
        let jitter = SimDuration::from_millis(50);
        let spec = LinkSpec::lossy(SimDuration::ZERO, 0.0).with_jitter(jitter);
        assert_eq!(spec.jitter(), jitter);
        let mut rng = SimRng::seed_from(9);
        let mut saw_out_of_order = false;
        let mut previous = SimDuration::ZERO;
        for i in 0..1000 {
            let delay = spec.sample(&mut rng).unwrap();
            assert!(delay <= jitter, "jittered delay {delay} exceeds bound");
            if i > 0 && delay < previous {
                saw_out_of_order = true;
            }
            previous = delay;
        }
        assert!(saw_out_of_order, "jitter never produced a reordering");
    }

    #[test]
    fn duplicated_copies_sample_independent_delays() {
        let spec = LinkSpec::lossy(SimDuration::from_millis(20), 0.0).with_duplication(1.0);
        let mut rng = SimRng::seed_from(10);
        let mut second_before_first = 0u32;
        for _ in 0..1000 {
            match spec.sample_fate(&mut rng) {
                Fate::DeliverTwice { first, second } => {
                    if second < first {
                        second_before_first += 1;
                    }
                }
                other => panic!("expected duplication, got {other:?}"),
            }
        }
        // Independent exponential delays: the duplicate overtakes the
        // original about half the time.
        assert!(
            (300..700).contains(&second_before_first),
            "overtakes {second_before_first}"
        );
    }

    #[test]
    #[should_panic(expected = "duplication probability")]
    fn invalid_duplication_probability_panics() {
        let _ = LinkSpec::perfect().with_duplication(1.01);
    }

    #[test]
    fn plain_links_have_no_overlay() {
        let spec = LinkSpec::from_paper_tuple(100.0, 0.1);
        assert_eq!(spec.duplicate_probability(), 0.0);
        assert_eq!(spec.jitter(), SimDuration::ZERO);
        assert_eq!(spec.min_delay(), SimDuration::ZERO);
    }

    #[test]
    fn min_delay_floors_every_delivered_copy() {
        let floor = SimDuration::from_millis(2);
        let spec = LinkSpec::lossy(SimDuration::from_millis(5), 0.0)
            .with_min_delay(floor)
            .with_duplication(1.0)
            .with_jitter(SimDuration::from_millis(1));
        assert_eq!(spec.min_delay(), floor);
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            match spec.sample_fate(&mut rng) {
                Fate::DeliverTwice { first, second } => {
                    assert!(first >= floor, "first copy {first} under the floor");
                    assert!(second >= floor, "second copy {second} under the floor");
                }
                other => panic!("expected duplication, got {other:?}"),
            }
        }
    }

    #[test]
    fn lan_spec_matches_paper() {
        let lan = LinkSpec::lan();
        assert_eq!(lan.mean_delay(), SimDuration::from_micros(25));
        assert_eq!(lan.loss_probability(), 0.0);
        assert_eq!(LinkSpec::default(), LinkSpec::perfect());
    }

    #[test]
    fn paper_tuple_constructor() {
        let spec = LinkSpec::from_paper_tuple(100.0, 0.01);
        assert_eq!(spec.mean_delay(), SimDuration::from_millis(100));
        assert_eq!(spec.loss_probability(), 0.01);
    }

    #[test]
    fn crash_spec_paper_constructor() {
        let spec = LinkCrashSpec::from_paper_uptime_secs(60);
        assert_eq!(spec.mean_uptime(), SimDuration::from_secs(60));
        assert_eq!(spec.mean_downtime(), SimDuration::from_secs(3));
    }

    #[test]
    #[should_panic(expected = "mean uptime")]
    fn crash_spec_zero_uptime_panics() {
        let _ = LinkCrashSpec::new(SimDuration::ZERO, SimDuration::from_secs(3));
    }

    #[test]
    fn outage_state_alternates_and_is_monotone() {
        let spec = LinkCrashSpec::new(SimDuration::from_secs(60), SimDuration::from_secs(3));
        let mut state = LinkOutageState::new(spec, SimRng::seed_from(7));
        assert!(state.is_up_at(SimInstant::ZERO));
        // Walk forward over a long period and check that both states occur.
        let mut ups = 0u32;
        let mut downs = 0u32;
        for i in 0..100_000u64 {
            let t = SimInstant::ZERO + SimDuration::from_millis(i * 10);
            if state.is_up_at(t) {
                ups += 1;
            } else {
                downs += 1;
            }
        }
        assert!(ups > 0 && downs > 0);
        // Duty cycle should be roughly uptime / (uptime + downtime) = 95%.
        let duty = ups as f64 / (ups + downs) as f64;
        assert!((duty - 60.0 / 63.0).abs() < 0.05, "duty cycle {duty}");
    }

    #[test]
    fn outage_duty_cycle_tracks_shorter_uptime() {
        let spec = LinkCrashSpec::from_paper_uptime_secs(60);
        let mut state = LinkOutageState::new(spec, SimRng::seed_from(9));
        let mut ups = 0u32;
        let mut total = 0u32;
        for i in 0..200_000u64 {
            let t = SimInstant::ZERO + SimDuration::from_millis(i * 50);
            if state.is_up_at(t) {
                ups += 1;
            }
            total += 1;
        }
        let duty = ups as f64 / total as f64;
        assert!((duty - 60.0 / 63.0).abs() < 0.05, "duty cycle {duty}");
    }
}
