//! The shard mailbox: one condvar-parked wait multiplexing everything a
//! runtime worker can be woken for.
//!
//! The sharded real-time runtime in `sle-core` runs many service nodes on
//! one worker thread. That worker must sleep until *either* a transport
//! delivers a message for any of its resident nodes, *or* an application
//! thread enqueues a command ([`ClusterHandle`]'s join/leave/query), *or*
//! its next timer deadline arrives — and it must sleep **exactly** that
//! long, with no fixed-interval polling. A [`Mailbox`] is that single wait
//! point: transports and command queues push through cloned
//! [`MailboxSender`]s (or just [`MailboxSender::wake`] the worker when the
//! payload lives elsewhere), and the worker parks in
//! [`Mailbox::wait_until`] with the timer wheel's next deadline as the
//! timeout.
//!
//! [`ClusterHandle`]: ../../sle_core/runtime/struct.ClusterHandle.html

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

struct MailboxState<T> {
    queue: VecDeque<T>,
    /// Set by [`MailboxSender::wake`]: "something outside the queue needs
    /// attention" (a command was enqueued, a crash flag flipped, shutdown).
    notified: bool,
}

struct MailboxShared<T> {
    state: Mutex<MailboxState<T>>,
    ready: Condvar,
}

/// The receiving half of a shard mailbox, owned by one worker.
///
/// ```
/// use sle_net::mailbox::Mailbox;
///
/// let mailbox: Mailbox<u32> = Mailbox::new();
/// let sender = mailbox.sender();
/// sender.push(7);
/// let mut buf = Vec::new();
/// assert!(mailbox.wait_until(None, &mut buf));
/// assert_eq!(buf, vec![7]);
/// ```
pub struct Mailbox<T> {
    shared: Arc<MailboxShared<T>>,
}

/// A clonable pusher into a [`Mailbox`]: transports deliver messages and
/// runtimes signal out-of-band work through these.
pub struct MailboxSender<T> {
    shared: Arc<MailboxShared<T>>,
}

impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        MailboxSender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    /// Creates an empty mailbox.
    pub fn new() -> Self {
        Mailbox {
            shared: Arc::new(MailboxShared {
                state: Mutex::new(MailboxState {
                    queue: VecDeque::new(),
                    notified: false,
                }),
                ready: Condvar::new(),
            }),
        }
    }

    /// A new sending handle. Senders stay valid for the mailbox's lifetime
    /// and may be cloned freely across threads.
    pub fn sender(&self) -> MailboxSender<T> {
        MailboxSender {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Parks the caller until an item is pushed, a [`MailboxSender::wake`]
    /// arrives, or `deadline` passes (`None` = wait indefinitely), then
    /// drains every queued item into `buf`.
    ///
    /// Returns `true` if the wait ended because of a push or a wake —
    /// `false` means the deadline passed with nothing to do (the caller's
    /// timers are the only reason it is awake).
    pub fn wait_until(&self, deadline: Option<Instant>, buf: &mut Vec<T>) -> bool {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        loop {
            if !state.queue.is_empty() || state.notified {
                break;
            }
            match deadline {
                None => {
                    state = self.shared.ready.wait(state).expect("mailbox poisoned");
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    state = self
                        .shared
                        .ready
                        .wait_timeout(state, deadline - now)
                        .expect("mailbox poisoned")
                        .0;
                }
            }
        }
        let woken = state.notified || !state.queue.is_empty();
        state.notified = false;
        buf.extend(state.queue.drain(..));
        woken
    }

    /// Drains everything currently queued into `buf` without blocking.
    /// Returns `true` if anything was drained or a pending wake consumed.
    pub fn drain(&self, buf: &mut Vec<T>) -> bool {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        let woken = state.notified || !state.queue.is_empty();
        state.notified = false;
        buf.extend(state.queue.drain(..));
        woken
    }
}

impl<T> MailboxSender<T> {
    /// Enqueues `item` and wakes the waiting worker, if any.
    pub fn push(&self, item: T) {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        state.queue.push_back(item);
        drop(state);
        self.shared.ready.notify_one();
    }

    /// Wakes the waiting worker without enqueuing anything — used when the
    /// payload lives in a side structure (a command queue, a crash flag, a
    /// shutdown signal) that the worker re-checks on every wake.
    pub fn wake(&self) {
        let mut state = self.shared.state.lock().expect("mailbox poisoned");
        state.notified = true;
        drop(state);
        self.shared.ready.notify_one();
    }
}

impl<T> std::fmt::Debug for Mailbox<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mailbox").finish_non_exhaustive()
    }
}

impl<T> std::fmt::Debug for MailboxSender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MailboxSender").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn push_before_wait_returns_immediately() {
        let mailbox: Mailbox<u32> = Mailbox::new();
        mailbox.sender().push(1);
        mailbox.sender().push(2);
        let mut buf = Vec::new();
        let woken = mailbox.wait_until(Some(Instant::now() + Duration::from_secs(5)), &mut buf);
        assert!(woken);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn deadline_timeout_reports_idle() {
        let mailbox: Mailbox<u32> = Mailbox::new();
        let mut buf = Vec::new();
        let start = Instant::now();
        let woken = mailbox.wait_until(Some(start + Duration::from_millis(30)), &mut buf);
        assert!(!woken);
        assert!(buf.is_empty());
        assert!(start.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn wake_without_item_unparks() {
        let mailbox: Mailbox<u32> = Mailbox::new();
        let sender = mailbox.sender();
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            sender.wake();
        });
        let mut buf = Vec::new();
        // No deadline: only the wake can end this wait.
        let woken = mailbox.wait_until(Some(Instant::now() + Duration::from_secs(10)), &mut buf);
        assert!(woken);
        assert!(buf.is_empty());
        waker.join().unwrap();
    }

    #[test]
    fn cross_thread_pushes_all_arrive() {
        let mailbox: Mailbox<u64> = Mailbox::new();
        let senders: Vec<_> = (0..4).map(|_| mailbox.sender()).collect();
        let producers: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(which, sender)| {
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        sender.push(which as u64 * 1000 + i);
                    }
                })
            })
            .collect();
        let mut got = Vec::new();
        let deadline = Instant::now() + Duration::from_secs(10);
        while got.len() < 400 && Instant::now() < deadline {
            mailbox.wait_until(Some(Instant::now() + Duration::from_millis(50)), &mut got);
        }
        for producer in producers {
            producer.join().unwrap();
        }
        mailbox.drain(&mut got);
        assert_eq!(got.len(), 400);
    }

    #[test]
    fn drain_is_nonblocking_and_consumes_wakes() {
        let mailbox: Mailbox<u8> = Mailbox::new();
        let mut buf = Vec::new();
        assert!(!mailbox.drain(&mut buf));
        mailbox.sender().wake();
        assert!(mailbox.drain(&mut buf));
        assert!(!mailbox.drain(&mut buf));
        assert!(buf.is_empty());
        assert!(format!("{mailbox:?}").contains("Mailbox"));
        assert!(format!("{:?}", mailbox.sender()).contains("MailboxSender"));
    }
}
