//! Drifting-link network models.
//!
//! The DSN 2008 evaluation keeps each link's `(D, p_L)` fixed for a whole
//! run; real wide-area links drift between regimes (congestion episodes, path
//! changes, recovery). A [`DriftSchedule`] describes a piecewise-constant
//! timeline of [`LinkSpec`]s applied to every directed link, and
//! [`DriftingNetwork`] implements the simulator's [`Medium`] over it — the
//! workload under which static per-join failure-detector configuration is
//! visibly suboptimal and the adaptive tuner earns its keep.

use sle_sim::actor::NodeId;
use sle_sim::medium::{Fate, Medium, Verdict};
use sle_sim::rng::SimRng;
use sle_sim::time::SimInstant;
use sle_sim::timeline::Timeline;

use crate::link::LinkSpec;
use crate::network::NetworkStats;

/// A piecewise-constant timeline of link behaviour.
///
/// ```
/// use sle_net::drift::DriftSchedule;
/// use sle_net::link::LinkSpec;
/// use sle_sim::time::SimInstant;
///
/// // A congested start that clears up after 30 s.
/// let schedule = DriftSchedule::new(LinkSpec::from_paper_tuple(40.0, 0.02))
///     .then_at(SimInstant::from_secs_f64(30.0), LinkSpec::lan());
/// assert_eq!(schedule.spec_at(SimInstant::ZERO).loss_probability(), 0.02);
/// assert_eq!(schedule.spec_at(SimInstant::from_secs_f64(31.0)), LinkSpec::lan());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSchedule {
    phases: Timeline<LinkSpec>,
}

impl DriftSchedule {
    /// A schedule that starts (at time zero) with `initial`.
    pub fn new(initial: LinkSpec) -> Self {
        DriftSchedule {
            phases: Timeline::new(initial),
        }
    }

    /// Switches every link to `spec` from `at` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `at` is not later than the previous phase boundary.
    pub fn then_at(mut self, at: SimInstant, spec: LinkSpec) -> Self {
        self.phases = self.phases.then_at(at, spec);
        self
    }

    /// The phases of the schedule, in time order.
    pub fn phases(&self) -> &[(SimInstant, LinkSpec)] {
        self.phases.phases()
    }

    /// The link behaviour in force at `now`.
    pub fn spec_at(&self, now: SimInstant) -> LinkSpec {
        self.phases.at(now)
    }

    /// Instantiates the [`Medium`] for this schedule.
    pub fn build(self) -> DriftingNetwork {
        DriftingNetwork {
            schedule: self,
            stats: NetworkStats::default(),
        }
    }
}

/// A full mesh whose every directed link follows a [`DriftSchedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct DriftingNetwork {
    schedule: DriftSchedule,
    stats: NetworkStats,
}

impl DriftingNetwork {
    /// The schedule this network was built from.
    pub fn schedule(&self) -> &DriftSchedule {
        &self.schedule
    }

    /// Counters accumulated since construction.
    pub fn stats(&self) -> NetworkStats {
        self.stats
    }
}

impl Medium for DriftingNetwork {
    fn transmit(
        &mut self,
        now: SimInstant,
        from: NodeId,
        to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Verdict {
        self.transmit_fate(now, from, to, wire_bytes, rng).into()
    }

    fn transmit_fate(
        &mut self,
        now: SimInstant,
        _from: NodeId,
        _to: NodeId,
        wire_bytes: usize,
        rng: &mut SimRng,
    ) -> Fate {
        self.stats.offered += 1;
        let fate = self.schedule.spec_at(now).sample_fate(rng);
        self.stats.record_fate(fate, wire_bytes);
        fate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    #[test]
    fn overlay_specs_keep_duplicating_through_the_drift_medium() {
        let mut net = DriftSchedule::new(
            LinkSpec::lossy(SimDuration::from_millis(1), 0.0).with_duplication(1.0),
        )
        .build();
        let mut rng = SimRng::seed_from(21);
        let fate = net.transmit_fate(SimInstant::ZERO, NodeId(0), NodeId(1), 50, &mut rng);
        assert_eq!(fate.copies(), 2, "duplication overlay must survive drift");
        assert_eq!(net.stats().duplicated, 1);
        assert_eq!(net.stats().delivered, 1);
        assert_eq!(net.stats().delivered_bytes, 100);
        // The single-delivery view collapses to the first copy.
        assert!(net
            .transmit(SimInstant::ZERO, NodeId(0), NodeId(1), 50, &mut rng)
            .is_delivered());
    }

    #[test]
    fn schedule_reports_the_active_phase() {
        let harsh = LinkSpec::from_paper_tuple(100.0, 0.1);
        let schedule =
            DriftSchedule::new(harsh).then_at(SimInstant::from_secs_f64(60.0), LinkSpec::lan());
        assert_eq!(schedule.phases().len(), 2);
        assert_eq!(schedule.spec_at(SimInstant::ZERO), harsh);
        assert_eq!(schedule.spec_at(SimInstant::from_secs_f64(59.999)), harsh);
        assert_eq!(
            schedule.spec_at(SimInstant::from_secs_f64(60.0)),
            LinkSpec::lan()
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn out_of_order_phases_panic() {
        let _ = DriftSchedule::new(LinkSpec::perfect())
            .then_at(SimInstant::from_secs_f64(10.0), LinkSpec::lan())
            .then_at(SimInstant::from_secs_f64(5.0), LinkSpec::perfect());
    }

    #[test]
    fn drifting_network_changes_loss_behaviour_mid_run() {
        // Phase 1 loses everything, phase 2 nothing.
        let mut net = DriftSchedule::new(LinkSpec::lossy(SimDuration::ZERO, 1.0))
            .then_at(SimInstant::from_secs_f64(10.0), LinkSpec::perfect())
            .build();
        let mut rng = SimRng::seed_from(3);
        for i in 0..100u64 {
            let verdict = net.transmit(
                SimInstant::ZERO + SimDuration::from_millis(i),
                NodeId(0),
                NodeId(1),
                10,
                &mut rng,
            );
            assert_eq!(verdict, Verdict::Dropped);
        }
        for i in 0..100u64 {
            let verdict = net.transmit(
                SimInstant::from_secs_f64(10.0) + SimDuration::from_millis(i),
                NodeId(0),
                NodeId(1),
                10,
                &mut rng,
            );
            assert!(verdict.is_delivered());
        }
        let stats = net.stats();
        assert_eq!(stats.offered, 200);
        assert_eq!(stats.lost, 100);
        assert_eq!(stats.delivered, 100);
    }

    #[test]
    fn drifting_network_changes_delay_mid_run() {
        let mut net = DriftSchedule::new(LinkSpec::lossy(SimDuration::from_millis(100), 0.0))
            .then_at(
                SimInstant::from_secs_f64(5.0),
                LinkSpec::lossy(SimDuration::from_millis(1), 0.0),
            )
            .build();
        let mut rng = SimRng::seed_from(4);
        let sample_mean = |net: &mut DriftingNetwork, rng: &mut SimRng, at: SimInstant| {
            let n = 5_000;
            let total: f64 = (0..n)
                .map(|_| match net.transmit(at, NodeId(0), NodeId(1), 1, rng) {
                    Verdict::Deliver { delay } => delay.as_secs_f64(),
                    Verdict::Dropped => 0.0,
                })
                .sum();
            total / n as f64
        };
        let before = sample_mean(&mut net, &mut rng, SimInstant::ZERO);
        let after = sample_mean(&mut net, &mut rng, SimInstant::from_secs_f64(6.0));
        assert!((before - 0.1).abs() < 0.01, "before {before}");
        assert!((after - 0.001).abs() < 0.0005, "after {after}");
    }
}
