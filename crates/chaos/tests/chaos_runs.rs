//! End-to-end chaos runs: every fault-plan family against the paper's
//! three services, plus the weakened-detector detection demo.

use sle_chaos::{
    run_plan, shrink_plan, ChaosConfig, FaultAction, FaultPlan, PlanKind, TraceEventKind,
    ViolationKind,
};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_sim::actor::NodeId;
use sle_sim::time::SimDuration;

fn config(algorithm: ElectorKind, seed: u64) -> ChaosConfig {
    ChaosConfig::new(algorithm, 5)
        .with_duration(SimDuration::from_secs(40))
        .with_seed(seed)
}

#[test]
fn every_plan_family_passes_on_every_service() {
    for algorithm in ElectorKind::all() {
        for kind in PlanKind::all() {
            let chaos = config(algorithm, 77);
            let plan = kind.generate(chaos.nodes, chaos.duration, chaos.link, 77);
            let report = run_plan(&chaos, &plan);
            assert!(
                report.ok(),
                "{algorithm} / {}: {:#?}",
                kind.name(),
                report.violations
            );
            assert!(
                report.final_leader.is_some(),
                "{algorithm} / {}: no final leader",
                kind.name()
            );
        }
    }
}

#[test]
fn partition_drops_traffic_and_heals_back_to_one_leader() {
    let chaos = config(ElectorKind::OmegaL, 3);
    let plan = FaultPlan::new("split-heal")
        .at(
            12.0,
            FaultAction::Partition(vec![
                vec![NodeId(0), NodeId(1)],
                vec![NodeId(2), NodeId(3), NodeId(4)],
            ]),
        )
        .at(24.0, FaultAction::Heal);
    let report = run_plan(&chaos, &plan);
    assert!(report.ok(), "{:#?}", report.violations);
    assert!(
        report.network.partitioned > 0,
        "the partition never dropped a message"
    );
    assert!(report.final_leader.is_some(), "no reconvergence after heal");
}

#[test]
fn duplication_overlay_actually_duplicates_datagrams() {
    let chaos = config(ElectorKind::OmegaLc, 5);
    let overlay = chaos
        .link
        .with_duplication(0.3)
        .with_jitter(SimDuration::from_millis(40));
    let plan = FaultPlan::new("dup-window")
        .at(10.0, FaultAction::SetLink(overlay))
        .at(25.0, FaultAction::SetLink(chaos.link));
    let report = run_plan(&chaos, &plan);
    assert!(report.ok(), "{:#?}", report.violations);
    assert!(
        report.network.duplicated > 0,
        "the duplication overlay never fired"
    );
}

#[test]
fn mid_run_leave_and_rejoin_of_the_leader_is_survived() {
    // Node 0 usually wins the initial election (smallest id / earliest
    // accusation rank); make it leave voluntarily and come back.
    let chaos = config(ElectorKind::OmegaLc, 11);
    let plan = FaultPlan::new("leader-leaves")
        .at(12.0, FaultAction::Leave(NodeId(0)))
        .at(22.0, FaultAction::Join(NodeId(0)));
    let report = run_plan(&chaos, &plan);
    assert!(report.ok(), "{:#?}", report.violations);
    let left = report
        .trace
        .iter()
        .any(|event| matches!(event.kind, TraceEventKind::Left { node: NodeId(0) }));
    let joined = report
        .trace
        .iter()
        .any(|event| matches!(event.kind, TraceEventKind::Joined { node: NodeId(0) }));
    assert!(left && joined, "churn was not applied");
    assert!(report.final_leader.is_some());
}

#[test]
fn weakened_detector_is_caught_and_shrunk_to_a_minimal_reproducer() {
    // Test-only weakening: a detection bound of 40 ms over a 25 ms-mean
    // lossy link. The shift cannot clear the delay tail, so the detector
    // keeps falsely suspecting the (alive) leader — exactly the class of
    // defect the checker exists to catch.
    let weakened = ChaosConfig::new(ElectorKind::OmegaLc, 3)
        .with_duration(SimDuration::from_secs(30))
        .with_qos(
            QosSpec::new(
                SimDuration::from_millis(40),
                SimDuration::from_secs(3600),
                0.999,
            )
            .unwrap(),
        )
        .with_link(LinkSpec::from_paper_tuple(25.0, 0.1));
    let plan = PlanKind::DriftStep.generate(3, weakened.duration, weakened.link, 5);
    let report = run_plan(&weakened, &plan);
    assert!(
        !report.ok(),
        "the weakened detector must violate invariants"
    );
    assert!(
        report.violations.iter().any(|violation| violation.kind
            == ViolationKind::UnjustifiedDemotion
            || violation.kind == ViolationKind::MistakeRecurrenceExceeded),
        "unexpected violation mix: {:#?}",
        report.violations
    );
    // The faults in the plan are irrelevant to this failure: the shrinker
    // proves it by reducing the reproducer to the empty plan (the restore
    // action left alone is a no-op and must not shield the failure with a
    // settle window).
    let shrunk = shrink_plan(&weakened, &plan);
    assert!(
        shrunk.plan.is_empty(),
        "shrinking kept irrelevant actions: {:?}",
        shrunk.plan
    );
    assert!(!run_plan(&weakened, &shrunk.plan).ok());
}

#[test]
fn sweep_over_multiple_seeds_stays_clean() {
    // A narrow but real sweep (2 seeds x 6 families x 1 algorithm) through
    // the public sweep API, as the CI smoke job runs it.
    let sweep = sle_chaos::SweepConfig::new().with_seeds(2).with_nodes(4);
    let sweep = sle_chaos::SweepConfig {
        algorithms: vec![ElectorKind::OmegaL],
        duration: SimDuration::from_secs(35),
        ..sweep
    };
    let summary = sle_chaos::run_sweep(&sweep);
    assert_eq!(summary.runs, 2 * 6);
    assert!(summary.ok(), "{}", summary.render());
}
