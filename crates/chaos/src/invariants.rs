//! Machine-checked protocol invariants, replayed over a chaos-run trace.
//!
//! The checker encodes the properties the paper claims (with the section
//! that claims them):
//!
//! * **Eventual agreement** (§5, leader availability `P_leader`; §6.2):
//!   whenever the network is whole and no fault has happened for a settle
//!   window, all OK group members must share a common alive leader.
//! * **Leader stability** (§6.3/§6.4, services S2/S3): a commonly agreed
//!   leader that stays alive, stays a member and stays connected must not
//!   be demoted. S1 (Ωid) is *exempt by design* — its instability under
//!   rejoining small ids is exactly what the paper measures.
//! * **Mistake-recurrence QoS** (§3, `T_MR^L`): unjustified demotions are
//!   FD mistakes; their number over the run must not exceed the budget the
//!   QoS allows (one, plus one per `T_MR` of run time). Also S2/S3 only.
//! * **No two simultaneous stable leaders in one partition component**
//!   (§2, the service's very specification): two OK nodes of the same
//!   component must never *both* consider themselves leader beyond the
//!   settle tolerance. Leaders in different components are allowed — that
//!   is what a partition means.
//!
//! Transients are unavoidable in an asynchronous system, so every invariant
//! is enforced only outside a *settle window* after each disruption (fault
//! injection, crash, recovery, churn, topology change): an eventual
//! property checked as "must hold within `settle` of the system quieting
//! down".

use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::trace::{TraceEvent, TraceEventKind};

/// What to check a trace against.
#[derive(Debug, Clone)]
pub struct InvariantSpec {
    /// The election algorithm under test (decides whether the stability and
    /// mistake-recurrence invariants apply).
    pub algorithm: ElectorKind,
    /// Number of workstations.
    pub nodes: usize,
    /// The failure-detection QoS the group joined with (source of the
    /// mistake budget).
    pub qos: QosSpec,
    /// The settle window: how long after a disruption the invariants are
    /// suspended, and how long a bad state may persist before it counts.
    pub settle: SimDuration,
    /// End of the checked run.
    pub end: SimInstant,
}

impl InvariantSpec {
    /// Whether the stability-family invariants apply to this algorithm
    /// (they do not to Ωid, the paper's deliberately unstable baseline).
    pub fn stability_applies(&self) -> bool {
        !matches!(self.algorithm, ElectorKind::OmegaId)
    }

    /// The number of unjustified demotions the mistake-recurrence QoS
    /// tolerates over this run: one transient, plus one per `T_MR^L` of run
    /// time (for the paper's 100-day bound and minutes-long runs: one).
    pub fn mistake_budget(&self) -> u64 {
        let span = self.end.saturating_since(SimInstant::ZERO).as_secs_f64();
        let recurrence = self.qos.mistake_recurrence().as_secs_f64().max(1e-9);
        1 + (span / recurrence) as u64
    }
}

/// The class of a detected violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// OK members of a whole network failed to agree on an alive leader
    /// within the settle window.
    NoAgreement,
    /// A commonly agreed leader was demoted while alive, a member, and
    /// connected — in quiet time, with no conceivable cause.
    UnjustifiedDemotion,
    /// More unjustified demotions than the mistake-recurrence QoS allows.
    MistakeRecurrenceExceeded,
    /// Two OK nodes of the same partition component both considered
    /// themselves leader beyond the settle tolerance.
    TwoStableLeaders,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::NoAgreement => write!(f, "no-agreement"),
            ViolationKind::UnjustifiedDemotion => write!(f, "unjustified-demotion"),
            ViolationKind::MistakeRecurrenceExceeded => write!(f, "mistake-recurrence-exceeded"),
            ViolationKind::TwoStableLeaders => write!(f, "two-stable-leaders"),
        }
    }
}

/// One invariant violation found in a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Which invariant broke.
    pub kind: ViolationKind,
    /// When it broke (virtual time).
    pub at: SimInstant,
    /// Human-readable specifics (who, about whom).
    pub details: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{} @ {:.3}s] {}",
            self.kind,
            self.at.as_secs_f64(),
            self.details
        )
    }
}

/// Component-id marker for nodes isolated by a partition.
const ISOLATED_BASE: u32 = 1_000_000;

struct CheckState {
    up: Vec<bool>,
    participant: Vec<bool>,
    views: Vec<Option<sle_core::ProcessId>>,
    component: Vec<u32>,
    partitioned: bool,
    last_disruption: SimInstant,
    agreement: Option<sle_core::ProcessId>,
    last_agreed: Option<sle_core::ProcessId>,
    lost_since: SimInstant,
    /// Whether anything since the loss of the last agreement justifies the
    /// previous leader being replaced (it crashed, left, or a partition
    /// intervened).
    demotion_justified: bool,
    agreement_flagged: bool,
    /// Dual-leadership pairs already reported; a pair is cleared (and may
    /// be reported again) only once one of its nodes stops self-leading —
    /// one persistent condition is one violation.
    flagged_pairs: std::collections::BTreeSet<(u32, u32)>,
    self_led_since: Vec<Option<SimInstant>>,
    mistakes: u64,
}

impl CheckState {
    fn new(nodes: usize) -> Self {
        CheckState {
            up: vec![true; nodes],
            participant: vec![true; nodes],
            views: vec![None; nodes],
            component: vec![0; nodes],
            partitioned: false,
            last_disruption: SimInstant::ZERO,
            agreement: None,
            last_agreed: None,
            lost_since: SimInstant::ZERO,
            demotion_justified: false,
            agreement_flagged: false,
            flagged_pairs: std::collections::BTreeSet::new(),
            self_led_since: vec![None; nodes],
            mistakes: 0,
        }
    }

    /// Marks `node` as no longer self-leading, re-arming the two-leaders
    /// check for every pair it was part of.
    fn stop_self_leading(&mut self, index: usize) {
        if index < self.self_led_since.len() {
            self.self_led_since[index] = None;
        }
        let id = index as u32;
        self.flagged_pairs.retain(|&(a, b)| a != id && b != id);
    }

    fn ok_member(&self, node: NodeId) -> bool {
        self.up.get(node.index()).copied().unwrap_or(false)
            && self.participant.get(node.index()).copied().unwrap_or(false)
    }

    /// The commonly agreed alive leader: *every* OK member reports the same
    /// leader and the leader's node is itself OK. Stricter than the
    /// harness's `MetricsCollector` (which excludes members without a view
    /// from its availability metric): here a member stuck with no leader
    /// view counts as disagreement, so a detector that leaves one node
    /// permanently leaderless is an agreement failure, not a blind spot.
    /// Freshly (re)joined members get the settle window that follows their
    /// join/recovery disruption to announce. Meaningless while partitioned.
    fn compute_agreement(&self) -> Option<sle_core::ProcessId> {
        if self.partitioned {
            return None;
        }
        let mut agreed: Option<sle_core::ProcessId> = None;
        let mut members = 0usize;
        for index in 0..self.views.len() {
            if !self.ok_member(NodeId(index as u32)) {
                continue;
            }
            members += 1;
            let Some(view) = self.views[index] else {
                return None; // an OK member with no leader view: no agreement
            };
            match agreed {
                None => agreed = Some(view),
                Some(current) if current == view => {}
                _ => return None,
            }
        }
        if members == 0 {
            return None;
        }
        agreed.filter(|leader| self.ok_member(leader.node))
    }

    fn disrupt(&mut self, at: SimInstant) {
        self.last_disruption = at;
        // New transients are expected; allow the agreement stretch to be
        // re-flagged once the post-disruption settle window has passed
        // again. (Dual-leadership pairs stay flagged: the condition did not
        // end, so re-reporting it would be a duplicate.)
        self.agreement_flagged = false;
    }
}

/// Replays `trace` and returns every invariant violation found.
///
/// The trace must be chronological (which any trace produced by
/// [`TraceRecorder`](crate::trace::TraceRecorder) during a simulation run
/// is).
pub fn check_trace(trace: &[TraceEvent], spec: &InvariantSpec) -> Vec<Violation> {
    let mut state = CheckState::new(spec.nodes);
    let mut violations = Vec::new();
    for event in trace {
        debug_assert!(event.at <= spec.end, "trace event past the declared end");
        interval_checks(&mut state, event.at, spec, &mut violations);
        apply_event(&mut state, event);
        refresh_agreement(&mut state, event.at, spec, &mut violations);
    }
    interval_checks(&mut state, spec.end, spec, &mut violations);
    if spec.stability_applies() && state.mistakes > spec.mistake_budget() {
        violations.push(Violation {
            kind: ViolationKind::MistakeRecurrenceExceeded,
            at: spec.end,
            details: format!(
                "{} unjustified demotions observed, but the QoS (T_MR = {}) allows at most {} \
                 over this run",
                state.mistakes,
                spec.qos.mistake_recurrence(),
                spec.mistake_budget()
            ),
        });
    }
    violations
}

/// Checks the state that was in force on the interval ending at `now`.
fn interval_checks(
    state: &mut CheckState,
    now: SimInstant,
    spec: &InvariantSpec,
    violations: &mut Vec<Violation>,
) {
    // Eventual agreement: the whole network, quiet for a settle window,
    // must have converged on a common alive leader — vacuous while nobody
    // is an OK member (e.g. the sole member left and has not rejoined yet).
    let any_ok_member = (0..spec.nodes).any(|index| state.ok_member(NodeId(index as u32)));
    if any_ok_member && !state.partitioned && state.agreement.is_none() && !state.agreement_flagged
    {
        let deadline = state.lost_since.max(state.last_disruption) + spec.settle;
        if deadline < now {
            let votes: Vec<String> = (0..spec.nodes)
                .filter(|&index| state.ok_member(NodeId(index as u32)))
                .map(|index| match state.views[index] {
                    Some(leader) => format!("n{index} -> {leader}"),
                    None => format!("n{index} -> (no leader)"),
                })
                .collect();
            violations.push(Violation {
                kind: ViolationKind::NoAgreement,
                at: deadline,
                details: format!(
                    "OK members still disagree {} after the last disruption: {}",
                    spec.settle,
                    votes.join(", ")
                ),
            });
            state.agreement_flagged = true;
        }
    }

    // No two simultaneous stable leaders within one component. Each pair is
    // reported once per episode (see `CheckState::flagged_pairs`).
    let mut leaders: Vec<(NodeId, u32, SimInstant)> = Vec::new();
    for index in 0..spec.nodes {
        let node = NodeId(index as u32);
        if !state.ok_member(node) {
            continue;
        }
        if let Some(since) = state.self_led_since[index] {
            leaders.push((node, state.component[index], since));
        }
    }
    for (i, &(node_a, comp_a, since_a)) in leaders.iter().enumerate() {
        for &(node_b, comp_b, since_b) in &leaders[i + 1..] {
            if comp_a != comp_b {
                continue;
            }
            let pair = (node_a.0.min(node_b.0), node_a.0.max(node_b.0));
            if state.flagged_pairs.contains(&pair) {
                continue;
            }
            let stable_from = since_a.max(since_b).max(state.last_disruption) + spec.settle;
            if stable_from < now {
                violations.push(Violation {
                    kind: ViolationKind::TwoStableLeaders,
                    at: stable_from,
                    details: format!(
                        "{node_a} and {node_b} both consider themselves leader of the same \
                         component, continuously for over {}",
                        spec.settle
                    ),
                });
                state.flagged_pairs.insert(pair);
            }
        }
    }
}

fn apply_event(state: &mut CheckState, event: &TraceEvent) {
    let at = event.at;
    match &event.kind {
        TraceEventKind::View { node, leader } => {
            let index = node.index();
            if index >= state.views.len() {
                return;
            }
            state.views[index] = *leader;
            let leads_itself = leader.map(|l| l.node) == Some(*node);
            if leads_itself {
                state.self_led_since[index] = state.self_led_since[index].or(Some(at));
            } else {
                // Ends this node's dual-leadership episodes, re-arming the
                // check for any future one it takes part in.
                state.stop_self_leading(index);
            }
        }
        TraceEventKind::Crashed { node } => {
            let index = node.index();
            if index < state.up.len() {
                state.up[index] = false;
                state.views[index] = None;
                state.stop_self_leading(index);
            }
            if state.last_agreed.map(|l| l.node) == Some(*node) {
                state.demotion_justified = true;
            }
            state.disrupt(at);
        }
        TraceEventKind::Recovered { node } => {
            let index = node.index();
            if index < state.up.len() {
                state.up[index] = true;
                state.views[index] = None;
                // A recovered workstation re-establishes its auto-joins, so
                // it is a group member again even if it had voluntarily left
                // in its previous life.
                state.participant[index] = true;
            }
            state.disrupt(at);
        }
        TraceEventKind::Left { node } => {
            let index = node.index();
            if index < state.participant.len() {
                state.participant[index] = false;
                state.views[index] = None;
                state.stop_self_leading(index);
            }
            if state.last_agreed.map(|l| l.node) == Some(*node) {
                state.demotion_justified = true;
            }
            state.disrupt(at);
        }
        TraceEventKind::Joined { node } => {
            let index = node.index();
            if index < state.participant.len() {
                state.participant[index] = true;
            }
            state.disrupt(at);
        }
        TraceEventKind::Partitioned { components } => {
            state.partitioned = true;
            for index in 0..state.component.len() {
                state.component[index] = ISOLATED_BASE + index as u32;
            }
            for (id, component) in components.iter().enumerate() {
                for node in component {
                    if node.index() < state.component.len() {
                        state.component[node.index()] = id as u32;
                    }
                }
            }
            state.demotion_justified = true;
            state.disrupt(at);
        }
        TraceEventKind::Healed => {
            state.partitioned = false;
            for comp in &mut state.component {
                *comp = 0;
            }
            state.demotion_justified = true;
            state.disrupt(at);
        }
        TraceEventKind::LinkChanged => {
            state.disrupt(at);
        }
    }
}

fn refresh_agreement(
    state: &mut CheckState,
    now: SimInstant,
    spec: &InvariantSpec,
    violations: &mut Vec<Violation>,
) {
    let new = state.compute_agreement();
    if new == state.agreement {
        return;
    }
    match (state.agreement, new) {
        (Some(lost), None) => {
            state.lost_since = now;
            // If the leader is *now* not OK (or a partition started), the
            // loss itself justifies whatever replacement follows.
            state.demotion_justified = !state.ok_member(lost.node) || state.partitioned;
        }
        (old, Some(formed)) => {
            let previous = old.or(state.last_agreed);
            if let Some(previous) = previous {
                let previous_ok = state.ok_member(previous.node);
                if previous != formed && previous_ok && !state.demotion_justified {
                    // Inside the settle window after a disruption (including
                    // the run's start, where partial discovery makes interim
                    // agreements flip), a demotion is an expected transient.
                    // In quiet time it is an FD mistake: counted against the
                    // QoS budget and, for the stable services, a stability
                    // violation outright.
                    if state.last_disruption + spec.settle < now {
                        state.mistakes += 1;
                        if spec.stability_applies() {
                            violations.push(Violation {
                                kind: ViolationKind::UnjustifiedDemotion,
                                at: now,
                                details: format!(
                                    "commonly agreed leader {previous} was demoted in favour of \
                                     {formed} while alive, a member and connected"
                                ),
                            });
                        }
                    }
                }
            }
            state.last_agreed = Some(formed);
            state.demotion_justified = false;
            state.agreement_flagged = false;
        }
        (None, None) => {}
    }
    state.agreement = new;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_core::ProcessId;

    fn spec(algorithm: ElectorKind, end_secs: f64) -> InvariantSpec {
        InvariantSpec {
            algorithm,
            nodes: 3,
            qos: QosSpec::paper_default(),
            settle: SimDuration::from_secs(10),
            end: SimInstant::from_secs_f64(end_secs),
        }
    }

    fn view(at: f64, node: u32, leader: Option<u32>) -> TraceEvent {
        TraceEvent {
            at: SimInstant::from_secs_f64(at),
            kind: TraceEventKind::View {
                node: NodeId(node),
                leader: leader.map(|l| ProcessId::new(NodeId(l), 0)),
            },
        }
    }

    fn mark(at: f64, kind: TraceEventKind) -> TraceEvent {
        TraceEvent {
            at: SimInstant::from_secs_f64(at),
            kind,
        }
    }

    #[test]
    fn a_quickly_agreeing_group_is_clean() {
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.1, 1, Some(0)),
            view(1.2, 2, Some(0)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn persistent_disagreement_is_a_no_agreement_violation() {
        // Neither view is a self-claim (node 1 believes node 2 leads, node 0
        // believes node 2's colleague does), so only the agreement invariant
        // trips — reported once, with the per-node votes.
        let trace = vec![view(1.0, 0, Some(1)), view(1.0, 1, Some(2))];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaL, 60.0));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind, ViolationKind::NoAgreement);
        assert!(violations[0].details.contains("n0 -> n1.p0"));
        assert!(violations[0].to_string().contains("no-agreement"));
    }

    #[test]
    fn never_electing_at_all_is_a_no_agreement_violation() {
        let violations = check_trace(&[], &spec(ElectorKind::OmegaLc, 60.0));
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, ViolationKind::NoAgreement);
        assert_eq!(violations[0].at, SimInstant::from_secs_f64(10.0));
    }

    #[test]
    fn a_member_permanently_without_a_leader_view_breaks_agreement() {
        // Two nodes agree, the third announces "no leader" forever: a
        // defective detector has left it leaderless, and the checker must
        // not treat it as still joining indefinitely.
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, None),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind, ViolationKind::NoAgreement);
        assert!(violations[0].details.contains("n2 -> (no leader)"));
    }

    #[test]
    fn crash_justifies_the_demotion() {
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, Some(0)),
            mark(20.0, TraceEventKind::Crashed { node: NodeId(0) }),
            view(21.5, 1, Some(1)),
            view(21.6, 2, Some(1)),
            mark(25.0, TraceEventKind::Recovered { node: NodeId(0) }),
            view(27.0, 0, Some(1)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaL, 60.0));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn quiet_time_demotion_of_an_alive_leader_is_unjustified() {
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, Some(0)),
            // Way past any settle window, with node 0 alive and connected,
            // everyone switches to node 1.
            view(30.0, 0, Some(1)),
            view(30.1, 1, Some(1)),
            view(30.2, 2, Some(1)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].kind, ViolationKind::UnjustifiedDemotion);
        assert!(violations[0].details.contains("n0.p0"));
    }

    #[test]
    fn omega_id_is_exempt_from_stability() {
        let trace = vec![
            view(1.0, 0, Some(1)),
            view(1.0, 1, Some(1)),
            view(1.0, 2, Some(1)),
            view(30.0, 0, Some(0)),
            view(30.1, 1, Some(0)),
            view(30.2, 2, Some(0)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaId, 60.0));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn repeated_mistakes_exceed_the_recurrence_budget() {
        // A weakened detector flip-flopping between two leaders: each flip
        // within a settle window of the previous one is not a stability
        // violation by itself, but the budget catches the recurrence.
        let mut trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, Some(0)),
        ];
        let mut t = 12.0;
        for round in 0..4 {
            let next = if round % 2 == 0 { 1 } else { 0 };
            trace.push(view(t, 0, Some(next)));
            trace.push(view(t + 0.1, 1, Some(next)));
            trace.push(view(t + 0.2, 2, Some(next)));
            t += 8.0;
        }
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::MistakeRecurrenceExceeded),
            "{violations:?}"
        );
    }

    #[test]
    fn two_components_may_each_have_a_leader_but_one_component_may_not() {
        let partition = TraceEventKind::Partitioned {
            components: vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]],
        };
        // Partitioned: node 0 leads itself, node 1 leads the other side.
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, Some(0)),
            mark(15.0, partition.clone()),
            view(17.0, 1, Some(1)),
            view(17.1, 2, Some(1)),
            view(18.0, 0, Some(0)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert!(
            !violations
                .iter()
                .any(|v| v.kind == ViolationKind::TwoStableLeaders),
            "cross-component dual leadership must be allowed: {violations:?}"
        );

        // Same views, but no partition: two self-styled leaders in one
        // component, both stable far past the tolerance.
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(1)),
            view(1.0, 2, Some(1)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::TwoStableLeaders),
            "{violations:?}"
        );
    }

    #[test]
    fn voluntary_leave_justifies_the_demotion_and_leavers_do_not_block_agreement() {
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, Some(0)),
            mark(20.0, TraceEventKind::Left { node: NodeId(0) }),
            view(21.0, 1, Some(1)),
            view(21.1, 2, Some(1)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaL, 60.0));
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn crash_recovery_restores_membership_after_a_voluntary_leave() {
        // n2 leaves, crashes, recovers: the recovered incarnation
        // auto-rejoins, so its dissenting self-leadership must count again
        // — the checker may not silently exclude it forever.
        let trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(0)),
            view(1.0, 2, Some(0)),
            mark(12.0, TraceEventKind::Left { node: NodeId(2) }),
            mark(14.0, TraceEventKind::Crashed { node: NodeId(2) }),
            mark(16.0, TraceEventKind::Recovered { node: NodeId(2) }),
            // Far past the settle window, the rejoined n2 stably claims the
            // leadership for itself while n0 also self-leads.
            view(30.0, 2, Some(2)),
        ];
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 60.0));
        assert!(
            violations
                .iter()
                .any(|v| v.kind == ViolationKind::TwoStableLeaders),
            "a recovered leaver must be checked again: {violations:?}"
        );
    }

    #[test]
    fn persistent_dual_leadership_is_reported_once_not_per_view_event() {
        let mut trace = vec![
            view(1.0, 0, Some(0)),
            view(1.0, 1, Some(1)),
            view(1.0, 2, Some(0)),
        ];
        // A stream of unrelated view flaps from n2 — sometimes briefly
        // claiming itself, always retracting within the settle tolerance —
        // while the n0/n1 dual leadership persists throughout.
        for step in 0..50 {
            let t = 15.0 + 2.0 * step as f64;
            trace.push(view(t, 2, Some(2)));
            trace.push(view(t + 1.0, 2, Some(if step % 2 == 0 { 1 } else { 0 })));
        }
        let violations = check_trace(&trace, &spec(ElectorKind::OmegaLc, 130.0));
        let dual: Vec<&Violation> = violations
            .iter()
            .filter(|v| v.kind == ViolationKind::TwoStableLeaders)
            .collect();
        assert_eq!(
            dual.len(),
            1,
            "one persistent condition must be one violation: {violations:?}"
        );
        assert!(dual[0].details.contains("n0") && dual[0].details.contains("n1"));
    }

    #[test]
    fn mistake_budget_scales_with_run_length() {
        let short = spec(ElectorKind::OmegaLc, 60.0);
        assert_eq!(short.mistake_budget(), 1);
        let mut long = spec(ElectorKind::OmegaLc, 60.0);
        long.qos =
            QosSpec::new(SimDuration::from_secs(1), SimDuration::from_secs(20), 0.99).unwrap();
        assert_eq!(long.mistake_budget(), 4);
        assert!(long.stability_applies());
        assert!(!InvariantSpec {
            algorithm: ElectorKind::OmegaId,
            ..long
        }
        .stability_applies());
    }
}
