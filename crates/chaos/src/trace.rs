//! The event trace a chaos run leaves behind.
//!
//! A [`TraceRecorder`] is a simulator [`Observer`] that timestamps
//! everything the invariant checker needs: each node's announced leader
//! view, crashes and recoveries, and — appended by the chaos engine itself,
//! which is the only party that knows — voluntary membership churn and
//! topology changes (partitions, heals, link overlays). The result is a
//! single chronological `Vec<TraceEvent>` the checker replays after the
//! run.

use sle_core::{GroupId, ProcessId, ServiceEvent};
use sle_sim::actor::NodeId;
use sle_sim::observer::Observer;
use sle_sim::time::SimInstant;

/// One observable event of a chaos run.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A node announced a (possibly empty) leader view for the group.
    View {
        /// The announcing node.
        node: NodeId,
        /// Its new leader view.
        leader: Option<ProcessId>,
    },
    /// A workstation crashed.
    Crashed {
        /// The crashed node.
        node: NodeId,
    },
    /// A workstation recovered (and auto-rejoins the group).
    Recovered {
        /// The recovered node.
        node: NodeId,
    },
    /// Every local process of this workstation voluntarily left the group.
    Left {
        /// The departing node.
        node: NodeId,
    },
    /// The workstation (re)joined the group with a fresh candidate process.
    Joined {
        /// The joining node.
        node: NodeId,
    },
    /// The network was partitioned into these components.
    Partitioned {
        /// The components; nodes listed in none are isolated.
        components: Vec<Vec<NodeId>>,
    },
    /// The partition was healed.
    Healed,
    /// The behaviour of the links changed (overlay applied or removed).
    LinkChanged,
}

/// A trace event bound to the instant it happened.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// When it happened (virtual time).
    pub at: SimInstant,
    /// What happened.
    pub kind: TraceEventKind,
}

/// Records the chronological event trace of one chaos run.
#[derive(Debug)]
pub struct TraceRecorder {
    group: GroupId,
    events: Vec<TraceEvent>,
    /// When set, crash/recovery marks are mirrored into this protocol
    /// event ring, so a drained `sle-obs` trace is as complete as what the
    /// real-time runtime produces (whose `Cluster::crash`/`recover` push
    /// the same events) and passes the invariant checker after conversion.
    proto_mirror: Option<sle_obs::TraceRing>,
}

impl TraceRecorder {
    /// A recorder for leader views of `group`.
    pub fn new(group: GroupId) -> Self {
        TraceRecorder {
            group,
            events: Vec::new(),
            proto_mirror: None,
        }
    }

    /// Mirrors crash/recovery marks into `ring` (see `proto_mirror`).
    pub fn with_proto_mirror(mut self, ring: sle_obs::TraceRing) -> Self {
        self.proto_mirror = Some(ring);
        self
    }

    /// Appends an engine-side event (churn, topology) to the trace.
    pub fn mark(&mut self, at: SimInstant, kind: TraceEventKind) {
        self.events.push(TraceEvent { at, kind });
    }

    /// The trace so far.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consumes the recorder, returning the full trace.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

impl Observer<ServiceEvent> for TraceRecorder {
    fn node_crashed(&mut self, now: SimInstant, node: NodeId) {
        self.mark(now, TraceEventKind::Crashed { node });
        if let Some(ring) = &self.proto_mirror {
            ring.push(node, now, sle_obs::ProtoEvent::Crashed);
        }
    }

    fn node_recovered(&mut self, now: SimInstant, node: NodeId, _incarnation: u64) {
        self.mark(now, TraceEventKind::Recovered { node });
        if let Some(ring) = &self.proto_mirror {
            ring.push(node, now, sle_obs::ProtoEvent::Recovered);
        }
    }

    fn event_emitted(&mut self, now: SimInstant, node: NodeId, event: &ServiceEvent) {
        let ServiceEvent::LeaderChanged { group, leader } = event;
        if *group == self.group {
            self.mark(
                now,
                TraceEventKind::View {
                    node,
                    leader: *leader,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_filters_foreign_groups_and_orders_events() {
        let mut recorder = TraceRecorder::new(GroupId(1));
        let t = SimInstant::from_secs_f64(1.0);
        recorder.event_emitted(
            t,
            NodeId(0),
            &ServiceEvent::LeaderChanged {
                group: GroupId(1),
                leader: Some(ProcessId::new(NodeId(0), 0)),
            },
        );
        recorder.event_emitted(
            t,
            NodeId(0),
            &ServiceEvent::LeaderChanged {
                group: GroupId(2),
                leader: None,
            },
        );
        recorder.node_crashed(SimInstant::from_secs_f64(2.0), NodeId(1));
        recorder.node_recovered(SimInstant::from_secs_f64(3.0), NodeId(1), 1);
        recorder.mark(SimInstant::from_secs_f64(4.0), TraceEventKind::Healed);
        let events = recorder.into_events();
        assert_eq!(events.len(), 4);
        assert!(matches!(events[0].kind, TraceEventKind::View { .. }));
        assert!(matches!(
            events[1].kind,
            TraceEventKind::Crashed { node: NodeId(1) }
        ));
        assert!(matches!(
            events[2].kind,
            TraceEventKind::Recovered { node: NodeId(1) }
        ));
        assert_eq!(events[3].kind, TraceEventKind::Healed);
    }
}
