//! The parallel chaos driver: [`run_plan`](crate::run_plan) semantics on the
//! sharded [`ParWorld`] simulator.
//!
//! [`run_plan_parallel`] runs a fault plan across `workers` sim workers and
//! produces a [`ChaosReport`] whose every field is **independent of the
//! worker count**: the same `(config, plan)` pair yields identical traces,
//! violations, network counters, metrics and protocol traces for
//! `workers` ∈ {1, 2, 8, …}. Determinism rests on three pillars:
//!
//! * `ParWorld` executes events in a canonical, partition-independent order
//!   (see [`sle_sim::par`]), so the per-node event histories match for any
//!   sharding;
//! * per-shard trace recorders are merged by a stable sort on
//!   `(time, node)` — simultaneous events of one node stay in their
//!   canonical order because one node always lives on exactly one shard;
//! * the shared protocol-trace ring is drained and re-sequenced the same
//!   way, so ring sequence numbers do not leak scheduling order.
//!
//! Lookahead comes from the link model's minimum delay
//! ([`LinkSpec::with_min_delay`](sle_net::link::LinkSpec::with_min_delay)):
//! with a zero floor (the paper's exponential delays) `ParWorld` falls back
//! to sequential canonical-order execution, still deterministic, just
//! without parallel speedup.

use sle_core::{JoinConfig, ServiceConfig, ServiceNode};
use sle_net::link::LinkSpec;
use sle_net::network::{NetworkModel, NetworkStats, SimulatedNetwork};
use sle_obs::{Registry, TraceDrain, TraceRing};
use sle_sim::actor::NodeId;
use sle_sim::par::{ParWorld, SharedActorFactory};
use sle_sim::time::SimInstant;

use crate::engine::{agreed_final_leader, apply_action, EngineWorld, ServiceCall, CHAOS_GROUP};
use crate::engine::{ChaosConfig, ChaosReport};
use crate::invariants::{check_trace, InvariantSpec};
use crate::plan::FaultPlan;
use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};

/// Protocol-trace ring capacity for parallel runs. Sized so a typical run
/// never wraps: as long as fewer events than this are pushed, every slot is
/// written at most once, drains lose nothing, and the re-sequenced trace is
/// bit-identical for every worker count. An overflowing run drops its
/// oldest events nondeterministically (the drain reports how many).
const PAR_PROTO_TRACE_CAPACITY: usize = 1 << 16;

impl EngineWorld for ParWorld<ServiceNode, SimulatedNetwork> {
    fn now(&self) -> SimInstant {
        ParWorld::now(self)
    }
    fn num_nodes(&self) -> usize {
        ParWorld::num_nodes(self)
    }
    fn is_up(&self, node: NodeId) -> bool {
        ParWorld::is_up(self, node)
    }
    fn service(&self, node: NodeId) -> Option<&ServiceNode> {
        self.actor(node)
    }
    fn schedule_crash(&mut self, node: NodeId, at: SimInstant) {
        ParWorld::schedule_crash(self, node, at);
    }
    fn schedule_recovery(&mut self, node: NodeId, at: SimInstant) {
        ParWorld::schedule_recovery(self, node, at);
    }
    fn with_service(&mut self, node: NodeId, recorder: &mut TraceRecorder, f: ServiceCall<'_>) {
        self.with_actor(node, recorder, f);
    }
    fn partition_matches(&mut self, components: &[Vec<NodeId>]) -> bool {
        self.media()
            .next()
            .expect("a world has at least one shard")
            .partition_matches(components)
    }
    fn set_partition(&mut self, components: &[Vec<NodeId>]) {
        self.for_each_medium(|medium| medium.set_partition(components));
    }
    fn is_partitioned(&mut self) -> bool {
        self.media()
            .next()
            .expect("a world has at least one shard")
            .is_partitioned()
    }
    fn heal_partition(&mut self) {
        self.for_each_medium(SimulatedNetwork::heal_partition);
    }
    fn default_link(&mut self) -> LinkSpec {
        self.media()
            .next()
            .expect("a world has at least one shard")
            .model()
            .default_link()
    }
    fn set_default_link(&mut self, spec: LinkSpec) {
        self.for_each_medium(|medium| medium.set_default_link(spec));
    }
}

/// Runs `plan` under `config` on `workers` sim workers and checks the
/// invariants over the merged trace.
///
/// Deterministic *across worker counts*: the same `(config, plan)` pair
/// produces the same report for any `workers` value (clamped to the node
/// count). Note the report is not expected to equal the sequential
/// [`run_plan`](crate::run_plan)'s byte-for-byte — the parallel simulator
/// orders simultaneous events canonically and draws per-node RNG streams —
/// but it satisfies the same invariants against the same fault schedule.
pub fn run_plan_parallel(config: &ChaosConfig, plan: &FaultPlan, workers: usize) -> ChaosReport {
    let n = config.nodes;
    let algorithm = config.algorithm;
    let qos = config.qos;
    let network = NetworkModel::new(config.link).build(config.seed.wrapping_add(1));
    let registry = Registry::default();
    let ring = TraceRing::new(PAR_PROTO_TRACE_CAPACITY);
    let factory: SharedActorFactory<ServiceNode> = Box::new({
        let registry = registry.clone();
        let ring = ring.clone();
        move |node, _incarnation| {
            let config = ServiceConfig::full_mesh(node, n, algorithm)
                .with_auto_join(CHAOS_GROUP, JoinConfig::candidate().with_qos(qos));
            let mut service = ServiceNode::new(config);
            service.set_instruments(sle_core::NodeInstruments::new(
                &registry,
                ring.clone(),
                node,
            ));
            service
        }
    });
    let mut world: ParWorld<ServiceNode, SimulatedNetwork> =
        ParWorld::new(n, workers.max(1), factory, network, config.seed);
    let workers = world.workers();
    let mut recorders: Vec<TraceRecorder> = (0..workers)
        .map(|_| TraceRecorder::new(CHAOS_GROUP).with_proto_mirror(ring.clone()))
        .collect();
    // Engine-level marks and API-call emissions get their own recorder,
    // always appended *after* the shard recorders in the merge, so
    // same-instant ties between simulated events and injections resolve
    // identically for every worker count.
    let mut engine = TraceRecorder::new(CHAOS_GROUP).with_proto_mirror(ring.clone());
    for timed in plan.actions() {
        world.run_until(timed.at, &mut recorders);
        apply_action(&mut world, &mut engine, &timed.action, qos);
    }
    // Same run-extension rule as the sequential engine: late hand-written
    // actions still get their full quiet tail.
    let end = match plan.last_action_at() {
        Some(last) => config.end().max(last + config.settle + config.settle),
        None => config.end(),
    };
    world.run_until(end, &mut recorders);

    let final_leader = agreed_final_leader(&world);
    let mut network = NetworkStats::default();
    for medium in world.media() {
        network.merge(&medium.stats());
    }
    let events_processed = world.events_processed();
    let trace = merge_traces(recorders, engine);
    let spec = InvariantSpec {
        algorithm,
        nodes: n,
        qos,
        settle: config.settle,
        end,
    };
    let violations = check_trace(&trace, &spec);
    network.publish(&registry, "sim.net");
    let proto = drain_canonical(&ring);
    ChaosReport {
        violations,
        trace,
        network,
        final_leader,
        events_processed,
        metrics: registry.snapshot(),
        proto_trace: proto.events,
        proto_dropped: proto.dropped,
    }
}

/// Merges per-shard recorders (plus the engine's) into one chronological
/// trace. The sort is stable over the concatenation `shard 0, shard 1, …,
/// engine`, and a node's events all come from its one home shard, so
/// same-instant events of one node keep their canonical execution order no
/// matter how nodes were sharded.
fn merge_traces(recorders: Vec<TraceRecorder>, engine: TraceRecorder) -> Vec<TraceEvent> {
    let mut trace: Vec<TraceEvent> = Vec::new();
    for recorder in recorders {
        trace.extend(recorder.into_events());
    }
    trace.extend(engine.into_events());
    trace.sort_by_key(|event| (event.at, trace_node_key(&event.kind)));
    trace
}

/// The node a trace event concerns, as a sort key; network-wide events
/// (which only the engine recorder emits) sort after per-node ties.
fn trace_node_key(kind: &TraceEventKind) -> u32 {
    match kind {
        TraceEventKind::View { node, .. }
        | TraceEventKind::Crashed { node }
        | TraceEventKind::Recovered { node }
        | TraceEventKind::Left { node }
        | TraceEventKind::Joined { node } => node.0,
        TraceEventKind::Partitioned { .. }
        | TraceEventKind::Healed
        | TraceEventKind::LinkChanged => u32::MAX,
    }
}

/// Drains the shared protocol ring into canonical order: sorted by
/// `(time, node, push order)` and re-sequenced from zero. Pushes from one
/// node always happen on its home shard's thread in canonical execution
/// order, so the per-`(time, node)` tie-break by original (monotonic per
/// thread) sequence number is worker-count independent.
fn drain_canonical(ring: &TraceRing) -> TraceDrain {
    let mut drain = ring.drain();
    drain
        .events
        .sort_by_key(|record| (record.at, record.node.0, record.seq));
    for (seq, record) in drain.events.iter_mut().enumerate() {
        record.seq = seq as u64;
    }
    drain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{FaultAction, PlanKind};
    use sle_election::ElectorKind;
    use sle_sim::time::SimDuration;

    /// A chaos link with a 1 ms delivery floor: positive lookahead, so the
    /// epoch (truly parallel) driver engages.
    fn floored_link() -> LinkSpec {
        LinkSpec::from_paper_tuple(10.0, 0.01).with_min_delay(SimDuration::from_millis(1))
    }

    fn assert_reports_equal(a: &ChaosReport, b: &ChaosReport, what: &str) {
        assert_eq!(
            a.events_processed, b.events_processed,
            "{what}: event counts"
        );
        assert_eq!(a.trace, b.trace, "{what}: traces");
        assert_eq!(a.violations, b.violations, "{what}: verdicts");
        assert_eq!(a.network, b.network, "{what}: network counters");
        assert_eq!(a.final_leader, b.final_leader, "{what}: final leader");
        assert_eq!(a.metrics, b.metrics, "{what}: metrics snapshots");
        assert_eq!(a.proto_trace, b.proto_trace, "{what}: protocol traces");
        assert_eq!(a.proto_dropped, b.proto_dropped, "{what}: proto drops");
    }

    #[test]
    fn worker_counts_produce_identical_reports_under_churn() {
        let config = ChaosConfig::new(ElectorKind::OmegaLc, 8)
            .with_link(floored_link())
            .with_duration(SimDuration::from_secs(12));
        let plan = PlanKind::LeaderChurn.generate(8, config.duration, config.link, config.seed);
        let base = run_plan_parallel(&config, &plan, 1);
        assert_eq!(base.proto_dropped, 0, "ring overflowed; grow the capacity");
        assert!(base.events_processed > 0);
        // Identical agreed-leader histories: the View events are part of
        // the trace compared below, and the final agreement matches too.
        for workers in [2, 8] {
            let run = run_plan_parallel(&config, &plan, workers);
            assert_reports_equal(&base, &run, &format!("workers=1 vs {workers}"));
        }
    }

    #[test]
    fn zero_lookahead_falls_back_and_matches_single_worker() {
        // The paper's exponential link has no delivery floor: lookahead is
        // zero and the parallel driver degrades to sequential canonical
        // order — the reports must still match across worker counts.
        let config =
            ChaosConfig::new(ElectorKind::OmegaL, 4).with_duration(SimDuration::from_secs(12));
        let plan = FaultPlan::new("crash-one").at(
            6.0,
            FaultAction::CrashLeader {
                down_for: SimDuration::from_secs(3),
            },
        );
        let a = run_plan_parallel(&config, &plan, 1);
        let b = run_plan_parallel(&config, &plan, 4);
        assert_reports_equal(&a, &b, "zero-lookahead workers=1 vs 4");
        assert!(a.ok(), "{:?}", a.violations);
    }

    #[test]
    fn a_quiet_parallel_run_upholds_every_invariant_for_every_service() {
        for algorithm in ElectorKind::all() {
            let config = ChaosConfig::new(algorithm, 4)
                .with_link(floored_link())
                .with_duration(SimDuration::from_secs(15));
            let report = run_plan_parallel(&config, &FaultPlan::quiet(), 4);
            assert!(report.ok(), "{algorithm}: {:?}", report.violations);
            assert!(report.final_leader.is_some(), "{algorithm}: no leader");
            assert!(report.events_processed > 0);
        }
    }

    #[test]
    fn partitions_reach_every_shard_clone() {
        let config = ChaosConfig::new(ElectorKind::OmegaLc, 6)
            .with_link(floored_link())
            .with_duration(SimDuration::from_secs(18));
        let plan = FaultPlan::new("split-then-heal")
            .at(
                6.0,
                FaultAction::Partition(vec![
                    vec![NodeId(0), NodeId(1), NodeId(2)],
                    vec![NodeId(3), NodeId(4), NodeId(5)],
                ]),
            )
            .at(12.0, FaultAction::Heal);
        let report = run_plan_parallel(&config, &plan, 3);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(
            report.network.partitioned > 0,
            "the partition must drop traffic on every shard's medium clone"
        );
        assert!(report
            .trace
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::Healed)));
    }
}
