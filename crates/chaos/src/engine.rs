//! The chaos engine: runs a [`FaultPlan`] against a simulated service
//! deployment and checks the resulting trace against the protocol
//! invariants.

use std::collections::HashMap;

use sle_core::{
    GroupId, JoinConfig, NodeInstruments, ProcessId, ServiceConfig, ServiceEvent, ServiceMessage,
    ServiceNode,
};
use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_harness::Scenario;
use sle_net::link::LinkSpec;
use sle_net::network::{NetworkModel, NetworkStats, SimulatedNetwork};
use sle_obs::{Registry, Snapshot, TraceRecord, TraceRing};
use sle_sim::actor::{Context, NodeId};
use sle_sim::time::{SimDuration, SimInstant};
use sle_sim::world::World;

use crate::invariants::{check_trace, InvariantSpec, Violation};
use crate::plan::{FaultAction, FaultPlan};
use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};

/// The group every chaos experiment runs in.
pub const CHAOS_GROUP: GroupId = GroupId(1);

/// Capacity of the protocol-event trace ring a chaos run drains into its
/// report: enough for the full event history of a typical run, while a
/// pathological run merely loses its oldest events (the drain reports how
/// many).
const PROTO_TRACE_CAPACITY: usize = 4096;

/// Everything a chaos run needs besides the fault plan itself.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The service version under test (S1 = Ωid, S2 = Ωlc, S3 = Ωl).
    pub algorithm: ElectorKind,
    /// Number of workstations (all join as candidates).
    pub nodes: usize,
    /// Baseline behaviour of every directed link.
    pub link: LinkSpec,
    /// Failure-detection QoS of the join.
    pub qos: QosSpec,
    /// The window within which fault injections land; the engine always
    /// appends a quiet tail of two settle windows after it, so the final
    /// eventual-agreement check has room.
    pub duration: SimDuration,
    /// The invariant checker's settle window (see
    /// [`InvariantSpec::settle`]).
    pub settle: SimDuration,
    /// Seed for everything stochastic (messages, link overlays, plan
    /// resolution).
    pub seed: u64,
}

impl ChaosConfig {
    /// A config with the sweep defaults: a mildly lossy 10 ms network, the
    /// paper's QoS, a 45 s fault window and a 10 s settle window.
    pub fn new(algorithm: ElectorKind, nodes: usize) -> Self {
        ChaosConfig {
            algorithm,
            nodes,
            link: LinkSpec::from_paper_tuple(10.0, 0.01),
            qos: QosSpec::paper_default(),
            duration: SimDuration::from_secs(45),
            settle: SimDuration::from_secs(10),
            seed: 0xC4A0_5EED,
        }
    }

    /// Adopts the workload of a harness [`Scenario`] (algorithm, size, link
    /// behaviour, QoS and seed), so any cell of the paper's figures can be
    /// re-run under a fault plan.
    pub fn from_scenario(scenario: &Scenario) -> Self {
        ChaosConfig {
            algorithm: scenario.algorithm,
            nodes: scenario.nodes,
            link: scenario.link,
            qos: scenario.qos,
            duration: scenario.duration.min(SimDuration::from_secs(120)),
            settle: SimDuration::from_secs(10),
            seed: scenario.seed,
        }
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Overrides the baseline link behaviour.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Overrides the failure-detection QoS.
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = qos;
        self
    }

    /// Overrides the fault window.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the settle window.
    pub fn with_settle(mut self, settle: SimDuration) -> Self {
        self.settle = settle;
        self
    }

    /// End of the run: the fault window plus a quiet tail of two settle
    /// windows.
    pub fn end(&self) -> SimInstant {
        SimInstant::ZERO + self.duration + self.settle + self.settle
    }
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Every invariant violation the checker found (empty = the run passed).
    pub violations: Vec<Violation>,
    /// The full chronological trace (for post-mortems).
    pub trace: Vec<TraceEvent>,
    /// Network counters (losses, partition drops, duplicates).
    pub network: NetworkStats,
    /// The leader every up node agreed on at the end, if any.
    pub final_leader: Option<ProcessId>,
    /// Total simulator events processed.
    pub events_processed: u64,
    /// End-of-run snapshot of the live metrics registry the instrumented
    /// nodes recorded into (detection/election histograms, mistake counts,
    /// ALIVE traffic).
    pub metrics: Snapshot,
    /// The tail of the runtime protocol-event trace (capacity-bounded).
    pub proto_trace: Vec<TraceRecord>,
    /// Protocol-trace events lost to ring overflow before the drain.
    pub proto_dropped: u64,
}

impl ChaosReport {
    /// True if no invariant was violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Runs `plan` under `config` and checks the invariants over the trace.
///
/// Fully deterministic: the same `(config, plan)` pair always produces the
/// same report.
pub fn run_plan(config: &ChaosConfig, plan: &FaultPlan) -> ChaosReport {
    let n = config.nodes;
    let algorithm = config.algorithm;
    let qos = config.qos;
    let network = NetworkModel::new(config.link).build(config.seed.wrapping_add(1));
    let registry = Registry::default();
    let ring = TraceRing::new(PROTO_TRACE_CAPACITY);
    let mut world: World<ServiceNode, SimulatedNetwork> = World::new(
        n,
        Box::new({
            let registry = registry.clone();
            let ring = ring.clone();
            move |node, _incarnation| {
                let config = ServiceConfig::full_mesh(node, n, algorithm)
                    .with_auto_join(CHAOS_GROUP, JoinConfig::candidate().with_qos(qos));
                let mut service = ServiceNode::new(config);
                // Instrumented under virtual time: the same QoS histograms
                // and protocol trace the real-time runtime exports.
                service.set_instruments(NodeInstruments::new(&registry, ring.clone(), node));
                service
            }
        }),
        network,
        config.seed,
    );
    let mut recorder = TraceRecorder::new(CHAOS_GROUP).with_proto_mirror(ring.clone());
    for timed in plan.actions() {
        world.run_until(timed.at, &mut recorder);
        apply_action(&mut world, &mut recorder, &timed.action, qos);
    }
    // Hand-written plans may schedule past the configured fault window; the
    // run is extended so every action still gets its full quiet tail (and
    // the checker never sees trace events past its declared end).
    let end = match plan.last_action_at() {
        Some(last) => config.end().max(last + config.settle + config.settle),
        None => config.end(),
    };
    world.run_until(end, &mut recorder);

    let final_leader = agreed_final_leader(&world);
    let network = world.medium_mut().stats();
    let events_processed = world.events_processed();
    let trace = recorder.into_events();
    let spec = InvariantSpec {
        algorithm,
        nodes: n,
        qos,
        settle: config.settle,
        end,
    };
    let violations = check_trace(&trace, &spec);
    // The simulation publishes its network counters just before the
    // registry is snapshotted (see `NetworkStats::publish`).
    network.publish(&registry, "sim.net");
    let proto = ring.drain();
    ChaosReport {
        violations,
        trace,
        network,
        final_leader,
        events_processed,
        metrics: registry.snapshot(),
        proto_trace: proto.events,
        proto_dropped: proto.dropped,
    }
}

/// A service-node API call routed through a world's effect-processing path.
pub(crate) type ServiceCall<'a> =
    Box<dyn FnOnce(&mut ServiceNode, &mut Context<ServiceMessage, ServiceEvent>) + 'a>;

/// The world operations fault injection needs, implemented by the
/// sequential [`World`] here and by the sharded
/// [`ParWorld`](sle_sim::par::ParWorld) in [`crate::par`]. Keeping
/// [`apply_action`] and the end-of-run helpers generic over this trait is
/// what guarantees both drivers inject *exactly* the same faults under the
/// same no-op discipline.
pub(crate) trait EngineWorld {
    fn now(&self) -> SimInstant;
    fn num_nodes(&self) -> usize;
    fn is_up(&self, node: NodeId) -> bool;
    fn service(&self, node: NodeId) -> Option<&ServiceNode>;
    fn schedule_crash(&mut self, node: NodeId, at: SimInstant);
    fn schedule_recovery(&mut self, node: NodeId, at: SimInstant);
    fn with_service(&mut self, node: NodeId, recorder: &mut TraceRecorder, f: ServiceCall<'_>);
    fn partition_matches(&mut self, components: &[Vec<NodeId>]) -> bool;
    fn set_partition(&mut self, components: &[Vec<NodeId>]);
    fn is_partitioned(&mut self) -> bool;
    fn heal_partition(&mut self);
    fn default_link(&mut self) -> LinkSpec;
    fn set_default_link(&mut self, spec: LinkSpec);
}

impl EngineWorld for World<ServiceNode, SimulatedNetwork> {
    fn now(&self) -> SimInstant {
        World::now(self)
    }
    fn num_nodes(&self) -> usize {
        World::num_nodes(self)
    }
    fn is_up(&self, node: NodeId) -> bool {
        World::is_up(self, node)
    }
    fn service(&self, node: NodeId) -> Option<&ServiceNode> {
        self.actor(node)
    }
    fn schedule_crash(&mut self, node: NodeId, at: SimInstant) {
        World::schedule_crash(self, node, at);
    }
    fn schedule_recovery(&mut self, node: NodeId, at: SimInstant) {
        World::schedule_recovery(self, node, at);
    }
    fn with_service(&mut self, node: NodeId, recorder: &mut TraceRecorder, f: ServiceCall<'_>) {
        self.with_actor(node, recorder, f);
    }
    fn partition_matches(&mut self, components: &[Vec<NodeId>]) -> bool {
        self.medium_mut().partition_matches(components)
    }
    fn set_partition(&mut self, components: &[Vec<NodeId>]) {
        self.medium_mut().set_partition(components);
    }
    fn is_partitioned(&mut self) -> bool {
        self.medium_mut().is_partitioned()
    }
    fn heal_partition(&mut self) {
        self.medium_mut().heal_partition();
    }
    fn default_link(&mut self) -> LinkSpec {
        self.medium_mut().model().default_link()
    }
    fn set_default_link(&mut self, spec: LinkSpec) {
        self.medium_mut().set_default_link(spec);
    }
}

pub(crate) fn apply_action<W: EngineWorld>(
    world: &mut W,
    recorder: &mut TraceRecorder,
    action: &FaultAction,
    qos: QosSpec,
) {
    let now = world.now();
    match action {
        FaultAction::Crash(node) => {
            if node.index() < world.num_nodes() {
                world.schedule_crash(*node, now);
            }
        }
        FaultAction::Recover(node) => {
            if node.index() < world.num_nodes() {
                world.schedule_recovery(*node, now);
            }
        }
        FaultAction::CrashLeader { down_for } => {
            if let Some(leader) = majority_leader_node(world) {
                world.schedule_crash(leader, now);
                world.schedule_recovery(leader, now + *down_for);
            }
        }
        FaultAction::Leave(node) => {
            // Only mark the trace when the action actually does something:
            // a no-op injection must not grant the run a fresh settle
            // window in which real violations would be excused.
            if is_member(world, *node) {
                recorder.mark(now, TraceEventKind::Left { node: *node });
                world.with_service(
                    *node,
                    recorder,
                    Box::new(|actor, ctx| {
                        for process in actor.local_members_of(CHAOS_GROUP) {
                            let _ = actor.leave_group(process, CHAOS_GROUP, ctx);
                        }
                    }),
                );
            }
        }
        FaultAction::Join(node) => {
            if node.index() < world.num_nodes() && world.is_up(*node) && !is_member(world, *node) {
                recorder.mark(now, TraceEventKind::Joined { node: *node });
                world.with_service(
                    *node,
                    recorder,
                    Box::new(move |actor, ctx| {
                        let process = actor.register_process();
                        let _ = actor.join_group(
                            process,
                            CHAOS_GROUP,
                            JoinConfig::candidate().with_qos(qos),
                            ctx,
                        );
                    }),
                );
            }
        }
        FaultAction::SpawnProcess(node) => {
            if node.index() < world.num_nodes() && world.is_up(*node) {
                // Unlike `Join`, an existing member gains a further
                // process. Only a membership *change* is marked: piling
                // processes onto a member workstation disrupts nothing, so
                // it must not grant the run a fresh settle window.
                if !is_member(world, *node) {
                    recorder.mark(now, TraceEventKind::Joined { node: *node });
                }
                world.with_service(
                    *node,
                    recorder,
                    Box::new(move |actor, ctx| {
                        let process = actor.register_process();
                        let _ = actor.join_group(
                            process,
                            CHAOS_GROUP,
                            JoinConfig::candidate().with_qos(qos),
                            ctx,
                        );
                    }),
                );
            }
        }
        FaultAction::Partition(components) => {
            // The same no-op rule as churn: re-applying the partition the
            // network is already in must not mark a disruption.
            if !world.partition_matches(components) {
                recorder.mark(
                    now,
                    TraceEventKind::Partitioned {
                        components: components.clone(),
                    },
                );
                world.set_partition(components);
            }
        }
        FaultAction::Heal => {
            if world.is_partitioned() {
                recorder.mark(now, TraceEventKind::Healed);
                world.heal_partition();
            }
        }
        FaultAction::SetLink(spec) => {
            if world.default_link() != *spec {
                recorder.mark(now, TraceEventKind::LinkChanged);
                world.set_default_link(*spec);
            }
        }
    }
}

/// Whether `node` is up and currently has processes in the chaos group.
pub(crate) fn is_member<W: EngineWorld>(world: &W, node: NodeId) -> bool {
    node.index() < world.num_nodes()
        && world
            .service(node)
            .map(|actor| !actor.local_members_of(CHAOS_GROUP).is_empty())
            .unwrap_or(false)
}

/// The node most up instances currently consider the leader's host (ties
/// broken towards the smallest id, so resolution is deterministic).
pub(crate) fn majority_leader_node<W: EngineWorld>(world: &W) -> Option<NodeId> {
    let mut votes: HashMap<NodeId, usize> = HashMap::new();
    for index in 0..world.num_nodes() {
        let node = NodeId(index as u32);
        if let Some(actor) = world.service(node) {
            if let Some(leader) = actor.leader_of(CHAOS_GROUP) {
                if world.is_up(leader.node) {
                    *votes.entry(leader.node).or_insert(0) += 1;
                }
            }
        }
    }
    votes
        .into_iter()
        .max_by_key(|&(node, count)| (count, std::cmp::Reverse(node.0)))
        .map(|(node, _)| node)
}

/// The leader all up nodes agree on at the end of a run, if any.
pub(crate) fn agreed_final_leader<W: EngineWorld>(world: &W) -> Option<ProcessId> {
    let mut agreed: Option<ProcessId> = None;
    let mut seen = false;
    for index in 0..world.num_nodes() {
        let node = NodeId(index as u32);
        let Some(actor) = world.service(node) else {
            continue;
        };
        if actor.local_members_of(CHAOS_GROUP).is_empty() {
            continue; // not currently a member (left and never rejoined)
        }
        let view = actor.leader_of(CHAOS_GROUP)?;
        seen = true;
        match agreed {
            None => agreed = Some(view),
            Some(leader) if leader == view => {}
            _ => return None,
        }
    }
    if seen {
        agreed
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanKind;

    #[test]
    fn a_quiet_run_upholds_every_invariant_for_every_service() {
        for algorithm in ElectorKind::all() {
            let config = ChaosConfig::new(algorithm, 4).with_duration(SimDuration::from_secs(20));
            let report = run_plan(&config, &FaultPlan::quiet());
            assert!(report.ok(), "{algorithm}: {:?}", report.violations);
            assert!(report.final_leader.is_some(), "{algorithm}: no leader");
            assert!(report.events_processed > 0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let config = ChaosConfig::new(ElectorKind::OmegaLc, 4);
        let plan = PlanKind::LeaderChurn.generate(4, config.duration, config.link, config.seed);
        let a = run_plan(&config, &plan);
        let b = run_plan(&config, &plan);
        assert_eq!(a.events_processed, b.events_processed);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.network, b.network);
        // The observability layer is deterministic too: same histograms,
        // same protocol trace (ring sequence numbers included).
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.proto_trace, b.proto_trace);
        assert_eq!(a.proto_dropped, b.proto_dropped);
    }

    #[test]
    fn runtime_protocol_trace_converts_into_a_checkable_trace() {
        // The drained sle-obs trace of an instrumented run, lifted through
        // the converter, must itself pass the invariant checker — this is
        // what makes runtime (wall-clock) traces checkable post-hoc.
        let config = ChaosConfig::new(ElectorKind::OmegaLc, 4);
        let plan = FaultPlan::new("crash-one").at(
            15.0,
            FaultAction::CrashLeader {
                down_for: SimDuration::from_secs(5),
            },
        );
        let report = run_plan(&config, &plan);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.proto_dropped, 0, "trace ring overflowed");
        let converted = crate::convert::convert_trace(&report.proto_trace, CHAOS_GROUP);
        assert!(
            converted
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::View { .. })),
            "no leader views in the converted runtime trace"
        );
        assert!(
            converted
                .iter()
                .any(|e| matches!(e.kind, TraceEventKind::Crashed { .. })),
            "crash marks missing from the protocol trace"
        );
        let spec = InvariantSpec {
            algorithm: config.algorithm,
            nodes: config.nodes,
            qos: config.qos,
            settle: config.settle,
            end: config.end(),
        };
        let violations = check_trace(&converted, &spec);
        assert!(violations.is_empty(), "{violations:?}");
        // And the node-level metrics saw the episode: at least one
        // detection sample and one election episode were recorded.
        let detections = report.metrics.merged_histogram("node.", ".fd.detection_ns");
        assert!(detections.count > 0, "no detection latency samples");
        let elections = report
            .metrics
            .merged_histogram("node.", ".elect.election_ns");
        assert!(elections.count > 0, "no election latency samples");
    }

    #[test]
    fn crash_leader_resolves_the_actual_leader_and_recovers_it() {
        let config = ChaosConfig::new(ElectorKind::OmegaL, 4);
        let plan = FaultPlan::new("kill-the-leader").at(
            12.0,
            FaultAction::CrashLeader {
                down_for: SimDuration::from_secs(5),
            },
        );
        let report = run_plan(&config, &plan);
        assert!(report.ok(), "{:?}", report.violations);
        let crashes: Vec<&TraceEvent> = report
            .trace
            .iter()
            .filter(|event| matches!(event.kind, TraceEventKind::Crashed { .. }))
            .collect();
        assert_eq!(crashes.len(), 1, "exactly one crash injected");
        assert!(
            report
                .trace
                .iter()
                .any(|event| matches!(event.kind, TraceEventKind::Recovered { .. })),
            "the crashed leader must come back"
        );
        assert!(report.final_leader.is_some());
    }

    #[test]
    fn spawn_process_stacks_processes_and_marks_only_membership_changes() {
        let config =
            ChaosConfig::new(ElectorKind::OmegaLc, 3).with_duration(SimDuration::from_secs(20));
        let plan = FaultPlan::new("spawn-stack")
            // Node 0 is already a member: extra processes, no trace marks.
            .at(8.0, FaultAction::SpawnProcess(NodeId(0)))
            .at(9.0, FaultAction::SpawnProcess(NodeId(0)))
            // Node 1 leaves entirely, then a spawn re-joins it (one mark).
            .at(10.0, FaultAction::Leave(NodeId(1)))
            .at(13.0, FaultAction::SpawnProcess(NodeId(1)));
        let report = run_plan(&config, &plan);
        assert!(report.ok(), "{:?}", report.violations);
        let joins = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Joined { .. }))
            .count();
        let leaves = report
            .trace
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Left { .. }))
            .count();
        assert_eq!(joins, 1, "only node 1's re-join changes membership");
        assert_eq!(leaves, 1);
        assert!(report.final_leader.is_some());
    }

    #[test]
    fn hand_written_plans_past_the_window_extend_the_run() {
        // Actions after the configured fault window are legal in manual
        // plans: the run is stretched so the checker still gets a quiet
        // tail (and never sees events past its declared end).
        let config =
            ChaosConfig::new(ElectorKind::OmegaLc, 3).with_duration(SimDuration::from_secs(20));
        let plan = FaultPlan::new("late").at(
            70.0,
            FaultAction::CrashLeader {
                down_for: SimDuration::from_secs(4),
            },
        );
        let report = run_plan(&config, &plan);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(
            report
                .trace
                .iter()
                .any(|event| matches!(event.kind, TraceEventKind::Crashed { .. })),
            "the late action was applied"
        );
    }

    #[test]
    fn no_op_injections_leave_no_trace_marks() {
        // Restoring a link that is already in force, healing a whole
        // network, re-applying churn that changes nothing: none of these
        // may appear in the trace, because each mark grants the invariant
        // checker a settle window in which real violations are excused
        // (and a shrunk plan must not retain actions that do nothing).
        let config =
            ChaosConfig::new(ElectorKind::OmegaLc, 3).with_duration(SimDuration::from_secs(20));
        let plan = FaultPlan::new("all-no-ops")
            .at(10.0, FaultAction::SetLink(config.link))
            .at(11.0, FaultAction::Heal)
            .at(12.0, FaultAction::Join(NodeId(0)))
            .at(13.0, FaultAction::Leave(NodeId(99)));
        let report = run_plan(&config, &plan);
        assert!(report.ok(), "{:?}", report.violations);
        assert!(
            !report.trace.iter().any(|event| matches!(
                event.kind,
                TraceEventKind::LinkChanged
                    | TraceEventKind::Healed
                    | TraceEventKind::Joined { .. }
                    | TraceEventKind::Left { .. }
            )),
            "no-op injections polluted the trace"
        );
    }

    #[test]
    fn scenario_bridge_copies_the_workload() {
        let scenario = Scenario::paper_default(
            "bridge",
            ElectorKind::OmegaLc,
            LinkSpec::from_paper_tuple(100.0, 0.1),
        )
        .with_nodes(6)
        .with_seed(9);
        let config = ChaosConfig::from_scenario(&scenario);
        assert_eq!(config.algorithm, ElectorKind::OmegaLc);
        assert_eq!(config.nodes, 6);
        assert_eq!(config.link, LinkSpec::from_paper_tuple(100.0, 0.1));
        assert_eq!(config.seed, 9);
        assert_eq!(config.qos, scenario.qos);
    }
}
