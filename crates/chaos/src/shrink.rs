//! Reducing a failing fault plan to a minimal reproducer.
//!
//! Greedy delta-debugging over the action list: repeatedly try dropping one
//! action (latest first — late actions are most often incidental); keep any
//! reduction that still violates an invariant. The result is 1-minimal: no
//! single action can be removed without the failure disappearing. Because
//! runs are deterministic, a shrunk plan fails forever, not just usually.

use crate::engine::{run_plan, ChaosConfig};
use crate::plan::FaultPlan;

/// The outcome of shrinking a failing plan.
#[derive(Debug, Clone)]
pub struct Shrunk {
    /// The minimal failing plan.
    pub plan: FaultPlan,
    /// How many chaos runs the search needed.
    pub runs: u64,
}

/// Shrinks `plan` to a 1-minimal plan that still makes `config` fail.
///
/// `plan` itself must fail under `config`; if it does not, it is returned
/// unchanged (zero reduction, one probe run).
pub fn shrink_plan(config: &ChaosConfig, plan: &FaultPlan) -> Shrunk {
    let mut runs = 0u64;
    let mut fails = |candidate: &FaultPlan| {
        runs += 1;
        !run_plan(config, candidate).violations.is_empty()
    };
    if !fails(plan) {
        return Shrunk {
            plan: plan.clone(),
            runs,
        };
    }
    let mut current = plan.clone();
    'search: loop {
        for index in (0..current.len()).rev() {
            let candidate = current.without(index);
            if fails(&candidate) {
                current = candidate;
                continue 'search;
            }
        }
        break;
    }
    Shrunk {
        plan: current,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultAction;
    use sle_election::ElectorKind;
    use sle_fd::QosSpec;
    use sle_sim::actor::NodeId;
    use sle_sim::time::SimDuration;

    /// A weakened detector over a slow lossy link: the timeout shift cannot
    /// cover the delay tail, so false suspicions demote the leader in quiet
    /// time.
    fn weakened_config() -> ChaosConfig {
        ChaosConfig::new(ElectorKind::OmegaLc, 3)
            .with_duration(SimDuration::from_secs(30))
            .with_qos(
                QosSpec::new(
                    SimDuration::from_millis(40),
                    SimDuration::from_secs(3600),
                    0.999,
                )
                .expect("valid weakened QoS"),
            )
            .with_link(sle_net::link::LinkSpec::from_paper_tuple(25.0, 0.1))
    }

    #[test]
    fn a_weakened_detector_failure_shrinks_to_the_empty_plan() {
        let config = weakened_config();
        // Decorate the failure with irrelevant actions: the shrinker must
        // strip them all, proving the faults were never needed.
        let plan = FaultPlan::new("decorated")
            .at(12.0, FaultAction::Crash(NodeId(2)))
            .at(18.0, FaultAction::Recover(NodeId(2)));
        let shrunk = shrink_plan(&config, &plan);
        assert!(
            shrunk.plan.is_empty(),
            "irrelevant actions survived: {:?}",
            shrunk.plan
        );
        assert!(shrunk.runs >= 3, "probe + at least two reduction attempts");
    }

    #[test]
    fn a_passing_plan_is_returned_unchanged() {
        let config =
            ChaosConfig::new(ElectorKind::OmegaL, 3).with_duration(SimDuration::from_secs(20));
        let plan = FaultPlan::new("fine").at(
            10.0,
            FaultAction::CrashLeader {
                down_for: SimDuration::from_secs(4),
            },
        );
        let shrunk = shrink_plan(&config, &plan);
        assert_eq!(shrunk.plan, plan);
        assert_eq!(shrunk.runs, 1);
    }
}
