//! # sle-chaos — deterministic fault injection and invariant checking
//!
//! The DSN 2008 paper's whole claim is *stability under dynamism*:
//! workstations crash and recover, links lose and delay messages, and the
//! service keeps an agreed leader standing. The harness replays the paper's
//! fixed scenarios; this crate *searches* for schedules that break the
//! service instead. Three pieces:
//!
//! * [`plan`] — a fault-plan DSL: timed, seed-driven injections of network
//!   partitions and healing, workstation churn (crash/recover, mid-run
//!   join/leave, killing the current leader), message duplication /
//!   reordering / burst-loss overlays, and delay steps — compiled onto the
//!   simulation timeline by the engine.
//! * [`invariants`] — a checker replaying the run's event trace against
//!   machine-checked statements of the paper's properties: eventual
//!   agreement, leader stability, the mistake-recurrence QoS bound, and
//!   "no two simultaneous stable leaders in one partition component".
//! * [`sweep`] — a multi-seed sweep runner executing N seeds × M fault
//!   plans across S1/S2/S3, shrinking ([`shrink`]) every failing seed to a
//!   1-minimal plan and rendering it as a ready-to-paste `#[test]`.
//!
//! See `docs/CHAOS.md` for the DSL reference, the precise invariant
//! definitions (with paper-section references), and the workflow for
//! turning a sweep failure into a regression test. The `chaos_sweep`
//! binary in `sle-bench` drives this crate from the command line and CI.
//!
//! ## Example: a partition experiment in four lines
//!
//! ```
//! use sle_chaos::{run_plan, ChaosConfig, FaultAction, FaultPlan};
//! use sle_election::ElectorKind;
//! use sle_sim::actor::NodeId;
//! use sle_sim::time::SimDuration;
//!
//! let plan = FaultPlan::new("split-then-heal")
//!     .at(12.0, FaultAction::Partition(vec![
//!         vec![NodeId(0)],
//!         vec![NodeId(1), NodeId(2), NodeId(3)],
//!     ]))
//!     .at(20.0, FaultAction::Heal);
//! let config = ChaosConfig::new(ElectorKind::OmegaL, 4)
//!     .with_duration(SimDuration::from_secs(30));
//! let report = run_plan(&config, &plan);
//! assert!(report.ok(), "invariant violations: {:#?}", report.violations);
//! assert!(report.network.partitioned > 0, "the partition did bite");
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod convert;
pub mod engine;
pub mod invariants;
pub mod par;
pub mod plan;
pub mod shrink;
pub mod sweep;
pub mod trace;

pub use convert::{convert_record, convert_trace};
pub use engine::{run_plan, ChaosConfig, ChaosReport, CHAOS_GROUP};
pub use invariants::{check_trace, InvariantSpec, Violation, ViolationKind};
pub use par::run_plan_parallel;
pub use plan::{link_to_code, FaultAction, FaultPlan, PlanKind, TimedAction};
pub use shrink::{shrink_plan, Shrunk};
pub use sweep::{
    render_regression_test, run_sweep, CellSummary, SweepConfig, SweepFailure, SweepSummary,
};
pub use trace::{TraceEvent, TraceEventKind, TraceRecorder};
