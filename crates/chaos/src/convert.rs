//! Bridging the runtime's protocol event trace into the chaos checker.
//!
//! `sle-obs` traces live below the service crates, so its
//! [`ProtoEvent`]s carry raw ids. This module lifts a drained runtime
//! trace back into the chaos [`TraceEvent`] vocabulary, which makes
//! [`check_trace`](crate::invariants::check_trace) applicable to traces
//! drained from a *real-time* [`Cluster`](sle_core::runtime::Cluster) —
//! the invariants of the paper hold for the deployment, not just the
//! simulation.
//!
//! Only the events the checker consumes are converted (leader views,
//! crashes/recoveries, membership churn); transport-level events such as
//! [`ProtoEvent::DatagramDropped`] and timer firings are diagnostic and
//! skipped.

use sle_core::{GroupId, ProcessId};
use sle_obs::{ProtoEvent, TraceRecord};
use sle_sim::actor::NodeId;

use crate::trace::{TraceEvent, TraceEventKind};

/// Converts one drained runtime record into a chaos trace event, if it
/// concerns `group` and carries checker-relevant information.
pub fn convert_record(record: &TraceRecord, group: GroupId) -> Option<TraceEvent> {
    let kind = match record.event {
        ProtoEvent::LeaderChange { group: g, leader } if g == group.0 => TraceEventKind::View {
            node: record.node,
            leader: leader.map(|(node, local)| ProcessId::new(NodeId(node), local)),
        },
        ProtoEvent::Crashed => TraceEventKind::Crashed { node: record.node },
        ProtoEvent::Recovered => TraceEventKind::Recovered { node: record.node },
        ProtoEvent::Join { group: g } if g == group.0 => {
            TraceEventKind::Joined { node: record.node }
        }
        ProtoEvent::Leave { group: g } if g == group.0 => {
            TraceEventKind::Left { node: record.node }
        }
        _ => return None,
    };
    Some(TraceEvent {
        at: record.at,
        kind,
    })
}

/// Converts a drained runtime trace (already merged and time-ordered, as
/// [`Cluster::drain_trace`](sle_core::runtime::Cluster::drain_trace)
/// returns it) into the chronological trace the invariant checker replays.
pub fn convert_trace(records: &[TraceRecord], group: GroupId) -> Vec<TraceEvent> {
    records
        .iter()
        .filter_map(|record| convert_record(record, group))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimInstant;

    const GROUP: GroupId = GroupId(1);

    fn record(at_secs: f64, node: u32, event: ProtoEvent) -> TraceRecord {
        TraceRecord {
            seq: 0,
            at: SimInstant::from_secs_f64(at_secs),
            node: NodeId(node),
            event,
        }
    }

    #[test]
    fn checker_relevant_events_convert_and_diagnostics_are_skipped() {
        let records = vec![
            record(1.0, 0, ProtoEvent::Join { group: 1 }),
            record(
                2.0,
                0,
                ProtoEvent::LeaderChange {
                    group: 1,
                    leader: Some((0, 0)),
                },
            ),
            // Foreign group: skipped.
            record(
                2.5,
                0,
                ProtoEvent::LeaderChange {
                    group: 2,
                    leader: None,
                },
            ),
            // Diagnostics: skipped.
            record(3.0, 1, ProtoEvent::TimerFired { kind: 3 }),
            record(
                3.1,
                1,
                ProtoEvent::Accusation {
                    group: 1,
                    accused: 0,
                },
            ),
            record(4.0, 0, ProtoEvent::Crashed),
            record(5.0, 0, ProtoEvent::Recovered),
            record(6.0, 1, ProtoEvent::Leave { group: 1 }),
        ];
        let events = convert_trace(&records, GROUP);
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind, TraceEventKind::Joined { node: NodeId(0) });
        assert_eq!(
            events[1].kind,
            TraceEventKind::View {
                node: NodeId(0),
                leader: Some(ProcessId::new(NodeId(0), 0)),
            }
        );
        assert_eq!(events[2].kind, TraceEventKind::Crashed { node: NodeId(0) });
        assert_eq!(
            events[3].kind,
            TraceEventKind::Recovered { node: NodeId(0) }
        );
        assert_eq!(events[4].kind, TraceEventKind::Left { node: NodeId(1) });
        assert_eq!(events[1].at, SimInstant::from_secs_f64(2.0));
    }
}
