//! The fault-plan DSL: timed, seed-driven injections compiled onto the
//! simulation timeline.
//!
//! A [`FaultPlan`] is a time-ordered list of [`FaultAction`]s. Plans are
//! either written by hand (regression tests, targeted experiments) or
//! generated deterministically from a seed by a [`PlanKind`] — the sweep
//! runner's way of searching the schedule space. Because generation is a
//! pure function of `(kind, nodes, duration, base link, seed)`, any failing
//! sweep cell is exactly reproducible from its coordinates.

use sle_net::link::LinkSpec;
use sle_sim::actor::NodeId;
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};

/// One fault to inject into a running simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Crash a workstation (its service instance loses all state).
    Crash(NodeId),
    /// Recover a previously crashed workstation (fresh incarnation, which
    /// auto-rejoins the experiment group).
    Recover(NodeId),
    /// Crash whichever node currently holds the (majority-view) leadership,
    /// and recover it after `down_for`. Resolved at injection time, so the
    /// same plan kills the *actual* leader of every seed's execution.
    CrashLeader {
        /// How long the crashed leader stays down before recovering.
        down_for: SimDuration,
    },
    /// All application processes of this workstation leave the experiment
    /// group (the workstation itself stays up — voluntary departure, not a
    /// crash).
    Leave(NodeId),
    /// Register a fresh application process on this workstation and join it
    /// to the experiment group as a candidate (a no-op if the workstation
    /// already has a member).
    Join(NodeId),
    /// Register a fresh application process on this workstation and join it
    /// to the experiment group as a candidate *unconditionally* — unlike
    /// [`FaultAction::Join`], an already-member workstation gains an
    /// additional process. This is how the `LargeChurn` family drives the
    /// group past 100 member processes.
    SpawnProcess(NodeId),
    /// Partition the network into the given components: messages crossing a
    /// component boundary are dropped; nodes listed in no component are
    /// isolated entirely.
    Partition(Vec<Vec<NodeId>>),
    /// Remove any active partition.
    Heal,
    /// Replace the behaviour of every (non-overridden) link — delay steps,
    /// burst loss, duplication and reordering overlays are all expressed as
    /// a pair of `SetLink` actions (apply, then restore).
    SetLink(LinkSpec),
}

impl FaultAction {
    /// Renders this action as Rust source, for pasting into a regression
    /// test. Paths are fully qualified so the snippet compiles without
    /// imports.
    pub fn to_code(&self) -> String {
        match self {
            FaultAction::Crash(node) => {
                format!("sle_chaos::FaultAction::Crash(sle_sim::NodeId({}))", node.0)
            }
            FaultAction::Recover(node) => format!(
                "sle_chaos::FaultAction::Recover(sle_sim::NodeId({}))",
                node.0
            ),
            FaultAction::CrashLeader { down_for } => format!(
                "sle_chaos::FaultAction::CrashLeader {{ down_for: sle_sim::SimDuration::from_nanos({}) }}",
                down_for.as_nanos()
            ),
            FaultAction::Leave(node) => {
                format!("sle_chaos::FaultAction::Leave(sle_sim::NodeId({}))", node.0)
            }
            FaultAction::Join(node) => {
                format!("sle_chaos::FaultAction::Join(sle_sim::NodeId({}))", node.0)
            }
            FaultAction::SpawnProcess(node) => format!(
                "sle_chaos::FaultAction::SpawnProcess(sle_sim::NodeId({}))",
                node.0
            ),
            FaultAction::Partition(components) => {
                let rendered: Vec<String> = components
                    .iter()
                    .map(|component| {
                        let nodes: Vec<String> = component
                            .iter()
                            .map(|node| format!("sle_sim::NodeId({})", node.0))
                            .collect();
                        format!("vec![{}]", nodes.join(", "))
                    })
                    .collect();
                format!(
                    "sle_chaos::FaultAction::Partition(vec![{}])",
                    rendered.join(", ")
                )
            }
            FaultAction::Heal => "sle_chaos::FaultAction::Heal".to_string(),
            FaultAction::SetLink(spec) => {
                format!("sle_chaos::FaultAction::SetLink({})", link_to_code(spec))
            }
        }
    }
}

/// Renders a [`LinkSpec`] as Rust source (fully qualified paths).
pub fn link_to_code(spec: &LinkSpec) -> String {
    let mut code = format!(
        "sle_net::link::LinkSpec::lossy(sle_sim::SimDuration::from_nanos({}), {:?})",
        spec.mean_delay().as_nanos(),
        spec.loss_probability()
    );
    if spec.duplicate_probability() > 0.0 {
        code.push_str(&format!(
            ".with_duplication({:?})",
            spec.duplicate_probability()
        ));
    }
    if !spec.jitter().is_zero() {
        code.push_str(&format!(
            ".with_jitter(sle_sim::SimDuration::from_nanos({}))",
            spec.jitter().as_nanos()
        ));
    }
    code
}

/// A fault action bound to an instant of the simulation timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedAction {
    /// When the action is applied (virtual time).
    pub at: SimInstant,
    /// What is injected.
    pub action: FaultAction,
}

/// A named, time-ordered schedule of fault injections.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    name: String,
    actions: Vec<TimedAction>,
}

impl FaultPlan {
    /// An empty plan with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FaultPlan {
            name: name.into(),
            actions: Vec::new(),
        }
    }

    /// The fault-free plan (baseline: the service must uphold every
    /// invariant with nothing injected at all).
    pub fn quiet() -> Self {
        FaultPlan::new("quiet")
    }

    /// The plan's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds `action` at `secs` seconds of virtual time (kept time-sorted).
    pub fn at(self, secs: f64, action: FaultAction) -> Self {
        self.at_instant(SimInstant::from_secs_f64(secs), action)
    }

    /// Adds `action` at `nanos` nanoseconds of virtual time — the
    /// full-precision form emitted into generated regression tests.
    pub fn at_nanos(self, nanos: u64, action: FaultAction) -> Self {
        self.at_instant(SimInstant::from_nanos(nanos), action)
    }

    /// Adds `action` at `at` (kept time-sorted; ties keep insertion order).
    pub fn at_instant(mut self, at: SimInstant, action: FaultAction) -> Self {
        let index = self.actions.partition_point(|existing| existing.at <= at);
        self.actions.insert(index, TimedAction { at, action });
        self
    }

    /// The scheduled actions, in time order.
    pub fn actions(&self) -> &[TimedAction] {
        &self.actions
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if no action is scheduled.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// When the last action fires, if any.
    pub fn last_action_at(&self) -> Option<SimInstant> {
        self.actions.last().map(|timed| timed.at)
    }

    /// A copy of the plan with the action at `index` removed (the shrinker's
    /// one reduction step).
    pub fn without(&self, index: usize) -> FaultPlan {
        let mut actions = self.actions.clone();
        actions.remove(index);
        FaultPlan {
            name: self.name.clone(),
            actions,
        }
    }
}

/// The families of fault plans the sweep runner searches over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKind {
    /// Partition the group into two components, then heal.
    PartitionHeal,
    /// Crash the current leader (twice), recovering it a few seconds later.
    LeaderChurn,
    /// Overlay message duplication + reordering jitter + extra loss on every
    /// link for a window, then restore.
    DupReorder,
    /// Step every link's delay up (a latency regime shift / clock-drift
    /// proxy) for a window, then restore.
    DriftStep,
    /// Members voluntarily leave the group mid-run and rejoin later.
    MemberChurn,
    /// Join/leave churn at scale: the group is driven past 100 member
    /// processes (spread across at least [`PlanKind::min_nodes`]
    /// workstations) while whole workstations keep leaving and rejoining.
    LargeChurn,
}

impl PlanKind {
    /// Every plan family, in sweep order.
    pub fn all() -> [PlanKind; 6] {
        [
            PlanKind::PartitionHeal,
            PlanKind::LeaderChurn,
            PlanKind::DupReorder,
            PlanKind::DriftStep,
            PlanKind::MemberChurn,
            PlanKind::LargeChurn,
        ]
    }

    /// A stable, file-system-friendly name.
    pub fn name(&self) -> &'static str {
        match self {
            PlanKind::PartitionHeal => "partition-heal",
            PlanKind::LeaderChurn => "leader-churn",
            PlanKind::DupReorder => "dup-reorder",
            PlanKind::DriftStep => "drift-step",
            PlanKind::MemberChurn => "member-churn",
            PlanKind::LargeChurn => "large-churn",
        }
    }

    /// The smallest deployment this family is meaningful at. The sweep
    /// runner raises its configured node count to this floor per family, so
    /// `LargeChurn` always runs with enough workstations to host its
    /// 100-plus processes while the other families keep the sweep's size.
    pub fn min_nodes(&self) -> usize {
        match self {
            PlanKind::LargeChurn => 24,
            _ => 0,
        }
    }

    /// Generates the concrete plan for this family, deterministically from
    /// `seed`. Every injection lands within `duration` — times that would
    /// overshoot a short window are clamped to just inside it, so the
    /// engine's quiet settle tail stays quiet — and `base_link` is the
    /// behaviour overlays are layered on and restored to. Degenerate
    /// combinations (a partition of fewer than two nodes) produce an empty
    /// plan rather than a panic.
    pub fn generate(
        &self,
        nodes: usize,
        duration: SimDuration,
        base_link: LinkSpec,
        seed: u64,
    ) -> FaultPlan {
        // Salt the stream per family so the same sweep seed explores
        // independent schedules across families.
        let salt = match self {
            PlanKind::PartitionHeal => 0x50,
            PlanKind::LeaderChurn => 0x51,
            PlanKind::DupReorder => 0x52,
            PlanKind::DriftStep => 0x53,
            PlanKind::MemberChurn => 0x54,
            PlanKind::LargeChurn => 0x55,
        };
        let mut rng = SimRng::seed_from(seed ^ (salt << 32));
        let total = duration.as_secs_f64();
        // No action past `cap`; injections start after the initial election
        // has settled (when the window leaves room for that) and the first
        // one lands early enough for a disruption window plus recovery.
        let cap = (total - 1.0).max(0.5);
        let start = (total * 0.2).min(8.0).min(cap);
        let latest = (total - 12.0).max(start + 1.0).min(cap);
        let t1 = rng.uniform_range(start, (start + latest) / 2.0).min(cap);
        match self {
            PlanKind::PartitionHeal => {
                if nodes < 2 {
                    // Nothing to partition.
                    return FaultPlan::new(self.name());
                }
                let mut minority = Vec::new();
                let mut majority = Vec::new();
                // A random non-empty minority of at most half the nodes, so
                // the other side can always elect.
                let minority_size =
                    (1 + rng.uniform_usize(((nodes - 1) / 2).max(1))).min(nodes - 1);
                let mut ids: Vec<u32> = (0..nodes as u32).collect();
                for k in 0..minority_size {
                    let pick = k + rng.uniform_usize(ids.len() - k);
                    ids.swap(k, pick);
                }
                for (index, id) in ids.into_iter().enumerate() {
                    if index < minority_size {
                        minority.push(NodeId(id));
                    } else {
                        majority.push(NodeId(id));
                    }
                }
                minority.sort();
                majority.sort();
                let heal_at = (t1 + rng.uniform_range(6.0, 12.0)).min(cap);
                FaultPlan::new(self.name())
                    .at(t1, FaultAction::Partition(vec![minority, majority]))
                    .at(heal_at, FaultAction::Heal)
            }
            PlanKind::LeaderChurn => {
                let down = SimDuration::from_secs_f64(rng.uniform_range(4.0, 7.0));
                let t2 = t1 + rng.uniform_range(14.0, 18.0);
                let mut plan =
                    FaultPlan::new(self.name()).at(t1, FaultAction::CrashLeader { down_for: down });
                if t2 < latest {
                    let down2 = SimDuration::from_secs_f64(rng.uniform_range(4.0, 7.0));
                    plan = plan.at(t2, FaultAction::CrashLeader { down_for: down2 });
                }
                plan
            }
            PlanKind::DupReorder => {
                let overlay = base_link
                    .with_duplication(rng.uniform_range(0.15, 0.35))
                    .with_jitter(SimDuration::from_millis_f64(rng.uniform_range(20.0, 60.0)));
                let restore_at = (t1 + rng.uniform_range(10.0, 18.0)).min(cap);
                FaultPlan::new(self.name())
                    .at(t1, FaultAction::SetLink(overlay))
                    .at(restore_at, FaultAction::SetLink(base_link))
            }
            PlanKind::DriftStep => {
                // A delay regime shift well below the detection bound: the
                // static paper configuration must absorb it without
                // mistakes.
                let stepped = LinkSpec::lossy(
                    base_link.mean_delay()
                        + SimDuration::from_millis_f64(rng.uniform_range(60.0, 110.0)),
                    base_link.loss_probability(),
                );
                let restore_at = (t1 + rng.uniform_range(10.0, 18.0)).min(cap);
                FaultPlan::new(self.name())
                    .at(t1, FaultAction::SetLink(stepped))
                    .at(restore_at, FaultAction::SetLink(base_link))
            }
            PlanKind::MemberChurn => {
                if nodes == 0 {
                    return FaultPlan::new(self.name());
                }
                let first = NodeId(rng.uniform_usize(nodes) as u32);
                let rejoin_at = (t1 + rng.uniform_range(8.0, 14.0)).min(cap);
                let mut plan = FaultPlan::new(self.name())
                    .at(t1, FaultAction::Leave(first))
                    .at(rejoin_at, FaultAction::Join(first));
                if nodes > 2 {
                    let second = NodeId(
                        (first.0 as usize + 1 + rng.uniform_usize(nodes - 1)) as u32 % nodes as u32,
                    );
                    let t3 = (t1 + rng.uniform_range(4.0, 8.0)).min(cap);
                    let rejoin2 = (rejoin_at + rng.uniform_range(4.0, 8.0)).min(cap);
                    plan = plan
                        .at(t3, FaultAction::Leave(second))
                        .at(rejoin2, FaultAction::Join(second));
                }
                plan
            }
            PlanKind::LargeChurn => {
                if nodes == 0 {
                    return FaultPlan::new(self.name());
                }
                // Drive the group past 100 member processes: every
                // workstation auto-joins one candidate, the rest are
                // spawned across the fault window (several per node).
                let target_processes = 120usize.max(nodes + 1);
                let spawns = target_processes - nodes;
                let window = (cap - start).max(0.1);
                let mut plan = FaultPlan::new(self.name());
                for k in 0..spawns {
                    let jitter = rng.uniform_range(0.0, 1.0);
                    let at = (start + window * (k as f64 + jitter) / spawns as f64).min(cap);
                    let node = NodeId(rng.uniform_usize(nodes) as u32);
                    plan = plan.at(at, FaultAction::SpawnProcess(node));
                }
                // Whole workstations keep leaving and rejoining on top of
                // the growth, so membership never stops moving.
                let cycles = (nodes / 8).clamp(1, 4);
                for _ in 0..cycles {
                    let node = NodeId(rng.uniform_usize(nodes) as u32);
                    let leave_latest = ((start + cap) / 2.0).max(start + 0.1).min(cap);
                    let leave_at = rng.uniform_range(start, leave_latest).min(cap);
                    let rejoin_at = (leave_at + rng.uniform_range(6.0, 10.0)).min(cap);
                    plan = plan
                        .at(leave_at, FaultAction::Leave(node))
                        .at(rejoin_at, FaultAction::Join(node));
                }
                plan
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_time_sorted_and_builders_compose() {
        let plan = FaultPlan::new("x")
            .at(5.0, FaultAction::Heal)
            .at(1.0, FaultAction::Crash(NodeId(2)))
            .at(3.0, FaultAction::Recover(NodeId(2)));
        assert_eq!(plan.name(), "x");
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        let times: Vec<f64> = plan
            .actions()
            .iter()
            .map(|timed| timed.at.as_secs_f64())
            .collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(plan.last_action_at(), Some(SimInstant::from_secs_f64(5.0)));
        assert!(FaultPlan::quiet().is_empty());
        assert_eq!(FaultPlan::quiet().last_action_at(), None);
    }

    #[test]
    fn without_removes_exactly_one_action() {
        let plan = FaultPlan::new("x")
            .at(1.0, FaultAction::Crash(NodeId(0)))
            .at(2.0, FaultAction::Recover(NodeId(0)));
        let reduced = plan.without(0);
        assert_eq!(reduced.len(), 1);
        assert_eq!(reduced.actions()[0].action, FaultAction::Recover(NodeId(0)));
        assert_eq!(plan.len(), 2, "original plan untouched");
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_kind() {
        let duration = SimDuration::from_secs(60);
        let link = LinkSpec::from_paper_tuple(10.0, 0.01);
        for kind in PlanKind::all() {
            let a = kind.generate(5, duration, link, 42);
            let b = kind.generate(5, duration, link, 42);
            assert_eq!(a, b, "{} not deterministic", kind.name());
            let c = kind.generate(5, duration, link, 43);
            assert_ne!(a, c, "{} ignores the seed", kind.name());
            assert!(!a.is_empty());
            assert!(
                a.last_action_at().unwrap() <= SimInstant::from_secs_f64(60.0),
                "{} schedules past the duration",
                kind.name()
            );
        }
    }

    #[test]
    fn generation_handles_tiny_groups_and_short_durations() {
        // Degenerate sweeps (--nodes 1/2, --duration-secs 5) must neither
        // panic nor schedule an action outside the fault window.
        for kind in PlanKind::all() {
            for nodes in [0, 1, 2, 3] {
                for secs in [5u64, 12, 35] {
                    let duration = SimDuration::from_secs(secs);
                    for seed in 0..20 {
                        let plan = kind.generate(nodes, duration, LinkSpec::perfect(), seed);
                        if let Some(last) = plan.last_action_at() {
                            assert!(
                                last <= SimInstant::ZERO + duration,
                                "{} nodes={nodes} secs={secs} seed={seed}: action at {last} \
                                 outside the fault window",
                                kind.name()
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn large_churn_reaches_one_hundred_processes() {
        let nodes = PlanKind::LargeChurn.min_nodes();
        assert!(nodes >= 8);
        for seed in 0..10 {
            let plan = PlanKind::LargeChurn.generate(
                nodes,
                SimDuration::from_secs(45),
                LinkSpec::perfect(),
                seed,
            );
            let spawns = plan
                .actions()
                .iter()
                .filter(|t| matches!(t.action, FaultAction::SpawnProcess(_)))
                .count();
            // One auto-joined candidate per workstation plus the spawned
            // processes: the group is driven past 100 members.
            assert!(
                nodes + spawns >= 100,
                "seed {seed}: only {} processes",
                nodes + spawns
            );
            assert!(plan
                .actions()
                .iter()
                .any(|t| matches!(t.action, FaultAction::Leave(_))));
            assert!(plan
                .actions()
                .iter()
                .any(|t| matches!(t.action, FaultAction::Join(_))));
        }
        // Other families keep the sweep's configured deployment size.
        assert_eq!(PlanKind::MemberChurn.min_nodes(), 0);
    }

    #[test]
    fn partition_plans_split_into_two_disjoint_nonempty_components() {
        for seed in 0..50 {
            let plan = PlanKind::PartitionHeal.generate(
                5,
                SimDuration::from_secs(60),
                LinkSpec::perfect(),
                seed,
            );
            let FaultAction::Partition(components) = &plan.actions()[0].action else {
                panic!("first action must be the partition");
            };
            assert_eq!(components.len(), 2);
            assert!(!components[0].is_empty());
            assert!(components[0].len() < components[1].len());
            let mut all: Vec<NodeId> = components.concat();
            all.sort();
            assert_eq!(all, (0..5).map(NodeId).collect::<Vec<_>>());
        }
    }

    #[test]
    fn action_code_rendering_is_valid_looking_rust() {
        let actions = [
            FaultAction::Crash(NodeId(3)),
            FaultAction::CrashLeader {
                down_for: SimDuration::from_secs(5),
            },
            FaultAction::Partition(vec![vec![NodeId(0)], vec![NodeId(1), NodeId(2)]]),
            FaultAction::Heal,
            FaultAction::SpawnProcess(NodeId(7)),
            FaultAction::SetLink(
                LinkSpec::from_paper_tuple(10.0, 0.05)
                    .with_duplication(0.25)
                    .with_jitter(SimDuration::from_millis(40)),
            ),
        ];
        for action in &actions {
            let code = action.to_code();
            assert!(code.starts_with("sle_chaos::FaultAction::"), "{code}");
        }
        let code = actions[5].to_code();
        assert!(code.contains("with_duplication(0.25)"), "{code}");
        assert!(code.contains("with_jitter"), "{code}");
        // A plain link renders without overlay calls.
        let plain = link_to_code(&LinkSpec::perfect());
        assert!(!plain.contains("with_duplication"), "{plain}");
        assert!(!plain.contains("with_jitter"), "{plain}");
    }
}
