//! The multi-seed sweep runner: N seeds × M fault-plan families × the three
//! services, each failure shrunk to a minimal reproducer and rendered as a
//! ready-to-paste `#[test]`.

use sle_election::ElectorKind;
use sle_fd::QosSpec;
use sle_net::link::LinkSpec;
use sle_obs::{MetricValue, Snapshot, TraceRecord};
use sle_sim::time::SimDuration;

use crate::engine::{run_plan, ChaosConfig};
use crate::invariants::Violation;
use crate::plan::{link_to_code, FaultPlan, PlanKind};
use crate::shrink::shrink_plan;

/// What to sweep over.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Services under test.
    pub algorithms: Vec<ElectorKind>,
    /// Fault-plan families.
    pub plans: Vec<PlanKind>,
    /// Number of seeds per (algorithm, family) cell.
    pub seeds: u64,
    /// First seed; cell `k` uses `seed_base + k`.
    pub seed_base: u64,
    /// Workstations per run.
    pub nodes: usize,
    /// Fault window per run.
    pub duration: SimDuration,
    /// Baseline link behaviour.
    pub link: LinkSpec,
    /// Failure-detection QoS of every join.
    pub qos: QosSpec,
    /// Whether to shrink failing plans (disable for a faster triage pass).
    pub shrink_failures: bool,
}

impl SweepConfig {
    /// The acceptance sweep: 50 seeds × all six families × S1/S2/S3.
    pub fn new() -> Self {
        SweepConfig {
            algorithms: ElectorKind::all().to_vec(),
            plans: PlanKind::all().to_vec(),
            seeds: 50,
            seed_base: 1000,
            nodes: 5,
            duration: SimDuration::from_secs(45),
            link: LinkSpec::from_paper_tuple(10.0, 0.01),
            qos: QosSpec::paper_default(),
            shrink_failures: true,
        }
    }

    /// The CI smoke sweep: a pinned handful of seeds, sized to finish well
    /// under 30 s of wall-clock time.
    pub fn smoke() -> Self {
        SweepConfig {
            seeds: 4,
            duration: SimDuration::from_secs(35),
            ..SweepConfig::new()
        }
    }

    /// Overrides the number of seeds per cell.
    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Overrides the number of workstations.
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes;
        self
    }

    /// Overrides the QoS (e.g. to demonstrate that a weakened detector is
    /// caught).
    pub fn with_qos(mut self, qos: QosSpec) -> Self {
        self.qos = qos;
        self
    }

    /// Overrides the baseline link.
    pub fn with_link(mut self, link: LinkSpec) -> Self {
        self.link = link;
        self
    }

    fn chaos_config(&self, algorithm: ElectorKind, nodes: usize, seed: u64) -> ChaosConfig {
        ChaosConfig::new(algorithm, nodes)
            .with_seed(seed)
            .with_link(self.link)
            .with_qos(self.qos)
            .with_duration(self.duration)
    }
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig::new()
    }
}

/// One failing sweep cell, shrunk and rendered.
#[derive(Debug, Clone)]
pub struct SweepFailure {
    /// The service that failed.
    pub algorithm: ElectorKind,
    /// The fault-plan family.
    pub plan_name: String,
    /// The failing seed.
    pub seed: u64,
    /// The violations of the original run.
    pub violations: Vec<Violation>,
    /// The 1-minimal plan that still fails.
    pub shrunk: FaultPlan,
    /// A ready-to-paste `#[test]` reproducing the failure.
    pub reproducer: String,
    /// End-of-run metrics registry snapshot of the failing run.
    pub metrics: Snapshot,
    /// The last events of the failing run's protocol trace.
    pub proto_tail: Vec<TraceRecord>,
}

/// How many trailing protocol-trace events a failure report keeps.
const PROTO_TAIL: usize = 12;

/// Aggregate results of one cell (algorithm × family).
#[derive(Debug, Clone)]
pub struct CellSummary {
    /// The service.
    pub algorithm: ElectorKind,
    /// The fault-plan family name.
    pub plan_name: String,
    /// Seeds run.
    pub runs: u64,
    /// Seeds that violated an invariant.
    pub failed: u64,
}

/// Everything a sweep produced.
#[derive(Debug, Clone)]
pub struct SweepSummary {
    /// Total runs executed.
    pub runs: u64,
    /// Per-cell aggregates, in execution order.
    pub cells: Vec<CellSummary>,
    /// Every failure, shrunk and rendered.
    pub failures: Vec<SweepFailure>,
}

impl SweepSummary {
    /// True if every run upheld every invariant.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Renders the summary as a text table (printed by the `chaos_sweep`
    /// binary and published as the CI artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "chaos sweep: {} runs, {} failing\n\n",
            self.runs,
            self.failures.len()
        ));
        out.push_str(&format!(
            "{:<10} {:<16} {:>6} {:>8}\n",
            "service", "plan", "runs", "failed"
        ));
        for cell in &self.cells {
            out.push_str(&format!(
                "{:<10} {:<16} {:>6} {:>8}\n",
                algorithm_label(cell.algorithm),
                cell.plan_name,
                cell.runs,
                cell.failed
            ));
        }
        for failure in &self.failures {
            out.push_str(&format!(
                "\n--- FAILURE: {} / {} / seed {} ---\n",
                algorithm_label(failure.algorithm),
                failure.plan_name,
                failure.seed
            ));
            for violation in &failure.violations {
                out.push_str(&format!("  {violation}\n"));
            }
            out.push_str(&render_failure_metrics(&failure.metrics));
            if !failure.proto_tail.is_empty() {
                out.push_str(&format!(
                    "  last {} protocol events:\n",
                    failure.proto_tail.len()
                ));
                for record in &failure.proto_tail {
                    out.push_str(&format!("    {record}\n"));
                }
            }
            out.push_str(&format!(
                "  shrunk to {} action(s); regression test:\n\n{}\n",
                failure.shrunk.len(),
                failure.reproducer
            ));
        }
        out
    }
}

/// A compact digest of the failing run's registry snapshot: the aggregate
/// QoS histograms, the mistake count, and the network counters.
fn render_failure_metrics(metrics: &Snapshot) -> String {
    let mut out = String::new();
    let detection = metrics.merged_histogram("node.", ".fd.detection_ns");
    let election = metrics.merged_histogram("node.", ".elect.election_ns");
    let mistakes = metrics.sum_counters("node.", ".fd.mistakes");
    out.push_str(&format!(
        "  metrics: {} detections (p99 {:.1} ms), {} elections (p99 {:.1} ms), {} mistakes\n",
        detection.count,
        detection.percentile_ms(0.99),
        election.count,
        election.percentile_ms(0.99),
        mistakes,
    ));
    let gauge = |name: &str| match metrics.get(name) {
        Some(MetricValue::Gauge(v)) => *v,
        _ => 0,
    };
    out.push_str(&format!(
        "  network: {} offered, {} lost, {} blocked, {} partitioned\n",
        gauge("sim.net.offered"),
        gauge("sim.net.lost"),
        gauge("sim.net.blocked"),
        gauge("sim.net.partitioned"),
    ));
    out
}

fn algorithm_label(algorithm: ElectorKind) -> &'static str {
    match algorithm {
        ElectorKind::OmegaId => "S1/omega-id",
        ElectorKind::OmegaLc => "S2/omega-lc",
        ElectorKind::OmegaL => "S3/omega-l",
    }
}

fn algorithm_variant(algorithm: ElectorKind) -> &'static str {
    match algorithm {
        ElectorKind::OmegaId => "OmegaId",
        ElectorKind::OmegaLc => "OmegaLc",
        ElectorKind::OmegaL => "OmegaL",
    }
}

fn algorithm_slug(algorithm: ElectorKind) -> &'static str {
    match algorithm {
        ElectorKind::OmegaId => "omega_id",
        ElectorKind::OmegaLc => "omega_lc",
        ElectorKind::OmegaL => "omega_l",
    }
}

/// Runs the whole sweep, shrinking and rendering every failure.
pub fn run_sweep(config: &SweepConfig) -> SweepSummary {
    let mut runs = 0u64;
    let mut cells = Vec::new();
    let mut failures = Vec::new();
    for &algorithm in &config.algorithms {
        for &kind in &config.plans {
            let mut failed = 0u64;
            // Scale-hungry families (LargeChurn needs room for 100+
            // processes) raise the deployment to their floor; the others
            // keep the sweep's configured size.
            let nodes = config.nodes.max(kind.min_nodes());
            for offset in 0..config.seeds {
                let seed = config.seed_base + offset;
                let chaos = config.chaos_config(algorithm, nodes, seed);
                let plan = kind.generate(nodes, config.duration, config.link, seed);
                let report = run_plan(&chaos, &plan);
                runs += 1;
                if report.ok() {
                    continue;
                }
                failed += 1;
                let shrunk = if config.shrink_failures {
                    shrink_plan(&chaos, &plan).plan
                } else {
                    plan.clone()
                };
                let reproducer = render_regression_test(&chaos, &shrunk, kind.name(), seed);
                let tail_from = report.proto_trace.len().saturating_sub(PROTO_TAIL);
                failures.push(SweepFailure {
                    algorithm,
                    plan_name: kind.name().to_string(),
                    seed,
                    violations: report.violations,
                    shrunk,
                    reproducer,
                    metrics: report.metrics,
                    proto_tail: report.proto_trace[tail_from..].to_vec(),
                });
            }
            cells.push(CellSummary {
                algorithm,
                plan_name: kind.name().to_string(),
                runs: config.seeds,
                failed,
            });
        }
    }
    SweepSummary {
        runs,
        cells,
        failures,
    }
}

/// Renders a failing `(config, plan)` pair as a self-contained `#[test]`
/// function, ready to paste into `crates/chaos/tests/`.
pub fn render_regression_test(
    config: &ChaosConfig,
    plan: &FaultPlan,
    family: &str,
    seed: u64,
) -> String {
    let mut actions = String::new();
    for timed in plan.actions() {
        actions.push_str(&format!(
            "\n        .at_nanos({}, {})",
            timed.at.as_nanos(),
            timed.action.to_code()
        ));
    }
    // The algorithm is part of the name: the same (family, seed) failing on
    // two services must render two distinct `#[test]` functions.
    let slug = format!(
        "{}_{}",
        algorithm_slug(config.algorithm),
        family.replace('-', "_")
    );
    format!(
        "#[test]\n\
         fn chaos_regression_{slug}_seed_{seed}() {{\n\
         \x20   let plan = sle_chaos::FaultPlan::new(\"{name}\"){actions};\n\
         \x20   let config = sle_chaos::ChaosConfig::new(\n\
         \x20       sle_election::ElectorKind::{algorithm},\n\
         \x20       {nodes},\n\
         \x20   )\n\
         \x20   .with_seed({seed})\n\
         \x20   .with_link({link})\n\
         \x20   .with_qos(\n\
         \x20       sle_fd::QosSpec::new(\n\
         \x20           sle_sim::SimDuration::from_nanos({qos_td}),\n\
         \x20           sle_sim::SimDuration::from_nanos({qos_tmr}),\n\
         \x20           {qos_pa:?},\n\
         \x20       )\n\
         \x20       .expect(\"valid QoS\"),\n\
         \x20   )\n\
         \x20   .with_duration(sle_sim::SimDuration::from_nanos({duration}))\n\
         \x20   .with_settle(sle_sim::SimDuration::from_nanos({settle}));\n\
         \x20   let report = sle_chaos::run_plan(&config, &plan);\n\
         \x20   assert!(report.ok(), \"invariant violations: {{:#?}}\", report.violations);\n\
         }}\n",
        slug = slug,
        seed = seed,
        name = plan.name(),
        actions = actions,
        algorithm = algorithm_variant(config.algorithm),
        nodes = config.nodes,
        link = link_to_code(&config.link),
        qos_td = config.qos.detection_time().as_nanos(),
        qos_tmr = config.qos.mistake_recurrence().as_nanos(),
        qos_pa = config.qos.availability(),
        duration = config.duration.as_nanos(),
        settle = config.settle.as_nanos(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_healthy_sweep_is_clean() {
        let config = SweepConfig::new()
            .with_seeds(2)
            .with_nodes(4)
            .with_link(LinkSpec::lan());
        let config = SweepConfig {
            duration: SimDuration::from_secs(35),
            ..config
        };
        let summary = run_sweep(&config);
        assert_eq!(summary.runs, 2 * 6 * 3);
        assert!(summary.ok(), "{}", summary.render());
        assert_eq!(summary.cells.len(), 18);
        assert!(summary.render().contains("chaos sweep"));
        assert!(summary.render().contains("large-churn"));
    }

    #[test]
    fn a_weakened_detector_is_caught_and_rendered() {
        let weakened = QosSpec::new(
            SimDuration::from_millis(40),
            SimDuration::from_secs(3600),
            0.999,
        )
        .unwrap();
        let config = SweepConfig::new()
            .with_seeds(1)
            .with_nodes(3)
            .with_qos(weakened)
            .with_link(LinkSpec::from_paper_tuple(25.0, 0.1));
        let config = SweepConfig {
            algorithms: vec![ElectorKind::OmegaLc],
            plans: vec![PlanKind::LeaderChurn],
            duration: SimDuration::from_secs(30),
            ..config
        };
        let summary = run_sweep(&config);
        assert!(!summary.ok(), "the weakened detector must be caught");
        let failure = &summary.failures[0];
        // The failure block carries the run's observability context.
        assert!(
            !failure.metrics.metrics.is_empty(),
            "empty metrics snapshot"
        );
        assert!(!failure.proto_tail.is_empty(), "empty protocol trace tail");
        let rendered = summary.render();
        assert!(rendered.contains("metrics:"), "{rendered}");
        assert!(rendered.contains("last "), "{rendered}");
        assert!(failure.reproducer.contains("#[test]"));
        assert!(failure
            .reproducer
            .contains("chaos_regression_omega_lc_leader_churn"));
        assert!(
            failure.shrunk.len() <= 2,
            "shrinking failed: {:?}",
            failure.shrunk
        );
        assert!(summary.render().contains("FAILURE"));
    }
}
