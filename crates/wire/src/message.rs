//! [`WireFormat`] implementations for the service's message vocabulary
//! (`sle-core`'s [`ServiceMessage`] family and the election payload it
//! carries).
//!
//! The field layout is specified normatively in `docs/WIRE.md`; the
//! encoding here matches, byte for byte, the sizes
//! [`WireSize`](sle_sim::actor::WireSize) has always charged to the
//! simulator's bandwidth accounting (asserted by `body_len_matches_wire_size`
//! in this module's tests and by the property suite in `tests/properties.rs`).

use sle_core::lease::FencingToken;
use sle_core::messages::{AliveHeader, GroupAlive, GroupAnnouncement, ServiceMessage};
use sle_core::process::{GroupId, ProcessId};
use sle_election::{AlivePayload, LeaderClaim};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::codec::{Reader, WireFormat, Writer};
use crate::error::WireError;

/// Message-tag byte for HELLO (membership gossip).
pub const TAG_HELLO: u8 = 1;
/// Message-tag byte for ALIVE (heartbeat + election payload).
pub const TAG_ALIVE: u8 = 2;
/// Message-tag byte for ACCUSE ("I believe you crashed").
pub const TAG_ACCUSE: u8 = 3;
/// Message-tag byte for LEAVE (explicit group withdrawal).
pub const TAG_LEAVE: u8 = 4;
/// Message-tag byte for ALIVE-BATCH (heartbeats for several groups in one
/// datagram).
pub const TAG_ALIVE_BATCH: u8 = 5;
/// Message-tag byte for LEASE-GRANT (the leader's fencing-token broadcast).
pub const TAG_LEASE_GRANT: u8 = 6;
/// Message-tag byte for CLIENT-REQUEST (client tier, `sle-app`).
pub const TAG_CLIENT_REQUEST: u8 = 7;
/// Message-tag byte for CLIENT-REPLY (a served or fencing-rejected request).
pub const TAG_CLIENT_REPLY: u8 = 8;
/// Message-tag byte for REDIRECT ("not the leader; try there").
pub const TAG_REDIRECT: u8 = 9;

impl WireFormat for NodeId {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(NodeId(r.take_u32()?))
    }
}

impl WireFormat for GroupId {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u32(self.0);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(GroupId(r.take_u32()?))
    }
}

impl WireFormat for ProcessId {
    fn encode_into(&self, w: &mut Writer) {
        self.node.encode_into(w);
        w.put_u32(self.local);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let node = NodeId::decode(r)?;
        let local = r.take_u32()?;
        Ok(ProcessId::new(node, local))
    }
}

impl WireFormat for SimInstant {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SimInstant::from_nanos(r.take_u64()?))
    }
}

impl WireFormat for SimDuration {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(SimDuration::from_nanos(r.take_u64()?))
    }
}

fn encode_bool(v: bool, w: &mut Writer) {
    w.put_u8(u8::from(v));
}

fn decode_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.take_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::BadOptionTag(other)),
    }
}

impl WireFormat for LeaderClaim {
    fn encode_into(&self, w: &mut Writer) {
        self.node.encode_into(w);
        self.accusation_time.encode_into(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(LeaderClaim {
            node: NodeId::decode(r)?,
            accusation_time: SimInstant::decode(r)?,
        })
    }
}

impl WireFormat for AlivePayload {
    fn encode_into(&self, w: &mut Writer) {
        self.accusation_time.encode_into(w);
        w.put_u64(self.epoch);
        match &self.local_leader {
            None => w.put_u8(0),
            Some(claim) => {
                w.put_u8(1);
                claim.encode_into(w);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let accusation_time = SimInstant::decode(r)?;
        let epoch = r.take_u64()?;
        let local_leader = match r.take_u8()? {
            0 => None,
            1 => Some(LeaderClaim::decode(r)?),
            other => return Err(WireError::BadOptionTag(other)),
        };
        Ok(AlivePayload {
            accusation_time,
            epoch,
            local_leader,
        })
    }
}

/// A fencing token: 28 bytes (see [`FencingToken::WIRE_SIZE`]).
impl WireFormat for FencingToken {
    fn encode_into(&self, w: &mut Writer) {
        self.accusation_time.encode_into(w);
        self.node.encode_into(w);
        w.put_u64(self.epoch);
        w.put_u64(self.incarnation);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(FencingToken {
            accusation_time: SimInstant::decode(r)?,
            node: NodeId::decode(r)?,
            epoch: r.take_u64()?,
            incarnation: r.take_u64()?,
        })
    }
}

impl WireFormat for AliveHeader {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u64(self.incarnation);
        w.put_u64(self.seq);
        self.sent_at.encode_into(w);
        self.sending_interval.encode_into(w);
        self.requested_interval.encode_into(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(AliveHeader {
            incarnation: r.take_u64()?,
            seq: r.take_u64()?,
            sent_at: SimInstant::decode(r)?,
            sending_interval: SimDuration::decode(r)?,
            requested_interval: SimDuration::decode(r)?,
        })
    }
}

/// Decodes a `count`-prefixed list, capping the pre-allocation by what the
/// remaining bytes could possibly hold so a hostile count cannot force a
/// large allocation before the bounds checks reject it.
fn decode_list<T: WireFormat>(
    r: &mut Reader<'_>,
    count: usize,
    min_element_bytes: usize,
) -> Result<Vec<T>, WireError> {
    let plausible = r.remaining() / min_element_bytes.max(1);
    let mut items = Vec::with_capacity(count.min(plausible));
    for _ in 0..count {
        items.push(T::decode(r)?);
    }
    Ok(items)
}

/// A `(process, is_candidate)` membership entry: 9 bytes.
impl WireFormat for (ProcessId, bool) {
    fn encode_into(&self, w: &mut Writer) {
        self.0.encode_into(w);
        encode_bool(self.1, w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let process = ProcessId::decode(r)?;
        let candidate = decode_bool(r)?;
        Ok((process, candidate))
    }
}

impl WireFormat for GroupAnnouncement {
    fn encode_into(&self, w: &mut Writer) {
        self.group.encode_into(w);
        // A wrapped count can only happen past 65 535 entries, i.e. far
        // beyond MAX_DATAGRAM; encode_frame rejects such bodies by size
        // before they can reach a socket.
        w.put_u16(self.processes.len() as u16);
        for entry in &self.processes {
            entry.encode_into(w);
        }
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let group = GroupId::decode(r)?;
        let count = r.take_u16()? as usize;
        let processes = decode_list(r, count, 9)?;
        Ok(GroupAnnouncement { group, processes })
    }
}

/// A batched per-group ALIVE entry: 45 bytes plus the optional leader
/// claim.
impl WireFormat for GroupAlive {
    fn encode_into(&self, w: &mut Writer) {
        self.group.encode_into(w);
        self.sending_interval.encode_into(w);
        self.requested_interval.encode_into(w);
        self.representative.encode_into(w);
        self.payload.encode_into(w);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let group = GroupId::decode(r)?;
        let sending_interval = SimDuration::decode(r)?;
        let requested_interval = SimDuration::decode(r)?;
        let representative = ProcessId::decode(r)?;
        let payload = AlivePayload::decode(r)?;
        Ok(GroupAlive {
            group,
            sending_interval,
            requested_interval,
            payload,
            representative,
        })
    }
}

impl WireFormat for ServiceMessage {
    fn encode_into(&self, w: &mut Writer) {
        match self {
            ServiceMessage::Hello {
                incarnation,
                sent_at,
                announcements,
            } => {
                w.put_u8(TAG_HELLO);
                w.put_u64(*incarnation);
                sent_at.encode_into(w);
                w.put_u16(announcements.len() as u16);
                for a in announcements.iter() {
                    a.encode_into(w);
                }
            }
            ServiceMessage::Alive {
                group,
                header,
                payload,
                representative,
            } => {
                w.put_u8(TAG_ALIVE);
                group.encode_into(w);
                header.encode_into(w);
                representative.encode_into(w);
                payload.encode_into(w);
            }
            ServiceMessage::AliveBatch {
                incarnation,
                seq,
                sent_at,
                alives,
            } => {
                w.put_u8(TAG_ALIVE_BATCH);
                w.put_u64(*incarnation);
                w.put_u64(*seq);
                sent_at.encode_into(w);
                // As with HELLO announcements, a wrapped count would need
                // 65 536+ entries — rejected by encode_frame's size limit
                // long before.
                w.put_u16(alives.len() as u16);
                for entry in alives {
                    entry.encode_into(w);
                }
            }
            ServiceMessage::Accuse { group, epoch } => {
                w.put_u8(TAG_ACCUSE);
                group.encode_into(w);
                w.put_u64(*epoch);
            }
            ServiceMessage::Leave { group, process } => {
                w.put_u8(TAG_LEAVE);
                group.encode_into(w);
                process.encode_into(w);
            }
            ServiceMessage::LeaseGrant {
                group,
                token,
                valid_for,
            } => {
                w.put_u8(TAG_LEASE_GRANT);
                group.encode_into(w);
                token.encode_into(w);
                valid_for.encode_into(w);
            }
            ServiceMessage::ClientRequest {
                group,
                session,
                seq,
                payload,
            } => {
                w.put_u8(TAG_CLIENT_REQUEST);
                group.encode_into(w);
                w.put_u64(*session);
                w.put_u64(*seq);
                w.put_u64(*payload);
            }
            ServiceMessage::ClientReply {
                group,
                session,
                seq,
                applied,
                value,
                token,
            } => {
                w.put_u8(TAG_CLIENT_REPLY);
                group.encode_into(w);
                w.put_u64(*session);
                w.put_u64(*seq);
                encode_bool(*applied, w);
                w.put_u64(*value);
                token.encode_into(w);
            }
            ServiceMessage::Redirect {
                group,
                session,
                seq,
                leader,
            } => {
                w.put_u8(TAG_REDIRECT);
                group.encode_into(w);
                w.put_u64(*session);
                w.put_u64(*seq);
                match leader {
                    None => w.put_u8(0),
                    Some(process) => {
                        w.put_u8(1);
                        process.encode_into(w);
                    }
                }
            }
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        match r.take_u8()? {
            TAG_HELLO => {
                let incarnation = r.take_u64()?;
                let sent_at = SimInstant::decode(r)?;
                let count = r.take_u16()? as usize;
                // An announcement is at least 6 bytes (group + empty list).
                let announcements: Vec<GroupAnnouncement> = decode_list(r, count, 6)?;
                Ok(ServiceMessage::Hello {
                    incarnation,
                    sent_at,
                    announcements: announcements.into(),
                })
            }
            TAG_ALIVE => {
                let group = GroupId::decode(r)?;
                let header = AliveHeader::decode(r)?;
                let representative = ProcessId::decode(r)?;
                let payload = AlivePayload::decode(r)?;
                Ok(ServiceMessage::Alive {
                    group,
                    header,
                    payload,
                    representative,
                })
            }
            TAG_ALIVE_BATCH => {
                let incarnation = r.take_u64()?;
                let seq = r.take_u64()?;
                let sent_at = SimInstant::decode(r)?;
                let count = r.take_u16()? as usize;
                // A batch entry is at least 45 bytes (claimless payload).
                let alives = decode_list(r, count, 45)?;
                Ok(ServiceMessage::AliveBatch {
                    incarnation,
                    seq,
                    sent_at,
                    alives,
                })
            }
            TAG_ACCUSE => {
                let group = GroupId::decode(r)?;
                let epoch = r.take_u64()?;
                Ok(ServiceMessage::Accuse { group, epoch })
            }
            TAG_LEAVE => {
                let group = GroupId::decode(r)?;
                let process = ProcessId::decode(r)?;
                Ok(ServiceMessage::Leave { group, process })
            }
            TAG_LEASE_GRANT => {
                let group = GroupId::decode(r)?;
                let token = FencingToken::decode(r)?;
                let valid_for = SimDuration::decode(r)?;
                Ok(ServiceMessage::LeaseGrant {
                    group,
                    token,
                    valid_for,
                })
            }
            TAG_CLIENT_REQUEST => {
                let group = GroupId::decode(r)?;
                let session = r.take_u64()?;
                let seq = r.take_u64()?;
                let payload = r.take_u64()?;
                Ok(ServiceMessage::ClientRequest {
                    group,
                    session,
                    seq,
                    payload,
                })
            }
            TAG_CLIENT_REPLY => {
                let group = GroupId::decode(r)?;
                let session = r.take_u64()?;
                let seq = r.take_u64()?;
                let applied = decode_bool(r)?;
                let value = r.take_u64()?;
                let token = FencingToken::decode(r)?;
                Ok(ServiceMessage::ClientReply {
                    group,
                    session,
                    seq,
                    applied,
                    value,
                    token,
                })
            }
            TAG_REDIRECT => {
                let group = GroupId::decode(r)?;
                let session = r.take_u64()?;
                let seq = r.take_u64()?;
                let leader = match r.take_u8()? {
                    0 => None,
                    1 => Some(ProcessId::decode(r)?),
                    other => return Err(WireError::BadOptionTag(other)),
                };
                Ok(ServiceMessage::Redirect {
                    group,
                    session,
                    seq,
                    leader,
                })
            }
            other => Err(WireError::UnknownTag(other)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::WireSize;

    fn samples() -> Vec<ServiceMessage> {
        vec![
            ServiceMessage::Hello {
                incarnation: 3,
                sent_at: SimInstant::from_nanos(1_000_000),
                announcements: vec![
                    GroupAnnouncement {
                        group: GroupId(1),
                        processes: vec![
                            (ProcessId::new(NodeId(0), 0), true),
                            (ProcessId::new(NodeId(0), 1), false),
                        ],
                    },
                    GroupAnnouncement {
                        group: GroupId(9),
                        processes: Vec::new(),
                    },
                ]
                .into(),
            },
            ServiceMessage::Alive {
                group: GroupId(7),
                header: AliveHeader {
                    incarnation: 2,
                    seq: 99,
                    sent_at: SimInstant::from_nanos(42),
                    sending_interval: SimDuration::from_millis(250),
                    requested_interval: SimDuration::from_millis(125),
                },
                payload: AlivePayload {
                    accusation_time: SimInstant::from_nanos(7),
                    epoch: 5,
                    local_leader: Some(LeaderClaim {
                        node: NodeId(3),
                        accusation_time: SimInstant::ZERO,
                    }),
                },
                representative: ProcessId::new(NodeId(2), 4),
            },
            ServiceMessage::AliveBatch {
                incarnation: 1,
                seq: 512,
                sent_at: SimInstant::from_nanos(77_000),
                alives: vec![
                    GroupAlive {
                        group: GroupId(4),
                        sending_interval: SimDuration::from_millis(250),
                        requested_interval: SimDuration::from_millis(125),
                        payload: AlivePayload {
                            accusation_time: SimInstant::from_nanos(11),
                            epoch: 2,
                            local_leader: None,
                        },
                        representative: ProcessId::new(NodeId(1), 0),
                    },
                    GroupAlive {
                        group: GroupId(6),
                        sending_interval: SimDuration::from_millis(500),
                        requested_interval: SimDuration::from_millis(500),
                        payload: AlivePayload {
                            accusation_time: SimInstant::ZERO,
                            epoch: 0,
                            local_leader: Some(LeaderClaim {
                                node: NodeId(0),
                                accusation_time: SimInstant::from_nanos(3),
                            }),
                        },
                        representative: ProcessId::new(NodeId(1), 2),
                    },
                ],
            },
            ServiceMessage::Accuse {
                group: GroupId(1),
                epoch: 8,
            },
            ServiceMessage::Leave {
                group: GroupId(2),
                process: ProcessId::new(NodeId(1), 0),
            },
            ServiceMessage::LeaseGrant {
                group: GroupId(3),
                token: FencingToken {
                    accusation_time: SimInstant::from_nanos(1_000),
                    node: NodeId(2),
                    epoch: 4,
                    incarnation: 1,
                },
                valid_for: SimDuration::from_millis(1_000),
            },
            ServiceMessage::ClientRequest {
                group: GroupId(3),
                session: 77,
                seq: 5,
                payload: 12,
            },
            ServiceMessage::ClientReply {
                group: GroupId(3),
                session: 77,
                seq: 5,
                applied: true,
                value: 42,
                token: FencingToken {
                    accusation_time: SimInstant::from_nanos(1_000),
                    node: NodeId(2),
                    epoch: 4,
                    incarnation: 1,
                },
            },
            ServiceMessage::Redirect {
                group: GroupId(3),
                session: 77,
                seq: 6,
                leader: Some(ProcessId::new(NodeId(0), 1)),
            },
            ServiceMessage::Redirect {
                group: GroupId(3),
                session: 78,
                seq: 0,
                leader: None,
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for msg in samples() {
            let mut w = Writer::new();
            msg.encode_into(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = ServiceMessage::decode(&mut r).unwrap();
            r.expect_end().unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn body_len_matches_wire_size() {
        for msg in samples() {
            let mut w = Writer::new();
            msg.encode_into(&mut w);
            assert_eq!(w.len(), msg.wire_size(), "size mismatch for {msg:?}");
        }
    }

    #[test]
    fn unknown_tag_and_bad_bool_are_rejected() {
        let mut r = Reader::new(&[200]);
        assert_eq!(
            ServiceMessage::decode(&mut r),
            Err(WireError::UnknownTag(200))
        );
        // An ALIVE whose local-leader option tag is 7.
        let mut w = Writer::new();
        if let ServiceMessage::Alive {
            group,
            header,
            representative,
            payload,
        } = &samples()[1]
        {
            w.put_u8(TAG_ALIVE);
            group.encode_into(&mut w);
            header.encode_into(&mut w);
            representative.encode_into(&mut w);
            payload.accusation_time.encode_into(&mut w);
            w.put_u64(payload.epoch);
            w.put_u8(7);
        }
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(
            ServiceMessage::decode(&mut r),
            Err(WireError::BadOptionTag(7))
        );
    }

    #[test]
    fn hostile_count_cannot_force_allocation() {
        // A HELLO claiming 65 535 announcements but carrying none.
        let mut w = Writer::new();
        w.put_u8(TAG_HELLO);
        w.put_u64(0);
        SimInstant::ZERO.encode_into(&mut w);
        w.put_u16(u16::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            ServiceMessage::decode(&mut r),
            Err(WireError::Truncated { .. })
        ));
    }
}
