//! Decode/encode failures.
//!
//! Every way a datagram can be malformed maps to one variant here; decoding
//! *never* panics, because the UDP transport feeds it bytes straight off the
//! network and a garbage datagram must cost one error value, not a daemon.

use std::fmt;

/// Why a byte buffer could not be decoded (or a message encoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field being read was complete.
    Truncated {
        /// Bytes still needed by the field being decoded.
        needed: usize,
        /// Bytes actually remaining in the buffer.
        remaining: usize,
    },
    /// The first four bytes are not the protocol magic `b"SLEP"`.
    BadMagic([u8; 4]),
    /// The version byte is one this decoder does not speak.
    UnsupportedVersion(u8),
    /// The message-tag byte does not name a known message family.
    UnknownTag(u8),
    /// An option-tag byte was neither 0 (absent) nor 1 (present).
    BadOptionTag(u8),
    /// Bytes were left over after the message was fully decoded.
    TrailingBytes(usize),
    /// The encoded message would exceed [`crate::MAX_DATAGRAM`] bytes.
    TooLarge(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { needed, remaining } => write!(
                f,
                "truncated datagram: field needs {needed} bytes, {remaining} remain"
            ),
            WireError::BadMagic(bytes) => write!(f, "bad magic {bytes:?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            WireError::BadOptionTag(t) => write!(f, "bad option tag {t}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::TooLarge(n) => write!(
                f,
                "encoded datagram is {n} bytes, over the {} byte limit",
                crate::MAX_DATAGRAM
            ),
        }
    }
}

impl std::error::Error for WireError {}
