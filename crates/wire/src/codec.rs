//! The byte-level primitives: a bounds-checked [`Reader`], an appending
//! [`Writer`], and the [`WireFormat`] trait tying a type to its encoding.
//!
//! All integers are big-endian (network byte order) and fixed-width, so the
//! encoded size of a message equals its
//! [`WireSize`](sle_sim::actor::WireSize) — the byte budget the simulator
//! has always charged for it.

use crate::error::WireError;

/// An append-only byte sink for encoding.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }
}

/// A bounds-checked cursor over received bytes for decoding.
///
/// Every `take_*` either returns a value or a [`WireError::Truncated`];
/// there is no way to read past the end, so feeding the decoder arbitrary
/// network garbage is safe.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, WireError> {
        let b = self.take(2)?;
        Ok(u16::from_be_bytes([b[0], b[1]]))
    }

    /// Reads a big-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads exactly `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Fails with [`WireError::TrailingBytes`] unless the buffer is spent.
    pub fn expect_end(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(self.remaining()))
        }
    }
}

/// A type with a canonical binary encoding on the service's wire.
///
/// The contract, enforced by the property tests in this crate:
///
/// 1. `decode(encode(x)) == x` for every value (round-trip),
/// 2. decoding never panics, whatever the bytes,
/// 3. for the service message types, the encoded length equals the
///    simulator's [`WireSize`](sle_sim::actor::WireSize) accounting.
pub trait WireFormat: Sized {
    /// Appends this value's encoding to `w`.
    fn encode_into(&self, w: &mut Writer);

    /// Decodes one value from `r`, consuming exactly its encoding.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the bytes are truncated or malformed.
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError>;
}

impl WireFormat for u8 {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u8(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u8()
    }
}

impl WireFormat for u16 {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u16(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u16()
    }
}

impl WireFormat for u32 {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u32(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u32()
    }
}

impl WireFormat for u64 {
    fn encode_into(&self, w: &mut Writer) {
        w.put_u64(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        r.take_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_big_endian() {
        let mut w = Writer::new();
        0xAAu8.encode_into(&mut w);
        0x1234u16.encode_into(&mut w);
        0xDEAD_BEEFu32.encode_into(&mut w);
        0x0102_0304_0506_0708u64.encode_into(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes[0], 0xAA);
        assert_eq!(&bytes[1..3], &[0x12, 0x34]);
        let mut r = Reader::new(&bytes);
        assert_eq!(u8::decode(&mut r).unwrap(), 0xAA);
        assert_eq!(u16::decode(&mut r).unwrap(), 0x1234);
        assert_eq!(u32::decode(&mut r).unwrap(), 0xDEAD_BEEF);
        assert_eq!(u64::decode(&mut r).unwrap(), 0x0102_0304_0506_0708);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn truncated_reads_report_needed_and_remaining() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(
            u64::decode(&mut r),
            Err(WireError::Truncated {
                needed: 8,
                remaining: 3
            })
        );
        // A failed read consumes nothing.
        assert_eq!(r.remaining(), 3);
        assert_eq!(u16::decode(&mut r).unwrap(), 0x0102);
        assert_eq!(r.expect_end(), Err(WireError::TrailingBytes(1)));
    }

    #[test]
    fn writer_reports_length() {
        let mut w = Writer::new();
        assert!(w.is_empty());
        w.put_bytes(&[1, 2, 3]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
    }
}
