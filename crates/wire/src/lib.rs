//! # sle-wire — the service's binary datagram codec
//!
//! The DSN 2008 paper deploys the leader-election service as one lightweight
//! daemon per workstation exchanging **UDP datagrams** (Section 6's
//! evaluation runs it on a 12-workstation cluster for days). Inside this
//! reproduction the protocol has always been sans-io — `ServiceMessage`
//! values handed between state machines — and the byte cost of each message
//! was only *modelled*, via [`WireSize`](sle_sim::actor::WireSize). This
//! crate makes those bytes real: a versioned, dependency-free binary codec
//! whose encoded length equals, byte for byte, the `wire_size()` the
//! simulator has always charged, so the bandwidth figures of the paper's
//! Figure 6 carry over unchanged to the real network.
//!
//! The normative format specification lives in **`docs/WIRE.md`** at the
//! workspace root: magic, version byte, sender identity, big-endian
//! fixed-width fields, and the [`MAX_DATAGRAM`] size limit. The layers here:
//!
//! * [`codec`] — bounds-checked [`Reader`] / [`Writer`] primitives and the
//!   [`WireFormat`] trait,
//! * [`message`] — [`WireFormat`] implementations for the whole message
//!   vocabulary (HELLO / ALIVE / ACCUSE / LEAVE and their payloads),
//! * [`encode_frame`] / [`decode_frame`] — the datagram envelope used by
//!   the `sle-udp` transport.
//!
//! Decoding is hardened against the network: truncated, corrupted,
//! oversized or plain garbage datagrams produce a [`WireError`], never a
//! panic and never an unbounded allocation (property-tested in
//! `tests/properties.rs`).
//!
//! ## Example: a message's round trip through a datagram
//!
//! ```
//! use sle_core::messages::ServiceMessage;
//! use sle_core::process::GroupId;
//! use sle_sim::actor::NodeId;
//! use sle_wire::{decode_frame, encode_frame, WireError, HEADER_LEN};
//!
//! let accuse = ServiceMessage::Accuse { group: GroupId(3), epoch: 9 };
//! let datagram = encode_frame(NodeId(5), &accuse).unwrap();
//! // magic + version + sender, then the 13-byte ACCUSE body.
//! assert_eq!(datagram.len(), HEADER_LEN + 13);
//!
//! let (from, decoded): (NodeId, ServiceMessage) = decode_frame(&datagram).unwrap();
//! assert_eq!(from, NodeId(5));
//! assert_eq!(decoded, accuse);
//!
//! // Truncation is rejected, not panicked on.
//! let err = decode_frame::<ServiceMessage>(&datagram[..datagram.len() - 1]);
//! assert!(matches!(err, Err(WireError::Truncated { .. })));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod error;
pub mod message;

pub use codec::{Reader, WireFormat, Writer};
pub use error::WireError;
pub use message::{
    TAG_ACCUSE, TAG_ALIVE, TAG_ALIVE_BATCH, TAG_CLIENT_REPLY, TAG_CLIENT_REQUEST, TAG_HELLO,
    TAG_LEASE_GRANT, TAG_LEAVE, TAG_REDIRECT,
};

use sle_sim::actor::NodeId;

/// The four magic bytes opening every datagram: `b"SLEP"` (Stable Leader
/// Election Protocol).
pub const MAGIC: [u8; 4] = *b"SLEP";

/// The wire-format version this crate encodes and the only one it decodes.
///
/// Bumped on any incompatible layout change; see `docs/WIRE.md` for the
/// compatibility rules. History: v1 = the original HELLO/ALIVE/ACCUSE/LEAVE
/// vocabulary; v2 added the ALIVE-BATCH message (tag `05`) and redefined
/// the ALIVE `seq` as a node-level per-destination stream; v3 added the
/// client tier (`sle-app`): LEASE-GRANT (tag `06`), CLIENT-REQUEST (`07`),
/// CLIENT-REPLY (`08`) and REDIRECT (`09`).
pub const VERSION: u8 = 3;

/// Bytes of envelope preceding the message body: magic (4), version (1),
/// sender node id (4).
pub const HEADER_LEN: usize = 9;

/// Upper bound on a whole datagram (envelope + body), chosen to fit a
/// single unfragmented packet on a standard 1500-byte-MTU Ethernet path.
///
/// Encoding a larger message fails with [`WireError::TooLarge`]; receivers
/// drop larger datagrams before parsing them.
pub const MAX_DATAGRAM: usize = 1400;

/// Encodes `msg` into a complete datagram, stamped as sent by `from`.
///
/// # Errors
///
/// Returns [`WireError::TooLarge`] if the datagram would exceed
/// [`MAX_DATAGRAM`] bytes.
pub fn encode_frame<M: WireFormat>(from: NodeId, msg: &M) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    w.put_bytes(&MAGIC);
    w.put_u8(VERSION);
    from.encode_into(&mut w);
    msg.encode_into(&mut w);
    if w.len() > MAX_DATAGRAM {
        return Err(WireError::TooLarge(w.len()));
    }
    Ok(w.into_bytes())
}

/// Decodes a complete datagram into its claimed sender and message.
///
/// The decode is strict: the magic and version must match, the body must
/// parse, and no bytes may be left over.
///
/// # Errors
///
/// Returns a [`WireError`] describing the first malformation found; no
/// input can make this panic.
pub fn decode_frame<M: WireFormat>(bytes: &[u8]) -> Result<(NodeId, M), WireError> {
    if bytes.len() > MAX_DATAGRAM {
        return Err(WireError::TooLarge(bytes.len()));
    }
    let mut r = Reader::new(bytes);
    let magic = r.take_bytes(4)?;
    if magic != MAGIC {
        return Err(WireError::BadMagic([
            magic[0], magic[1], magic[2], magic[3],
        ]));
    }
    let version = r.take_u8()?;
    if version != VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let from = NodeId::decode(&mut r)?;
    let msg = M::decode(&mut r)?;
    r.expect_end()?;
    Ok((from, msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_core::messages::ServiceMessage;
    use sle_core::process::{GroupId, ProcessId};

    fn sample() -> ServiceMessage {
        ServiceMessage::Leave {
            group: GroupId(2),
            process: ProcessId::new(NodeId(1), 3),
        }
    }

    #[test]
    fn frame_round_trips() {
        let bytes = encode_frame(NodeId(9), &sample()).unwrap();
        assert_eq!(&bytes[..4], b"SLEP");
        assert_eq!(bytes[4], VERSION);
        assert_eq!(bytes.len(), HEADER_LEN + 13);
        let (from, msg): (NodeId, ServiceMessage) = decode_frame(&bytes).unwrap();
        assert_eq!(from, NodeId(9));
        assert_eq!(msg, sample());
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let mut bytes = encode_frame(NodeId(0), &sample()).unwrap();
        bytes[0] = b'X';
        assert!(matches!(
            decode_frame::<ServiceMessage>(&bytes),
            Err(WireError::BadMagic(_))
        ));
        let mut bytes = encode_frame(NodeId(0), &sample()).unwrap();
        bytes[4] = 99;
        assert_eq!(
            decode_frame::<ServiceMessage>(&bytes),
            Err(WireError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_frame(NodeId(0), &sample()).unwrap();
        bytes.push(0);
        assert_eq!(
            decode_frame::<ServiceMessage>(&bytes),
            Err(WireError::TrailingBytes(1))
        );
    }

    #[test]
    fn oversized_input_is_rejected_before_parsing() {
        let big = vec![0u8; MAX_DATAGRAM + 1];
        assert_eq!(
            decode_frame::<ServiceMessage>(&big),
            Err(WireError::TooLarge(MAX_DATAGRAM + 1))
        );
    }

    #[test]
    fn oversized_message_is_rejected_at_encode_time() {
        use sle_core::messages::GroupAnnouncement;
        use sle_sim::time::SimInstant;
        // 200 announcements * (4 + 2) bytes > 1400 - 19 - 9.
        let announcements = (0..250)
            .map(|i| GroupAnnouncement {
                group: GroupId(i),
                processes: Vec::new(),
            })
            .collect();
        let hello = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements,
        };
        assert!(matches!(
            encode_frame(NodeId(0), &hello),
            Err(WireError::TooLarge(_))
        ));
    }

    #[test]
    fn errors_display_helpfully() {
        assert_eq!(
            WireError::UnsupportedVersion(9).to_string(),
            "unsupported wire version 9"
        );
        assert_eq!(
            WireError::Truncated {
                needed: 8,
                remaining: 3
            }
            .to_string(),
            "truncated datagram: field needs 8 bytes, 3 remain"
        );
        assert_eq!(
            WireError::UnknownTag(7).to_string(),
            "unknown message tag 7"
        );
        assert_eq!(WireError::BadOptionTag(7).to_string(), "bad option tag 7");
        assert_eq!(
            WireError::TrailingBytes(2).to_string(),
            "2 trailing bytes after message"
        );
        assert_eq!(
            WireError::BadMagic(*b"XXXX").to_string(),
            "bad magic [88, 88, 88, 88]"
        );
        assert!(WireError::TooLarge(2000).to_string().contains("1400"));
    }
}
