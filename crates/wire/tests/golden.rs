//! Golden-vector regression corpus for the wire codec.
//!
//! One canonical message per [`ServiceMessage`] variant, checked in as
//! literal bytes. `encode` must reproduce each vector byte for byte and
//! `decode` must invert it exactly, so a codec refactor that silently
//! changes the on-wire format — reordered fields, a width change, a new
//! default — fails here instead of surfacing as a rolling-upgrade
//! incompatibility between daemons. (Property tests in `properties.rs`
//! check the codec against *itself*; these vectors pin it to the format
//! every already-deployed daemon speaks, as specified in `docs/WIRE.md`.)
//!
//! If a vector mismatch is *intended* (a deliberate format change), bump
//! `sle_wire::VERSION`, regenerate the vector from the test's failure
//! output, and document the new layout in `docs/WIRE.md`.

use sle_core::lease::FencingToken;
use sle_core::messages::{AliveHeader, GroupAlive, GroupAnnouncement, ServiceMessage};
use sle_core::process::{GroupId, ProcessId};
use sle_election::{AlivePayload, LeaderClaim};
use sle_sim::actor::{NodeId, WireSize};
use sle_sim::time::{SimDuration, SimInstant};
use sle_wire::{Reader, WireFormat, Writer};

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn from_hex(hex: &str) -> Vec<u8> {
    assert!(hex.len().is_multiple_of(2), "odd-length hex vector");
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).expect("valid hex"))
        .collect()
}

/// Asserts that `msg` encodes exactly to `golden_hex` and decodes back.
fn check(name: &str, msg: &ServiceMessage, golden_hex: &str) {
    let mut w = Writer::new();
    msg.encode_into(&mut w);
    let encoded = w.into_bytes();
    assert_eq!(
        to_hex(&encoded),
        golden_hex,
        "{name}: encoding changed; if intended, bump sle_wire::VERSION and \
         update this vector + docs/WIRE.md"
    );
    assert_eq!(
        encoded.len(),
        msg.wire_size(),
        "{name}: encoded length diverged from the simulator's wire_size()"
    );
    let golden = from_hex(golden_hex);
    let mut r = Reader::new(&golden);
    let decoded = ServiceMessage::decode(&mut r).expect("golden vector decodes");
    r.expect_end().expect("golden vector fully consumed");
    assert_eq!(&decoded, msg, "{name}: decode(golden) != message");
}

#[test]
fn hello_golden_vector() {
    let msg = ServiceMessage::Hello {
        incarnation: 2,
        sent_at: SimInstant::from_nanos(1_000_000_000),
        announcements: vec![
            GroupAnnouncement {
                group: GroupId(1),
                processes: vec![
                    (ProcessId::new(NodeId(3), 0), true),
                    (ProcessId::new(NodeId(3), 1), false),
                ],
            },
            GroupAnnouncement {
                group: GroupId(7),
                processes: Vec::new(),
            },
        ]
        .into(),
    };
    check(
        "HELLO",
        &msg,
        "010000000000000002000000003b9aca0000020000000100020000000300000000010000000300000001000000000700\
         00",
    );
}

#[test]
fn alive_golden_vector() {
    let msg = ServiceMessage::Alive {
        group: GroupId(5),
        header: AliveHeader {
            incarnation: 1,
            seq: 42,
            sent_at: SimInstant::from_nanos(123_456_789),
            sending_interval: SimDuration::from_millis(250),
            requested_interval: SimDuration::from_millis(125),
        },
        payload: AlivePayload {
            accusation_time: SimInstant::from_nanos(77),
            epoch: 3,
            local_leader: Some(LeaderClaim {
                node: NodeId(2),
                accusation_time: SimInstant::from_nanos(55),
            }),
        },
        representative: ProcessId::new(NodeId(4), 1),
    };
    check(
        "ALIVE",
        &msg,
        "02000000050000000000000001000000000000002a00000000075bcd15000000000ee6b2800000000007735940\
         0000000400000001000000000000004d000000000000000301000000020000000000000037",
    );
}

#[test]
fn alive_batch_golden_vector() {
    let msg = ServiceMessage::AliveBatch {
        incarnation: 1,
        seq: 9,
        sent_at: SimInstant::from_nanos(2_000_000),
        alives: vec![
            GroupAlive {
                group: GroupId(1),
                sending_interval: SimDuration::from_millis(250),
                requested_interval: SimDuration::from_millis(250),
                payload: AlivePayload {
                    accusation_time: SimInstant::from_nanos(10),
                    epoch: 0,
                    local_leader: None,
                },
                representative: ProcessId::new(NodeId(0), 0),
            },
            GroupAlive {
                group: GroupId(2),
                sending_interval: SimDuration::from_millis(500),
                requested_interval: SimDuration::from_millis(125),
                payload: AlivePayload {
                    accusation_time: SimInstant::from_nanos(20),
                    epoch: 4,
                    local_leader: Some(LeaderClaim {
                        node: NodeId(1),
                        accusation_time: SimInstant::from_nanos(15),
                    }),
                },
                representative: ProcessId::new(NodeId(1), 2),
            },
        ],
    };
    check(
        "ALIVE-BATCH",
        &msg,
        "050000000000000001000000000000000900000000001e8480000200000001000000000ee6b280000000000ee6b280\
         0000000000000000000000000000000a00000000000000000000000002000000001dcd65000000000007735940\
         0000000100000002000000000000001400000000000000040100000001000000000000000f",
    );
}

#[test]
fn accuse_golden_vector() {
    let msg = ServiceMessage::Accuse {
        group: GroupId(3),
        epoch: 9,
    };
    check("ACCUSE", &msg, "03000000030000000000000009");
}

#[test]
fn leave_golden_vector() {
    let msg = ServiceMessage::Leave {
        group: GroupId(2),
        process: ProcessId::new(NodeId(1), 0),
    };
    check("LEAVE", &msg, "04000000020000000100000000");
}

/// The canonical token used by the client-tier vectors: minted at t=1µs by
/// node 2 in epoch 4, incarnation 1.
fn golden_token() -> FencingToken {
    FencingToken {
        accusation_time: SimInstant::from_nanos(1_000),
        node: NodeId(2),
        epoch: 4,
        incarnation: 1,
    }
}

#[test]
fn lease_grant_golden_vector() {
    let msg = ServiceMessage::LeaseGrant {
        group: GroupId(3),
        token: golden_token(),
        valid_for: SimDuration::from_millis(1_000),
    };
    check(
        "LEASE-GRANT",
        &msg,
        "060000000300000000000003e80000000200000000000000040000000000000001000000003b9aca00",
    );
}

#[test]
fn client_request_golden_vector() {
    let msg = ServiceMessage::ClientRequest {
        group: GroupId(3),
        session: 77,
        seq: 5,
        payload: 12,
    };
    check(
        "CLIENT-REQUEST",
        &msg,
        "0700000003000000000000004d0000000000000005000000000000000c",
    );
}

#[test]
fn client_reply_golden_vector() {
    let msg = ServiceMessage::ClientReply {
        group: GroupId(3),
        session: 77,
        seq: 5,
        applied: true,
        value: 42,
        token: golden_token(),
    };
    check(
        "CLIENT-REPLY",
        &msg,
        "0800000003000000000000004d000000000000000501000000000000002a00000000000003e8\
         0000000200000000000000040000000000000001",
    );
}

#[test]
fn redirect_golden_vectors() {
    // With a leader hint…
    let msg = ServiceMessage::Redirect {
        group: GroupId(3),
        session: 77,
        seq: 6,
        leader: Some(ProcessId::new(NodeId(0), 1)),
    };
    check(
        "REDIRECT(Some)",
        &msg,
        "0900000003000000000000004d0000000000000006010000000000000001",
    );
    // …and without one (the "I don't know either" form).
    let msg = ServiceMessage::Redirect {
        group: GroupId(3),
        session: 78,
        seq: 0,
        leader: None,
    };
    check(
        "REDIRECT(None)",
        &msg,
        "0900000003000000000000004e000000000000000000",
    );
}

#[test]
fn corpus_covers_every_variant() {
    // A new ServiceMessage variant must come with a golden vector: this
    // match is exhaustive on purpose, so adding a variant without
    // extending the corpus fails to compile.
    fn covered(msg: &ServiceMessage) -> &'static str {
        match msg {
            ServiceMessage::Hello { .. } => "hello_golden_vector",
            ServiceMessage::Alive { .. } => "alive_golden_vector",
            ServiceMessage::AliveBatch { .. } => "alive_batch_golden_vector",
            ServiceMessage::Accuse { .. } => "accuse_golden_vector",
            ServiceMessage::Leave { .. } => "leave_golden_vector",
            ServiceMessage::LeaseGrant { .. } => "lease_grant_golden_vector",
            ServiceMessage::ClientRequest { .. } => "client_request_golden_vector",
            ServiceMessage::ClientReply { .. } => "client_reply_golden_vector",
            ServiceMessage::Redirect { .. } => "redirect_golden_vectors",
        }
    }
    assert_eq!(
        covered(&ServiceMessage::Accuse {
            group: GroupId(0),
            epoch: 0
        }),
        "accuse_golden_vector"
    );
}
