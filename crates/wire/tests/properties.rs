//! Fuzz-style property tests for the datagram codec, driven by the
//! workspace's deterministic `SimRng` (the repo's stand-in for proptest):
//! random messages must round-trip exactly, and no truncation, corruption
//! or garbage input may ever panic the decoder or slip through as a
//! different *kind* of failure than a `WireError`.

use sle_core::lease::FencingToken;
use sle_core::messages::{AliveHeader, GroupAlive, GroupAnnouncement, ServiceMessage};
use sle_core::process::{GroupId, ProcessId};
use sle_election::{AlivePayload, LeaderClaim};
use sle_sim::actor::{NodeId, WireSize};
use sle_sim::rng::SimRng;
use sle_sim::time::{SimDuration, SimInstant};
use sle_wire::{decode_frame, encode_frame, WireError, HEADER_LEN, MAX_DATAGRAM};

fn random_process(rng: &mut SimRng) -> ProcessId {
    ProcessId::new(
        NodeId(rng.uniform_usize(16) as u32),
        rng.uniform_usize(8) as u32,
    )
}

fn random_payload(rng: &mut SimRng) -> AlivePayload {
    AlivePayload {
        accusation_time: SimInstant::from_nanos(rng.next_u64() % (1 << 40)),
        epoch: rng.next_u64() % 1000,
        local_leader: if rng.bernoulli(0.5) {
            Some(LeaderClaim {
                node: NodeId(rng.uniform_usize(16) as u32),
                accusation_time: SimInstant::from_nanos(rng.next_u64() % (1 << 40)),
            })
        } else {
            None
        },
    }
}

fn random_token(rng: &mut SimRng) -> FencingToken {
    FencingToken {
        accusation_time: SimInstant::from_nanos(rng.next_u64() % (1 << 40)),
        node: NodeId(rng.uniform_usize(16) as u32),
        epoch: rng.next_u64() % 1000,
        incarnation: rng.next_u64() % 16,
    }
}

fn random_message(rng: &mut SimRng) -> ServiceMessage {
    match rng.uniform_usize(9) {
        0 => {
            let groups = rng.uniform_usize(4);
            let announcements = (0..groups)
                .map(|_| {
                    let procs = rng.uniform_usize(5);
                    GroupAnnouncement {
                        group: GroupId(rng.uniform_usize(100) as u32),
                        processes: (0..procs)
                            .map(|_| (random_process(rng), rng.bernoulli(0.5)))
                            .collect(),
                    }
                })
                .collect();
            ServiceMessage::Hello {
                incarnation: rng.next_u64() % 1000,
                sent_at: SimInstant::from_nanos(rng.next_u64() % (1 << 40)),
                announcements,
            }
        }
        1 => ServiceMessage::Alive {
            group: GroupId(rng.uniform_usize(100) as u32),
            header: AliveHeader {
                incarnation: rng.next_u64() % 1000,
                seq: rng.next_u64() % 100_000,
                sent_at: SimInstant::from_nanos(rng.next_u64() % (1 << 40)),
                sending_interval: SimDuration::from_nanos(rng.next_u64() % (1 << 32)),
                requested_interval: SimDuration::from_nanos(rng.next_u64() % (1 << 32)),
            },
            payload: random_payload(rng),
            representative: random_process(rng),
        },
        2 => ServiceMessage::Accuse {
            group: GroupId(rng.uniform_usize(100) as u32),
            epoch: rng.next_u64() % 1000,
        },
        4 => {
            let entries = rng.uniform_usize(6);
            ServiceMessage::AliveBatch {
                incarnation: rng.next_u64() % 1000,
                seq: rng.next_u64() % 100_000,
                sent_at: SimInstant::from_nanos(rng.next_u64() % (1 << 40)),
                alives: (0..entries)
                    .map(|_| GroupAlive {
                        group: GroupId(rng.uniform_usize(100) as u32),
                        sending_interval: SimDuration::from_nanos(rng.next_u64() % (1 << 32)),
                        requested_interval: SimDuration::from_nanos(rng.next_u64() % (1 << 32)),
                        payload: random_payload(rng),
                        representative: random_process(rng),
                    })
                    .collect(),
            }
        }
        5 => ServiceMessage::LeaseGrant {
            group: GroupId(rng.uniform_usize(100) as u32),
            token: random_token(rng),
            valid_for: SimDuration::from_nanos(rng.next_u64() % (1 << 32)),
        },
        6 => ServiceMessage::ClientRequest {
            group: GroupId(rng.uniform_usize(100) as u32),
            session: rng.next_u64() % 1_000_000,
            seq: rng.next_u64() % 100_000,
            payload: rng.next_u64(),
        },
        7 => ServiceMessage::ClientReply {
            group: GroupId(rng.uniform_usize(100) as u32),
            session: rng.next_u64() % 1_000_000,
            seq: rng.next_u64() % 100_000,
            applied: rng.bernoulli(0.5),
            value: rng.next_u64(),
            token: random_token(rng),
        },
        8 => ServiceMessage::Redirect {
            group: GroupId(rng.uniform_usize(100) as u32),
            session: rng.next_u64() % 1_000_000,
            seq: rng.next_u64() % 100_000,
            leader: if rng.bernoulli(0.5) {
                Some(random_process(rng))
            } else {
                None
            },
        },
        _ => ServiceMessage::Leave {
            group: GroupId(rng.uniform_usize(100) as u32),
            process: random_process(rng),
        },
    }
}

#[test]
fn random_messages_round_trip_and_match_wire_size() {
    let mut rng = SimRng::seed_from(0x51E_E1EC);
    for _ in 0..2000 {
        let from = NodeId(rng.uniform_usize(16) as u32);
        let msg = random_message(&mut rng);
        let bytes = encode_frame(from, &msg).expect("random messages are small");
        assert_eq!(
            bytes.len(),
            HEADER_LEN + msg.wire_size(),
            "encoded length must equal the simulator's byte accounting"
        );
        let (decoded_from, decoded): (NodeId, ServiceMessage) =
            decode_frame(&bytes).expect("round trip");
        assert_eq!(decoded_from, from);
        assert_eq!(decoded, msg);
    }
}

#[test]
fn every_truncation_is_rejected_without_panicking() {
    let mut rng = SimRng::seed_from(2);
    for _ in 0..200 {
        let msg = random_message(&mut rng);
        let bytes = encode_frame(NodeId(1), &msg).unwrap();
        for len in 0..bytes.len() {
            let result = decode_frame::<ServiceMessage>(&bytes[..len]);
            assert!(
                result.is_err(),
                "a {len}-byte prefix of a {}-byte datagram decoded successfully",
                bytes.len()
            );
        }
    }
}

#[test]
fn single_byte_corruption_never_panics_and_never_forges_the_envelope() {
    let mut rng = SimRng::seed_from(3);
    for _ in 0..100 {
        let msg = random_message(&mut rng);
        let bytes = encode_frame(NodeId(1), &msg).unwrap();
        for pos in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[pos] ^= 1u8 << rng.uniform_usize(8);
            // Either a clean error or a structurally valid (if wrong)
            // message — the decoder must stay total. Flipping a bit of the
            // magic or version must never still decode.
            if decode_frame::<ServiceMessage>(&corrupted).is_ok() {
                assert!(pos >= 5, "corrupted magic/version at byte {pos} decoded");
            }
        }
    }
}

#[test]
fn random_garbage_never_panics() {
    let mut rng = SimRng::seed_from(4);
    for _ in 0..5000 {
        let len = rng.uniform_usize(200);
        let garbage: Vec<u8> = (0..len).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let _ = decode_frame::<ServiceMessage>(&garbage);
    }
    // And garbage that *starts* like a real datagram.
    for _ in 0..5000 {
        let len = rng.uniform_usize(120);
        let mut bytes = b"SLEP\x01".to_vec();
        bytes.extend((0..len).map(|_| (rng.next_u64() & 0xFF) as u8));
        let _ = decode_frame::<ServiceMessage>(&bytes);
    }
}

#[test]
fn oversized_buffers_are_rejected_up_front() {
    let garbage = vec![0x41u8; MAX_DATAGRAM * 4];
    assert_eq!(
        decode_frame::<ServiceMessage>(&garbage),
        Err(WireError::TooLarge(MAX_DATAGRAM * 4))
    );
}
