//! The three metric primitives: counters, gauges and log2-bucket histograms.
//!
//! Each primitive is an `Arc`-backed handle: cloning is cheap, every clone
//! observes and mutates the same underlying atomics, and a handle keeps its
//! metric alive independently of the [`Registry`](crate::registry::Registry)
//! it may be bound into. This is what lets pre-existing stats structs (the
//! runtime's shard counters, the UDP endpoint's drop counters) *become*
//! registry entries instead of parallel accounting: the struct keeps its
//! handle, the registry holds a clone of the same handle, and one
//! `fetch_add` updates both views.
//!
//! All operations use relaxed atomics — metrics never order protocol
//! memory accesses.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use sle_sim::time::SimDuration;

/// A monotonically increasing counter.
///
/// ```
/// use sle_obs::Counter;
/// let c = Counter::new();
/// let view = c.clone(); // same underlying cell
/// c.inc();
/// c.add(4);
/// assert_eq!(view.get(), 5);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increments the counter by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments the counter by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Returns true if `other` is a handle to the same underlying cell.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Creates a gauge starting at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger than the current value — a
    /// lock-free high-water mark (e.g. peak buffer-pool occupancy).
    #[inline]
    pub fn set_max(&self, v: i64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

#[derive(Debug)]
struct HistogramInner {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    bucket_sums: [AtomicU64; HISTOGRAM_BUCKETS],
}

/// A fixed log2-bucket histogram of `u64` samples.
///
/// Bucket 0 holds the value `0`; bucket `i` (for `i >= 1`) holds values in
/// `[2^(i-1), 2^i - 1]`. Durations are recorded as whole nanoseconds, so the
/// relative bucket resolution (a factor of two) is independent of the unit a
/// metric is later rendered in. The exact `count` and `sum` are kept
/// alongside the buckets, so means are exact even though percentiles are
/// bucket-bounded estimates.
///
/// ```
/// use sle_obs::Histogram;
/// let h = Histogram::new();
/// for v in [1u64, 2, 3, 100] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.sum, 106);
/// let p50 = snap.percentile(0.50);
/// assert!((2..=3).contains(&p50)); // within the bucket holding the median
/// ```
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Returns the bucket index for a sample value.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Returns the smallest value belonging to bucket `i`.
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Returns the largest value belonging to bucket `i`.
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            bucket_sums: std::array::from_fn(|_| AtomicU64::new(0)),
        }))
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(value, Ordering::Relaxed);
        let i = bucket_index(value);
        inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        inner.bucket_sums[i].fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: SimDuration) {
        self.record(d.as_nanos());
    }

    /// Returns a point-in-time snapshot of the histogram.
    ///
    /// The snapshot is not atomic with respect to concurrent `record`s: a
    /// racing sample may be visible in `count` but not yet in its bucket (or
    /// vice versa). Snapshots are for reporting, not for invariants between
    /// the fields.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.0;
        HistogramSnapshot {
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            buckets: std::array::from_fn(|i| inner.buckets[i].load(Ordering::Relaxed)),
            bucket_sums: std::array::from_fn(|i| inner.bucket_sums[i].load(Ordering::Relaxed)),
        }
    }

    /// Returns true if `other` is a handle to the same underlying cells.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// An owned copy of a histogram's state, mergeable and queryable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded samples.
    pub count: u64,
    /// Exact sum of all recorded samples (wrapping on overflow).
    pub sum: u64,
    /// Per-bucket sample counts; see [`bucket_lower`] / [`bucket_upper`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Per-bucket sums of the recorded samples (wrapping on overflow).
    /// These anchor percentile interpolation to where the bucket's samples
    /// actually sit, instead of assuming a fixed within-bucket distribution.
    pub bucket_sums: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot, the identity element of [`merge`](Self::merge).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
            bucket_sums: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Adds another snapshot into this one. Merging never loses samples:
    /// counts, sums and every bucket add element-wise.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        for (mine, theirs) in self.bucket_sums.iter_mut().zip(other.bucket_sums.iter()) {
            *mine = mine.wrapping_add(*theirs);
        }
    }

    /// Exact mean of the recorded samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the recorded samples.
    ///
    /// The estimate interpolates *piecewise-linearly* inside the bucket
    /// containing the `ceil(q * count)`-th smallest sample, anchored at the
    /// bucket's observed mean: ranks in the lower half of the bucket's
    /// population map linearly onto `[bucket_lower, mean]` and ranks in the
    /// upper half onto `[mean, bucket_upper]`. Because the anchor comes from
    /// the samples themselves (via [`bucket_sums`](Self::bucket_sums)), two
    /// histograms whose samples land in the same buckets at different
    /// positions report different percentiles — the earlier log-midpoint
    /// interpolation collapsed any symmetric bucket population onto
    /// `bucket_lower * sqrt(2)`, which is how every scale cell's election
    /// p50 read exactly 5.9 ms and every p99 exactly 1518.5 ms regardless
    /// of detection parameters. Still bucket-bounded: off by at most a
    /// factor of two from the true order statistic.
    /// Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                if i == 0 {
                    // Bucket 0 holds only the exact value 0.
                    return 0;
                }
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                let mean = (self.bucket_sums[i] as f64 / n as f64).clamp(lo, hi);
                // The k-th of the bucket's n samples sits at position
                // (k - 0.5) / n of the bucket's population — strictly
                // interior, so the estimate never pins to a bucket edge.
                let f = ((rank - seen) as f64 - 0.5) / n as f64;
                let est = if f < 0.5 {
                    lo + (mean - lo) * (f / 0.5)
                } else {
                    mean + (hi - mean) * ((f - 0.5) / 0.5)
                };
                return (est as u64).clamp(bucket_lower(i), bucket_upper(i));
            }
            seen += n;
        }
        // Unreachable when the bucket counts cover `count`; be conservative
        // if a racing snapshot left them short.
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// [`percentile`](Self::percentile) rendered as fractional milliseconds,
    /// for histograms that record durations in nanoseconds.
    pub fn percentile_ms(&self, q: f64) -> f64 {
        self.percentile(q) as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let a = Counter::new();
        let b = a.clone();
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&Counter::new()));
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn bucket_bounds_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for i in 0..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
        }
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_lower(i), bucket_upper(i - 1) + 1);
        }
    }

    #[test]
    fn histogram_records_and_estimates() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        assert_eq!(snap.mean(), Some(500.5));
        // True p50 is 500, in bucket [512/2, 511] = [256, 511]... rank 500
        // lands in bucket 9 ([256, 511]); the estimate must stay inside it.
        let p50 = snap.percentile(0.50);
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        let p100 = snap.percentile(1.0);
        assert!((512..=1023).contains(&p100), "p100 = {p100}");
    }

    #[test]
    fn percentiles_do_not_pin_to_bucket_boundaries() {
        // Regression: election latencies of 1.3–1.9 s all land in the
        // nanosecond bucket [2^30, 2^31 - 1]. The old edge interpolation
        // reported p99 (and p100) of *any* such sample set as exactly
        // 2^31 - 1 ns = 2147.48 ms; mean-anchored interpolation must return
        // a value strictly inside the bucket instead.
        let h = Histogram::new();
        for i in 0..200u64 {
            h.record(1_300_000_000 + i * 3_000_000);
        }
        let snap = h.snapshot();
        for q in [0.50, 0.90, 0.99, 1.0] {
            let p = snap.percentile(q);
            assert!(
                (1u64 << 30) < p && p < (1u64 << 31) - 1,
                "percentile({q}) = {p} sits on a log2 bucket boundary"
            );
            assert!(
                !p.is_power_of_two() && !(p + 1).is_power_of_two(),
                "percentile({q}) = {p} is a power-of-two edge"
            );
        }
        assert_ne!(snap.percentile(0.99), (1u64 << 31) - 1);
    }

    #[test]
    fn same_buckets_different_positions_give_different_percentiles() {
        // Regression: two latency populations that land in the *same* log2
        // buckets but at different positions inside them must not report
        // identical percentiles. The old log-midpoint interpolation mapped
        // any symmetric bucket population onto bucket_lower * sqrt(2), so
        // every scale cell's election p50 read exactly the same value no
        // matter what the detection parameters were.
        let fast = Histogram::new();
        let slow = Histogram::new();
        for i in 0..100u64 {
            // Both populations live entirely in the [2^22, 2^23 - 1] ns
            // bucket (4.19–8.39 ms), near opposite ends of it.
            fast.record(4_300_000 + i * 1_000);
            slow.record(8_200_000 + i * 1_000);
        }
        let (fast, slow) = (fast.snapshot(), slow.snapshot());
        for q in [0.50, 0.90, 0.99] {
            let (pf, ps) = (fast.percentile(q), slow.percentile(q));
            assert!(
                pf < ps,
                "percentile({q}): fast {pf} should be below slow {ps}"
            );
        }
        // The anchored estimates track the true medians to well under a
        // bucket width apart from each other.
        assert!(slow.percentile(0.50) - fast.percentile(0.50) > 3_000_000);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.percentile(0.99), 0);
        assert_eq!(snap.mean(), None);
    }

    #[test]
    fn merge_adds_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 7)
            } else {
                b.record(v * 7)
            }
            all.record(v * 7);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn record_duration_uses_nanos() {
        let h = Histogram::new();
        h.record_duration(SimDuration::from_millis(2));
        let snap = h.snapshot();
        assert_eq!(snap.sum, 2_000_000);
        assert!((snap.percentile_ms(1.0) - 2.0).abs() < 2.0);
    }
}
