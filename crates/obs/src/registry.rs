//! The metrics registry: hierarchical names mapped to metric handles.
//!
//! A [`Registry`] is itself a cheap clonable handle; every clone shares the
//! same name table. Components either ask the registry for a handle
//! (`registry.counter("node.3.fd.mistakes")`, get-or-create) or *bind* a
//! handle they already own (`registry.bind_counter(name, &my_counter)`), so
//! pre-existing stats structs become views over the registry without a
//! second accounting path.
//!
//! Names are dotted hierarchies (`node.<id>.group.<g>.fd.detection_ms`).
//! The registry does not interpret them beyond sorting; exporters mangle
//! them per output format (see [`crate::export`]).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A shared, thread-safe table of named metrics.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.inner.lock().map(|m| m.len()).unwrap_or(0);
        write!(f, "Registry({n} metrics)")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, Metric>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns the counter registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind —
    /// a name collision is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Returns the gauge registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Returns the histogram registered under `name`, creating it if absent.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Registers an existing counter handle under `name` (last bind wins).
    pub fn bind_counter(&self, name: &str, counter: &Counter) {
        self.lock()
            .insert(name.to_string(), Metric::Counter(counter.clone()));
    }

    /// Registers an existing gauge handle under `name` (last bind wins).
    pub fn bind_gauge(&self, name: &str, gauge: &Gauge) {
        self.lock()
            .insert(name.to_string(), Metric::Gauge(gauge.clone()));
    }

    /// Registers an existing histogram handle under `name` (last bind wins).
    pub fn bind_histogram(&self, name: &str, histogram: &Histogram) {
        self.lock()
            .insert(name.to_string(), Metric::Histogram(histogram.clone()));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True if no metric has been registered.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Takes a point-in-time snapshot of every registered metric, sorted by
    /// name. Concurrent recording proceeds unhindered; the snapshot is a
    /// consistent *set of names* but each value is read independently.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.lock();
        Snapshot {
            metrics: map
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Merges the histograms of every metric whose name matches
    /// `prefix`/`suffix` (both may be empty to match everything). Useful for
    /// cluster-wide percentiles over per-node histograms, e.g.
    /// `merged_histogram("node.", ".elect.election_ms")`.
    pub fn merged_histogram(&self, prefix: &str, suffix: &str) -> HistogramSnapshot {
        let map = self.lock();
        let mut merged = HistogramSnapshot::empty();
        for (name, metric) in map.iter() {
            if let Metric::Histogram(h) = metric {
                if name.starts_with(prefix) && name.ends_with(suffix) {
                    merged.merge(&h.snapshot());
                }
            }
        }
        merged
    }
}

/// A point-in-time copy of a registry's contents, sorted by metric name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in ascending name order.
    pub metrics: Vec<(String, MetricValue)>,
}

/// One metric's value inside a [`Snapshot`].
///
/// The histogram variant carries its full bucket array inline: snapshots
/// are built once per export and then only read, so keeping the variants
/// boxless trades a few hundred bytes per entry for a pointer-chase-free
/// query API.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's current value.
    Counter(u64),
    /// A gauge's current value.
    Gauge(i64),
    /// A histogram's full bucket state.
    Histogram(HistogramSnapshot),
}

impl Snapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.metrics[i].1)
    }

    /// Sum of all counters whose name matches `prefix`/`suffix`.
    pub fn sum_counters(&self, prefix: &str, suffix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(n, _)| n.starts_with(prefix) && n.ends_with(suffix))
            .filter_map(|(_, v)| match v {
                MetricValue::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Merge of all histograms whose name matches `prefix`/`suffix`.
    pub fn merged_histogram(&self, prefix: &str, suffix: &str) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::empty();
        for (name, value) in &self.metrics {
            if let MetricValue::Histogram(h) = value {
                if name.starts_with(prefix) && name.ends_with(suffix) {
                    merged.merge(h);
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_handle() {
        let r = Registry::new();
        let a = r.counter("x.count");
        let b = r.counter("x.count");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(a.same_as(&b));
        assert_eq!(r.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_collision_panics() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    #[test]
    fn bound_handle_is_a_view() {
        let r = Registry::new();
        let mine = Counter::new();
        mine.add(7);
        r.bind_counter("udp.delivered", &mine);
        mine.inc();
        match r.snapshot().get("udp.delivered") {
            Some(MetricValue::Counter(8)) => {}
            other => panic!("unexpected: {other:?}"),
        }
        // The registry hands back the same cell, not a copy.
        assert!(r.counter("udp.delivered").same_as(&mine));
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.gauge("c.three").set(-3);
        r.histogram("a.lat_ms").record(5);
        let snap = r.snapshot();
        let names: Vec<_> = snap.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.lat_ms", "a.one", "b.two", "c.three"]);
        assert_eq!(snap.get("c.three"), Some(&MetricValue::Gauge(-3)));
        assert_eq!(snap.sum_counters("", "one"), 1);
        assert_eq!(snap.sum_counters("", ""), 3);
    }

    #[test]
    fn merged_histogram_filters_by_name() {
        let r = Registry::new();
        r.histogram("node.0.elect.election_ms").record(100);
        r.histogram("node.1.elect.election_ms").record(300);
        r.histogram("node.0.fd.detection_ms").record(999);
        let merged = r.merged_histogram("node.", ".elect.election_ms");
        assert_eq!(merged.count, 2);
        assert_eq!(merged.sum, 400);
        let via_snapshot = r.snapshot().merged_histogram("node.", ".elect.election_ms");
        assert_eq!(merged, via_snapshot);
    }
}
