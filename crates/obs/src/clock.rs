//! The clock seam: one instrumentation code path for virtual and wall time.
//!
//! Protocol code records QoS samples with the [`SimInstant`] its runtime
//! hands it (`ctx.now()`), which is already virtual-or-wall consistent.
//! Components that live *outside* an actor context — transport reader
//! threads, cluster control operations — stamp their trace events through a
//! [`Clock`] instead: [`WallClock`] in the real-time runtime, and
//! [`ManualClock`] in tests and simulations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sle_sim::time::{SimDuration, SimInstant};

/// A source of `SimInstant` timestamps.
pub trait Clock: Send + Sync {
    /// The current instant on this clock's timeline.
    fn now(&self) -> SimInstant;
}

/// A shared, dynamically-dispatched clock handle.
pub type SharedClock = Arc<dyn Clock>;

/// A wall clock reporting nanoseconds elapsed since a start instant —
/// the same timeline the sharded real-time runtime runs its timers on.
#[derive(Clone, Debug)]
pub struct WallClock {
    start: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            start: Instant::now(),
        }
    }

    /// A wall clock measuring from an existing origin (e.g. the instant a
    /// runtime started), so its timestamps line up with the runtime's.
    pub fn from_start(start: Instant) -> Self {
        WallClock { start }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> SimInstant {
        SimInstant::from_nanos(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX))
    }
}

/// A clock that only moves when told to — for tests and virtual time.
#[derive(Debug, Default)]
pub struct ManualClock(AtomicU64);

impl ManualClock {
    /// A manual clock at time zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Sets the clock to `at`.
    pub fn set(&self, at: SimInstant) {
        self.0.store(at.as_nanos(), Ordering::Relaxed);
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: SimDuration) {
        self.0.fetch_add(d.as_nanos(), Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now(&self) -> SimInstant {
        SimInstant::from_nanos(self.0.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_moves_on_demand() {
        let c = ManualClock::new();
        assert_eq!(c.now(), SimInstant::ZERO);
        c.advance(SimDuration::from_millis(5));
        c.set(SimInstant::from_nanos(42));
        assert_eq!(c.now(), SimInstant::from_nanos(42));
    }

    #[test]
    fn wall_clock_is_monotonic_from_origin() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        let shared: SharedClock = Arc::new(c);
        assert!(shared.now() >= b);
    }
}
