//! Snapshot exporters: Prometheus text exposition and JSON.
//!
//! Both exporters render a [`Snapshot`] — they never touch live metrics, so
//! exporting is race-free by construction. The JSON schema
//! (`sle-obs/1`) is documented in `docs/OBSERVABILITY.md`; the Prometheus
//! format follows the text exposition conventions (dotted metric names are
//! mangled to underscores, histograms export cumulative `_bucket{le=...}`
//! series plus `_sum` and `_count`).

use std::fmt::Write as _;

use crate::metrics::{bucket_upper, HistogramSnapshot, HISTOGRAM_BUCKETS};
use crate::registry::{MetricValue, Snapshot};

/// Mangles a dotted metric name into a Prometheus-legal one.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let legal = c.is_ascii_alphabetic() || c == '_' || (i > 0 && c.is_ascii_digit());
        out.push(if legal { c } else { '_' });
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Writes one `# TYPE` line and one (or, for histograms, several) sample
/// lines per metric. Histogram buckets with zero observations are elided;
/// the cumulative counts and the terminal `+Inf` bucket are still exact.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let pname = prometheus_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "# TYPE {pname} histogram");
                let mut cumulative = 0u64;
                for i in 0..HISTOGRAM_BUCKETS {
                    if h.buckets[i] == 0 {
                        continue;
                    }
                    cumulative += h.buckets[i];
                    // The top bucket's upper bound saturates at `u64::MAX`;
                    // a literal `le="18446744073709551615"` label is useless
                    // to queries, so its samples are folded into `+Inf`.
                    if i + 1 == HISTOGRAM_BUCKETS {
                        continue;
                    }
                    let _ = writeln!(
                        out,
                        "{pname}_bucket{{le=\"{}\"}} {cumulative}",
                        bucket_upper(i)
                    );
                }
                let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
                let _ = writeln!(out, "{pname}_sum {}", h.sum);
                let _ = writeln!(out, "{pname}_count {}", h.count);
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn render_histogram_json(out: &mut String, h: &HistogramSnapshot) {
    let _ = write!(
        out,
        "\"count\":{},\"sum\":{},\"p50\":{},\"p99\":{},\"buckets\":[",
        h.count,
        h.sum,
        h.percentile(0.50),
        h.percentile(0.99)
    );
    let mut first = true;
    for i in 0..HISTOGRAM_BUCKETS {
        if h.buckets[i] == 0 {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "[{},{}]", bucket_upper(i), h.buckets[i]);
    }
    out.push(']');
}

/// Renders a snapshot as a JSON document with schema `sle-obs/1`.
///
/// ```json
/// {
///   "schema": "sle-obs/1",
///   "metrics": [
///     {"name": "node.0.fd.mistakes", "type": "counter", "value": 0},
///     {"name": "runtime.workers", "type": "gauge", "value": 8},
///     {"name": "node.0.elect.election_ms", "type": "histogram",
///      "count": 3, "sum": 812000000, "p50": 250000000, "p99": 40000000,
///      "buckets": [[268435455, 1], [536870911, 2]]}
///   ]
/// }
/// ```
///
/// Histogram samples are raw recorded values (nanoseconds for durations);
/// `buckets` lists only non-empty buckets as `[upper_bound, count]` pairs.
pub fn render_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\"schema\":\"sle-obs/1\",\"metrics\":[");
    for (i, (name, value)) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{{\"name\":\"{}\",", json_escape(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "\"type\":\"gauge\",\"value\":{v}");
            }
            MetricValue::Histogram(h) => {
                out.push_str("\"type\":\"histogram\",");
                render_histogram_json(&mut out, h);
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("node.0.fd.mistakes").add(2);
        r.gauge("runtime.workers").set(8);
        let h = r.histogram("node.0.elect.election_ms");
        h.record(100);
        h.record(200);
        h.record(300);
        r
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let text = render_prometheus(&sample_registry().snapshot());
        assert!(text.contains("# TYPE node_0_fd_mistakes counter"), "{text}");
        assert!(text.contains("node_0_fd_mistakes 2"), "{text}");
        assert!(text.contains("runtime_workers 8"), "{text}");
        assert!(text.contains("node_0_elect_election_ms_count 3"), "{text}");
        assert!(
            text.contains("node_0_elect_election_ms_bucket{le=\"+Inf\"} 3"),
            "{text}"
        );
        assert!(text.contains("node_0_elect_election_ms_sum 600"), "{text}");
        // Buckets are cumulative: 100 -> [64,127], 200 -> [128,255],
        // 300 -> [256,511].
        assert!(
            text.contains("node_0_elect_election_ms_bucket{le=\"127\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("node_0_elect_election_ms_bucket{le=\"255\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("node_0_elect_election_ms_bucket{le=\"511\"} 3"),
            "{text}"
        );
    }

    #[test]
    fn json_is_well_formed_and_complete() {
        let json = render_json(&sample_registry().snapshot());
        assert!(json.starts_with("{\"schema\":\"sle-obs/1\""), "{json}");
        assert!(
            json.contains("{\"name\":\"node.0.fd.mistakes\",\"type\":\"counter\",\"value\":2}"),
            "{json}"
        );
        assert!(
            json.contains("{\"name\":\"runtime.workers\",\"type\":\"gauge\",\"value\":8}"),
            "{json}"
        );
        assert!(json.contains("\"count\":3,\"sum\":600"), "{json}");
        assert!(json.contains("[127,1],[255,1],[511,1]"), "{json}");
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(
            json.matches('[').count(),
            json.matches(']').count(),
            "{json}"
        );
    }

    #[test]
    fn top_bucket_le_label_folds_into_inf() {
        // A sample of `u64::MAX` lands in the top bucket, whose upper bound
        // saturates at `u64::MAX` — the exposition must not render a finite
        // `le="18446744073709551615"` line; those observations belong to
        // `+Inf` alone.
        let r = Registry::new();
        let h = r.histogram("fd.detection_ns");
        h.record(5);
        h.record(u64::MAX);
        let text = render_prometheus(&r.snapshot());
        // `sum` wraps modulo 2^64: 5 + (2^64 - 1) = 4.
        let expected = "# TYPE fd_detection_ns histogram\n\
                        fd_detection_ns_bucket{le=\"7\"} 1\n\
                        fd_detection_ns_bucket{le=\"+Inf\"} 2\n\
                        fd_detection_ns_sum 4\n\
                        fd_detection_ns_count 2\n";
        assert_eq!(text, expected);
        assert!(!text.contains("18446744073709551615"), "{text}");
    }

    #[test]
    fn name_mangling() {
        assert_eq!(prometheus_name("node.0.fd-x.y_z"), "node_0_fd_x_y_z");
        assert_eq!(prometheus_name("9abc"), "_abc");
    }
}
