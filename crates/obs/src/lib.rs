//! # sle-obs — observability substrate for the leader-election service
//!
//! The reproduced paper (Schiper & Toueg, DSN 2008) states its entire
//! contribution in QoS terms — detection time `T_D`, mistake recurrence
//! `T_MR`, recovery time `T_r` — yet those quantities are only visible when
//! a runtime *measures* them. This crate is the measurement substrate shared
//! by every runtime in the workspace: the discrete-event simulator, the
//! sharded real-time `Cluster`, and the UDP deployment path all record into
//! the same three primitives:
//!
//! * [`registry`] — a process-wide [`Registry`] of atomic [`Counter`]s,
//!   [`Gauge`]s and fixed log2-bucket [`Histogram`]s behind cheap
//!   clonable handles, with hierarchical dotted names
//!   (`node.3.group.1.fd.detection_ns`) and point-in-time snapshots,
//! * [`export`] — two snapshot exporters: Prometheus text exposition and a
//!   JSON document matching the schema in `docs/OBSERVABILITY.md`,
//! * [`trace`] — a fixed-capacity, never-blocking ring buffer of structured
//!   protocol events ([`ProtoEvent`]) with sequence numbers and
//!   timestamps, drainable into the chaos trace-replay invariant checker,
//! * [`clock`] — the [`Clock`] seam that lets the same instrumentation run
//!   under virtual time and the wall clock.
//!
//! Everything is std-only and built for negligible hot-path cost: recording
//! a counter or histogram sample is a handful of relaxed atomic operations,
//! and a disabled instrumentation point is a single `Option` branch.
//! `bench_runtime` gates the full-telemetry overhead at < 5% of election
//! latency on its 1000-node cell.
//!
//! ## Example
//!
//! ```
//! use sle_obs::prelude::*;
//!
//! let registry = Registry::new();
//! let elections = registry.counter("node.0.elect.leader_changes");
//! let latency = registry.histogram("node.0.elect.election_ms");
//! elections.inc();
//! latency.record_duration(sle_sim::SimDuration::from_millis(250));
//!
//! let snap = registry.snapshot();
//! assert!(render_prometheus(&snap).contains("node_0_elect_leader_changes 1"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod clock;
pub mod export;
pub mod metrics;
pub mod registry;
pub mod trace;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::clock::{Clock, ManualClock, SharedClock, WallClock};
    pub use crate::export::{render_json, render_prometheus};
    pub use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
    pub use crate::registry::{MetricValue, Registry, Snapshot};
    pub use crate::trace::{DropReason, ProtoEvent, TraceDrain, TraceRecord, TraceRing};
}

pub use clock::{Clock, ManualClock, SharedClock, WallClock};
pub use export::{render_json, render_prometheus};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{MetricValue, Registry, Snapshot};
pub use trace::{DropReason, ProtoEvent, TraceDrain, TraceRecord, TraceRing};
