//! The protocol event trace: a fixed-capacity, never-blocking ring buffer.
//!
//! Every runtime records the same structured [`ProtoEvent`] vocabulary —
//! leader changes, accusations, membership churn, datagram drops — into a
//! [`TraceRing`]. Writers pay one atomic fetch-add plus one `try_lock` on a
//! private slot and **never block**: under contention or overflow the event
//! is sacrificed and shows up as a sequence gap at drain time, so tracing
//! can stay on in production paths.
//!
//! Draining returns events in sequence order together with the number of
//! events lost since the previous drain (the gap marker). `sle-chaos`
//! converts drained records into its trace-replay vocabulary, so the same
//! invariant checker that judges simulated chaos runs accepts live runtime
//! traces.
//!
//! Event fields use raw ids (`u32` node/group numbers, `(node, local)`
//! process pairs) rather than the service's typed ids: the trace vocabulary
//! sits *below* the service crates so every layer — UDP reader threads
//! included — can record into it.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sle_sim::time::SimInstant;
use sle_sim::NodeId;

/// Why a transport discarded an incoming or outgoing datagram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// The datagram exceeded the transport's size budget.
    Oversized,
    /// The datagram failed to decode.
    Malformed,
    /// The datagram came from (or was addressed to) an unknown peer.
    Misaddressed,
    /// The outgoing message could not be encoded.
    Unencodable,
    /// A multi-record datagram ended mid-record (shared-socket demux
    /// framing; see `sle-udp`'s `SharedUdpPlane`).
    Truncated,
    /// The record's destination node is not resident behind the receiving
    /// socket (stale address book, or a peer that has since left).
    Misrouted,
}

impl fmt::Display for DropReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DropReason::Oversized => "oversized",
            DropReason::Malformed => "malformed",
            DropReason::Misaddressed => "misaddressed",
            DropReason::Unencodable => "unencodable",
            DropReason::Truncated => "truncated",
            DropReason::Misrouted => "misrouted",
        };
        f.write_str(s)
    }
}

/// A structured protocol event. One vocabulary for every runtime.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoEvent {
    /// A node's announced leader for a group changed. The leader is a
    /// `(node, local_process)` pair, or `None` when leadership was lost.
    LeaderChange {
        /// Raw group id.
        group: u32,
        /// New leader as a `(node, local_process)` pair, if any.
        leader: Option<(u32, u32)>,
    },
    /// The failure detector suspected a peer and an accusation was sent.
    Accusation {
        /// Raw group id.
        group: u32,
        /// The suspected peer's node id.
        accused: u32,
    },
    /// A protocol timer fired. Only low-rate timers (e.g. election grace
    /// periods) are traced; per-heartbeat timers would flood the ring.
    TimerFired {
        /// The runtime's timer-kind discriminant (`TimerTag >> 32`).
        kind: u32,
    },
    /// A transport dropped a datagram.
    DatagramDropped {
        /// Why it was dropped.
        reason: DropReason,
    },
    /// A local process joined a group.
    Join {
        /// Raw group id.
        group: u32,
    },
    /// A local process left a group.
    Leave {
        /// Raw group id.
        group: u32,
    },
    /// A workstation was crashed (by an operator, a fault plan, or a test).
    Crashed,
    /// A previously crashed workstation recovered.
    Recovered,
}

impl fmt::Display for ProtoEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoEvent::LeaderChange { group, leader } => match leader {
                Some((n, p)) => write!(f, "leader-change g{group} -> n{n}.p{p}"),
                None => write!(f, "leader-change g{group} -> none"),
            },
            ProtoEvent::Accusation { group, accused } => {
                write!(f, "accusation g{group} accused n{accused}")
            }
            ProtoEvent::TimerFired { kind } => write!(f, "timer-fired kind {kind}"),
            ProtoEvent::DatagramDropped { reason } => write!(f, "datagram-dropped ({reason})"),
            ProtoEvent::Join { group } => write!(f, "join g{group}"),
            ProtoEvent::Leave { group } => write!(f, "leave g{group}"),
            ProtoEvent::Crashed => write!(f, "crashed"),
            ProtoEvent::Recovered => write!(f, "recovered"),
        }
    }
}

/// One recorded event: who, when, what, plus its global sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Position in this ring's total event order (0-based, gap-free at the
    /// writer; gaps at the reader mean overwritten or sacrificed events).
    pub seq: u64,
    /// When the event happened, on the recording runtime's timeline.
    pub at: SimInstant,
    /// The workstation the event concerns.
    pub node: NodeId,
    /// What happened.
    pub event: ProtoEvent,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>6}] {} n{} {}",
            self.seq, self.at, self.node.0, self.event
        )
    }
}

/// The result of draining a ring: in-order events plus the gap marker.
#[derive(Clone, Debug, Default)]
pub struct TraceDrain {
    /// Events in ascending sequence order.
    pub events: Vec<TraceRecord>,
    /// Number of events lost since the previous drain (ring overflow or a
    /// writer that lost its slot race). Zero means the trace is complete.
    pub dropped: u64,
}

struct RingInner {
    seq: AtomicU64,
    /// Sequence number up to which events have already been drained; a
    /// subsequent drain reports anything older as part of the gap.
    drained_to: AtomicU64,
    slots: Vec<Mutex<Option<TraceRecord>>>,
}

/// A fixed-capacity ring of [`TraceRecord`]s shared by many writers.
///
/// Cloning is cheap and shares the buffer — the sharded runtime hands one
/// clone to every resident of a shard.
///
/// ```
/// use sle_obs::trace::{ProtoEvent, TraceRing};
/// use sle_sim::{NodeId, SimInstant};
///
/// let ring = TraceRing::new(8);
/// ring.push(NodeId(0), SimInstant::ZERO, ProtoEvent::Join { group: 1 });
/// let drain = ring.drain();
/// assert_eq!(drain.events.len(), 1);
/// assert_eq!(drain.dropped, 0);
/// ```
#[derive(Clone)]
pub struct TraceRing {
    inner: Arc<RingInner>,
}

impl fmt::Debug for TraceRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TraceRing(capacity {}, pushed {})",
            self.inner.slots.len(),
            self.inner.seq.load(Ordering::Relaxed)
        )
    }
}

impl TraceRing {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            inner: Arc::new(RingInner {
                seq: AtomicU64::new(0),
                drained_to: AtomicU64::new(0),
                slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            }),
        }
    }

    /// Number of events pushed over the ring's lifetime.
    pub fn pushed(&self) -> u64 {
        self.inner.seq.load(Ordering::Relaxed)
    }

    /// Records an event. Never blocks: if the slot is being drained (or
    /// raced by a slower writer) the event is dropped and the drain-side
    /// gap accounting picks it up.
    pub fn push(&self, node: NodeId, at: SimInstant, event: ProtoEvent) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let slot = (seq % self.inner.slots.len() as u64) as usize;
        if let Ok(mut guard) = self.inner.slots[slot].try_lock() {
            // An older event may still occupy the slot; overwriting it is
            // the ring discipline — it becomes part of the gap.
            match *guard {
                Some(existing) if existing.seq > seq => {} // lost the race to a newer lap
                _ => {
                    *guard = Some(TraceRecord {
                        seq,
                        at,
                        node,
                        event,
                    })
                }
            }
        }
    }

    /// Removes and returns all retained events in sequence order, plus the
    /// number lost since the previous drain.
    pub fn drain(&self) -> TraceDrain {
        let mut events = self.collect(true);
        events.sort_by_key(|r| r.seq);
        let from = self.inner.drained_to.load(Ordering::Relaxed);
        let to = match events.last() {
            Some(last) => last.seq + 1,
            // Nothing retained: everything pushed so far (if anything) is lost.
            None => self.inner.seq.load(Ordering::Relaxed),
        };
        let dropped = (to - from).saturating_sub(events.len() as u64);
        self.inner.drained_to.store(to, Ordering::Relaxed);
        TraceDrain { events, dropped }
    }

    /// Returns (without removing) the most recent `n` retained events in
    /// sequence order — the “last N events” view failure reports print.
    pub fn tail(&self, n: usize) -> Vec<TraceRecord> {
        let mut events = self.collect(false);
        events.sort_by_key(|r| r.seq);
        if events.len() > n {
            events.drain(..events.len() - n);
        }
        events
    }

    fn collect(&self, take: bool) -> Vec<TraceRecord> {
        let drained_to = self.inner.drained_to.load(Ordering::Relaxed);
        let mut out = Vec::with_capacity(self.inner.slots.len());
        for slot in &self.inner.slots {
            let mut guard = slot.lock().unwrap_or_else(|e| e.into_inner());
            let keep = guard.filter(|r| r.seq >= drained_to);
            if let Some(record) = keep {
                out.push(record);
            }
            if take {
                *guard = None;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(g: u32) -> ProtoEvent {
        ProtoEvent::Join { group: g }
    }

    #[test]
    fn in_order_no_overflow() {
        let ring = TraceRing::new(16);
        for i in 0..10 {
            ring.push(NodeId(i), SimInstant::from_nanos(i as u64), ev(i));
        }
        let drain = ring.drain();
        assert_eq!(drain.dropped, 0);
        let seqs: Vec<_> = drain.events.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        // A second drain sees nothing new.
        let again = ring.drain();
        assert!(again.events.is_empty());
        assert_eq!(again.dropped, 0);
    }

    #[test]
    fn overflow_reports_a_gap() {
        let ring = TraceRing::new(4);
        for i in 0..10u32 {
            ring.push(NodeId(0), SimInstant::ZERO, ev(i));
        }
        let drain = ring.drain();
        assert_eq!(drain.events.len(), 4);
        assert_eq!(drain.dropped, 6);
        assert_eq!(
            drain.events.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn tail_is_non_destructive() {
        let ring = TraceRing::new(8);
        for i in 0..5u32 {
            ring.push(NodeId(0), SimInstant::ZERO, ev(i));
        }
        let tail = ring.tail(2);
        assert_eq!(tail.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
        assert_eq!(ring.drain().events.len(), 5);
    }

    #[test]
    fn drain_then_overflow_accounts_from_last_drain() {
        let ring = TraceRing::new(4);
        for i in 0..3u32 {
            ring.push(NodeId(0), SimInstant::ZERO, ev(i));
        }
        assert_eq!(ring.drain().dropped, 0);
        for i in 0..6u32 {
            ring.push(NodeId(0), SimInstant::ZERO, ev(i));
        }
        let drain = ring.drain();
        assert_eq!(drain.events.len(), 4);
        assert_eq!(drain.dropped, 2);
    }

    #[test]
    fn display_is_human_readable() {
        let r = TraceRecord {
            seq: 7,
            at: SimInstant::from_secs_f64(1.5),
            node: NodeId(3),
            event: ProtoEvent::LeaderChange {
                group: 1,
                leader: Some((2, 0)),
            },
        };
        let s = r.to_string();
        assert!(s.contains("n3"), "{s}");
        assert!(s.contains("leader-change g1 -> n2.p0"), "{s}");
        assert_eq!(
            ProtoEvent::DatagramDropped {
                reason: DropReason::Malformed
            }
            .to_string(),
            "datagram-dropped (malformed)"
        );
    }
}
