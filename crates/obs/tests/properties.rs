//! Property tests for the histogram and the trace ring, driven by the
//! workspace's deterministic `SimRng` (no third-party property-test crate).

use sle_obs::metrics::{bucket_index, bucket_lower, bucket_upper};
use sle_obs::{Histogram, HistogramSnapshot, ProtoEvent, TraceRing};
use sle_sim::{NodeId, SimInstant, SimRng};

/// Draws a value whose magnitude spans many buckets: a random bit-width,
/// then random bits within it.
fn skewed_value(rng: &mut SimRng) -> u64 {
    let bits = rng.uniform_usize(64);
    if bits == 0 {
        0
    } else {
        rng.next_u64() >> (64 - bits)
    }
}

#[test]
fn histogram_never_loses_counts() {
    let mut rng = SimRng::seed_from(0xB0B5);
    for case in 0..50u64 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.uniform_usize(500);
        let h = Histogram::new();
        let mut expected_sum = 0u64;
        for _ in 0..n {
            let v = skewed_value(&mut case_rng);
            expected_sum = expected_sum.wrapping_add(v);
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, n as u64, "case {case}");
        assert_eq!(snap.sum, expected_sum, "case {case}");
        let bucket_total: u64 = snap.buckets.iter().sum();
        assert_eq!(bucket_total, n as u64, "case {case}: buckets lose counts");
    }
}

#[test]
fn merge_equals_recording_into_one() {
    let mut rng = SimRng::seed_from(0xCAFE);
    for case in 0..30u64 {
        let mut case_rng = rng.fork(case);
        let parts: usize = 2 + case_rng.uniform_usize(6);
        let combined = Histogram::new();
        let mut merged = HistogramSnapshot::empty();
        for p in 0..parts {
            let shard = Histogram::new();
            let n = case_rng.uniform_usize(200);
            for _ in 0..n {
                let v = skewed_value(&mut case_rng);
                shard.record(v);
                combined.record(v);
            }
            merged.merge(&shard.snapshot());
            let _ = p;
        }
        assert_eq!(merged, combined.snapshot(), "case {case}");
    }
}

#[test]
fn percentile_stays_within_the_true_order_statistic_bucket() {
    let mut rng = SimRng::seed_from(0xD00D);
    for case in 0..50u64 {
        let mut case_rng = rng.fork(case);
        let n = 1 + case_rng.uniform_usize(300);
        let h = Histogram::new();
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            let v = skewed_value(&mut case_rng);
            values.push(v);
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            // The estimator targets the ceil(q*n)-th smallest sample; the
            // estimate must land in that sample's bucket.
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = values[rank - 1];
            let bucket = bucket_index(truth);
            let est = snap.percentile(q);
            assert!(
                (bucket_lower(bucket)..=bucket_upper(bucket)).contains(&est),
                "case {case}: q={q} truth={truth} (bucket {bucket}) est={est}"
            );
        }
    }
}

#[test]
fn ring_writers_never_block_and_drain_accounts_for_every_event() {
    // 4 writer threads hammer a deliberately tiny ring while the main
    // thread drains concurrently. The ring must never deadlock, sequence
    // numbers must be unique and ascending per drain, and
    // events_seen + dropped must equal exactly the number pushed.
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 5_000;

    let ring = TraceRing::new(64);
    let mut handles = Vec::new();
    for w in 0..WRITERS {
        let ring = ring.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER_WRITER {
                ring.push(
                    NodeId(w as u32),
                    SimInstant::from_nanos(i),
                    ProtoEvent::Join { group: w as u32 },
                );
            }
        }));
    }

    let mut seen = 0u64;
    let mut dropped = 0u64;
    let mut last_seq: Option<u64> = None;
    // Drain while the writers are running — this exercises the
    // writer-vs-drain slot race the try_lock discipline exists for.
    loop {
        let drain = ring.drain();
        for pair in drain.events.windows(2) {
            assert!(pair[0].seq < pair[1].seq, "drain out of order");
        }
        if let (Some(last), Some(first)) = (last_seq, drain.events.first()) {
            assert!(first.seq > last, "drain re-delivered an event");
        }
        if let Some(l) = drain.events.last() {
            last_seq = Some(l.seq);
        }
        seen += drain.events.len() as u64;
        dropped += drain.dropped;
        if handles.iter().all(|h| h.is_finished()) {
            break;
        }
        std::thread::yield_now();
    }
    for h in handles {
        h.join().unwrap();
    }
    let final_drain = ring.drain();
    seen += final_drain.events.len() as u64;
    dropped += final_drain.dropped;

    let pushed = WRITERS as u64 * PER_WRITER;
    assert_eq!(ring.pushed(), pushed);
    assert_eq!(
        seen + dropped,
        pushed,
        "gap accounting must cover every pushed event"
    );
    assert!(seen > 0, "some events must survive");
    assert!(
        dropped > 0,
        "a 64-slot ring under 20k pushes must overflow (gap marker exercised)"
    );
}
