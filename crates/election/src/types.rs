//! Common types shared by the three leader-election algorithms.
//!
//! The central device for *stability* (paper Sections 6.3/6.4) is the
//! **accusation time**: each process records the last time it was (validly)
//! accused of having crashed, and candidates are ranked by
//! `(accusation time, process id)` — earliest accusation time first, ties
//! broken by the smaller identifier. A long-lived, well-behaved leader keeps
//! its early accusation time and is therefore never out-ranked by a process
//! that joined (or re-joined after a crash) later.

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

/// Which leader-election algorithm a service instance runs (paper Section 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectorKind {
    /// Ωid — the unstable baseline of service S1: leader = smallest id among
    /// the processes currently deemed alive.
    OmegaId,
    /// Ωlc — the algorithm of service S2 \[Aguilera et al.\]: accusation-time
    /// ranking with local-leader forwarding; tolerates lossy *and* crashed
    /// links at the price of quadratic communication.
    OmegaLc,
    /// Ωl — the communication-efficient algorithm of service S3: accusation
    /// time ranking where losers voluntarily leave the competition, so that
    /// eventually only the leader sends ALIVE messages.
    OmegaL,
}

impl ElectorKind {
    /// The service name used in the paper for this algorithm.
    pub fn service_name(&self) -> &'static str {
        match self {
            ElectorKind::OmegaId => "S1",
            ElectorKind::OmegaLc => "S2",
            ElectorKind::OmegaL => "S3",
        }
    }

    /// The algorithm name used in the paper.
    pub fn algorithm_name(&self) -> &'static str {
        match self {
            ElectorKind::OmegaId => "Omega_id",
            ElectorKind::OmegaLc => "Omega_lc",
            ElectorKind::OmegaL => "Omega_l",
        }
    }

    /// All implemented algorithms.
    pub fn all() -> [ElectorKind; 3] {
        [
            ElectorKind::OmegaId,
            ElectorKind::OmegaLc,
            ElectorKind::OmegaL,
        ]
    }
}

impl std::fmt::Display for ElectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.service_name(), self.algorithm_name())
    }
}

/// A candidate's rank: candidates with an *earlier* accusation time are
/// better; ties are broken by the smaller identifier.
///
/// `Ord` is defined so that the **minimum** rank is the best candidate.
///
/// ```
/// use sle_election::types::Rank;
/// use sle_sim::actor::NodeId;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let veteran = Rank::new(SimInstant::ZERO, NodeId(7));
/// let newcomer = Rank::new(SimInstant::ZERO + SimDuration::from_secs(60), NodeId(1));
/// // The veteran wins even though its id is larger: stability.
/// assert!(veteran < newcomer);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank {
    /// The candidate's advertised accusation time.
    pub accusation_time: SimInstant,
    /// The candidate's identifier.
    pub id: NodeId,
}

impl Rank {
    /// Creates a rank from an accusation time and identifier.
    pub fn new(accusation_time: SimInstant, id: NodeId) -> Self {
        Rank {
            accusation_time,
            id,
        }
    }
}

/// A "this is my current local leader" claim forwarded inside ALIVE messages
/// by the Ωlc algorithm (the second stage of its leader selection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderClaim {
    /// The claimed leader.
    pub node: NodeId,
    /// The claimed leader's accusation time as known by the claimer.
    pub accusation_time: SimInstant,
}

impl LeaderClaim {
    /// The rank corresponding to this claim.
    pub fn rank(&self) -> Rank {
        Rank::new(self.accusation_time, self.node)
    }
}

/// The election-specific payload piggybacked on every ALIVE message.
///
/// The ALIVE messages double as failure-detector heartbeats (the FD fields —
/// sequence number, send timestamp, sending interval — are carried by the
/// enclosing service message); this payload carries what the election
/// algorithms need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlivePayload {
    /// The sender's current accusation time.
    pub accusation_time: SimInstant,
    /// The sender's current accusation epoch (see [`ElectorOutput`]).
    pub epoch: u64,
    /// The sender's current local leader (only meaningful for Ωlc).
    pub local_leader: Option<LeaderClaim>,
}

impl AlivePayload {
    /// Number of bytes this payload occupies on the wire
    /// (8 accusation-time + 8 epoch + 1 tag + 12 optional claim).
    pub fn wire_size(&self) -> usize {
        8 + 8 + 1 + if self.local_leader.is_some() { 12 } else { 0 }
    }

    /// The sender's rank according to this payload.
    pub fn rank_of(&self, sender: NodeId) -> Rank {
        Rank::new(self.accusation_time, sender)
    }
}

/// An action requested by an elector in response to an input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ElectorOutput {
    /// Send an accusation ("I think you crashed") to `to`, referencing the
    /// accusation epoch the accuser last saw from it. The accused process
    /// advances its accusation time only if the epoch still matches — this is
    /// the mechanism that protects Ωl processes that *voluntarily* stopped
    /// sending ALIVEs from having their rank ruined by the resulting
    /// (perfectly reasonable) suspicions.
    SendAccusation {
        /// The accused process.
        to: NodeId,
        /// The epoch of the accused process as last advertised to the accuser.
        epoch: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    #[test]
    fn rank_orders_by_accusation_time_then_id() {
        let t0 = SimInstant::ZERO;
        let t1 = t0 + SimDuration::from_secs(1);
        let a = Rank::new(t0, NodeId(5));
        let b = Rank::new(t1, NodeId(1));
        let c = Rank::new(t0, NodeId(2));
        assert!(a < b, "earlier accusation time wins regardless of id");
        assert!(c < a, "same accusation time: smaller id wins");
        assert_eq!(a.min(c), c);
        assert_eq!(Rank::new(t0, NodeId(5)), a);
    }

    #[test]
    fn elector_kind_names_match_paper() {
        assert_eq!(ElectorKind::OmegaId.service_name(), "S1");
        assert_eq!(ElectorKind::OmegaLc.service_name(), "S2");
        assert_eq!(ElectorKind::OmegaL.service_name(), "S3");
        assert_eq!(ElectorKind::OmegaL.algorithm_name(), "Omega_l");
        assert_eq!(ElectorKind::all().len(), 3);
        assert_eq!(ElectorKind::OmegaLc.to_string(), "S2 (Omega_lc)");
    }

    #[test]
    fn payload_wire_size_accounts_for_claim() {
        let without = AlivePayload {
            accusation_time: SimInstant::ZERO,
            epoch: 0,
            local_leader: None,
        };
        let with = AlivePayload {
            local_leader: Some(LeaderClaim {
                node: NodeId(1),
                accusation_time: SimInstant::ZERO,
            }),
            ..without
        };
        assert_eq!(without.wire_size(), 17);
        assert_eq!(with.wire_size(), 29);
        assert_eq!(
            with.rank_of(NodeId(3)),
            Rank::new(SimInstant::ZERO, NodeId(3))
        );
    }

    #[test]
    fn claim_rank_round_trips() {
        let claim = LeaderClaim {
            node: NodeId(4),
            accusation_time: SimInstant::from_nanos(42),
        };
        assert_eq!(
            claim.rank(),
            Rank::new(SimInstant::from_nanos(42), NodeId(4))
        );
    }
}
