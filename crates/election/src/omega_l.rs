//! Ωl — the communication-efficient algorithm of service **S3** (paper
//! Section 6.4).
//!
//! As in Ωlc, candidates are ranked by `(accusation time, id)`. The
//! difference is how the set of *competing* processes is kept small:
//!
//! * a process p considers q a competitor only if p receives ALIVE messages
//!   directly from q (there is no forwarding stage);
//! * as soon as p sees a competitor with a better rank than its own, p
//!   voluntarily drops out of the competition by ceasing to send ALIVE
//!   messages; it re-enters (and resumes sending) when no better-ranked
//!   competitor is visible any more — e.g. after the leader crashes.
//!
//! Eventually only the leader keeps sending ALIVEs, so the steady-state
//! message cost is linear in the group size (Figure 6). The price is paid
//! under crash-prone links (Figure 7): when a process loses contact with the
//! leader it accuses it, re-enters the competition and the whole group has
//! to re-discover each other's ranks, which takes several seconds.
//!
//! A process that stopped sending ALIVEs will, of course, be suspected by
//! the others. The algorithm "includes a mechanism to ensure that such false
//! suspicions do not increase p's accusation time": here, every voluntary
//! drop-out (and every re-entry) advances the process's accusation *epoch*,
//! and accusations are only honoured when they reference the current epoch —
//! so suspicions caused by voluntary silence are ignored, while suspicions of
//! a process that is actively sending still count.

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::elector::{LeaderElector, PeerTable};
use crate::types::{AlivePayload, ElectorKind, ElectorOutput, Rank};

/// The Ωl elector state for one node and one group.
#[derive(Debug, Clone)]
pub struct OmegaL {
    me: NodeId,
    candidate: bool,
    accusation_time: SimInstant,
    epoch: u64,
    active: bool,
    peers: PeerTable,
}

impl OmegaL {
    /// Creates the elector for node `me`, which is a leadership candidate iff
    /// `candidate` is true, starting (joining the group) at `now`.
    ///
    /// A candidate starts active (competing); it will withdraw as soon as it
    /// observes a better-ranked competitor.
    pub fn new(me: NodeId, candidate: bool, now: SimInstant) -> Self {
        Self::new_with_epoch(me, candidate, now, 0)
    }

    /// Like [`OmegaL::new`], but starting the accusation epoch at `epoch`
    /// instead of 0.
    ///
    /// A service recreating the elector for a group it never left (a
    /// listener upgrading to candidate, the last local candidate leaving)
    /// must pass an epoch above every value the previous elector ever
    /// advertised: accusations are honoured by exact epoch match, so
    /// resetting to 0 would make epochs from the previous life *current*
    /// again and let a delayed or duplicated old ACCUSE demote the node long
    /// after the suspicion episode that minted it.
    pub fn new_with_epoch(me: NodeId, candidate: bool, now: SimInstant, epoch: u64) -> Self {
        OmegaL {
            me,
            candidate,
            accusation_time: now,
            epoch,
            active: candidate,
            peers: PeerTable::new(),
        }
    }

    fn my_rank(&self) -> Rank {
        Rank::new(self.accusation_time, self.me)
    }

    /// Re-evaluates whether this node should be competing, after any input
    /// that may have changed the picture.
    fn reevaluate(&mut self) {
        if !self.candidate {
            self.active = false;
            return;
        }
        let better_exists = self
            .peers
            .best_trusted_rank()
            .map(|best| best < self.my_rank())
            .unwrap_or(false);
        if self.active && better_exists {
            // Withdraw: a better candidate is visible. Advancing the epoch
            // means the suspicions our silence will trigger cannot raise our
            // accusation time.
            self.active = false;
            self.epoch += 1;
        } else if !self.active && !better_exists {
            // Re-enter the competition (e.g. the leader crashed).
            self.active = true;
            self.epoch += 1;
        }
    }
}

impl LeaderElector for OmegaL {
    fn kind(&self) -> ElectorKind {
        ElectorKind::OmegaL
    }

    fn id(&self) -> NodeId {
        self.me
    }

    fn is_candidate(&self) -> bool {
        self.candidate
    }

    fn is_competing(&self) -> bool {
        self.candidate && self.active
    }

    fn accusation_time(&self) -> SimInstant {
        self.accusation_time
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn leader(&self) -> Option<NodeId> {
        let best_peer = self.peers.best_trusted_rank();
        let own = if self.is_competing() {
            Some(self.my_rank())
        } else {
            None
        };
        match (best_peer, own) {
            (Some(a), Some(b)) => Some(a.min(b).id),
            (Some(a), None) => Some(a.id),
            (None, Some(b)) => Some(b.id),
            (None, None) => None,
        }
    }

    fn alive_payload(&self) -> AlivePayload {
        AlivePayload {
            accusation_time: self.accusation_time,
            epoch: self.epoch,
            local_leader: None,
        }
    }

    fn on_alive(&mut self, from: NodeId, payload: AlivePayload, now: SimInstant) {
        self.peers.record_alive(from, payload, now);
        self.reevaluate();
    }

    fn on_accusation(&mut self, epoch: u64, now: SimInstant) {
        // Only honour accusations that reference the current epoch *and*
        // arrive while we are actively sending: suspicions provoked by a
        // voluntary withdrawal carry a stale epoch and are ignored.
        if self.active && epoch == self.epoch {
            self.accusation_time = now;
            self.epoch += 1;
            self.reevaluate();
        }
    }

    fn on_trust(&mut self, peer: NodeId, _now: SimInstant) {
        self.peers.mark_trusted(peer);
        self.reevaluate();
    }

    fn on_suspect(&mut self, peer: NodeId, _now: SimInstant) -> Vec<ElectorOutput> {
        let output = match self.peers.mark_suspected(peer) {
            Some(epoch) => vec![ElectorOutput::SendAccusation { to: peer, epoch }],
            None => Vec::new(),
        };
        self.reevaluate();
        output
    }

    fn remove_peer(&mut self, peer: NodeId, _now: SimInstant) {
        self.peers.remove(peer);
        self.reevaluate();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    fn secs(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    /// One round of the service's behaviour: every *competing* elector's
    /// payload is delivered to every other elector.
    fn exchange(electors: &mut [OmegaL], now: SimInstant) {
        let payloads: Vec<(NodeId, AlivePayload, bool)> = electors
            .iter()
            .map(|e| (e.id(), e.alive_payload(), e.is_competing()))
            .collect();
        for elector in electors.iter_mut() {
            for &(from, p, competing) in &payloads {
                if competing && from != elector.id() {
                    elector.on_alive(from, p, now);
                }
            }
        }
    }

    #[test]
    fn losers_withdraw_until_only_the_leader_competes() {
        let mut electors = vec![
            OmegaL::new(NodeId(0), true, secs(0)),
            OmegaL::new(NodeId(1), true, secs(1)),
            OmegaL::new(NodeId(2), true, secs(2)),
        ];
        assert!(electors.iter().all(|e| e.is_competing()));
        for _ in 0..3 {
            exchange(&mut electors, secs(3));
        }
        // Node 0 (earliest accusation time) leads; the others have withdrawn.
        assert!(electors[0].is_competing());
        assert!(!electors[1].is_competing());
        assert!(!electors[2].is_competing());
        for elector in &electors {
            assert_eq!(elector.leader(), Some(NodeId(0)));
        }
    }

    #[test]
    fn voluntary_silence_does_not_raise_accusation_time() {
        let mut loser = OmegaL::new(NodeId(1), true, secs(5));
        let acc_before = loser.accusation_time();
        // Seeing a better candidate makes it withdraw and bump its epoch.
        loser.on_alive(
            NodeId(0),
            AlivePayload {
                accusation_time: secs(0),
                epoch: 0,
                local_leader: None,
            },
            secs(6),
        );
        assert!(!loser.is_competing());
        let old_epoch_seen_by_others = 0;
        // Other processes now suspect it (it went silent) and accuse it with
        // the epoch they last saw — which is stale, so nothing changes.
        loser.on_accusation(old_epoch_seen_by_others, secs(10));
        assert_eq!(loser.accusation_time(), acc_before);
    }

    #[test]
    fn accusation_while_active_demotes() {
        let mut leader = OmegaL::new(NodeId(0), true, secs(0));
        assert!(leader.is_competing());
        let epoch = leader.epoch();
        leader.on_accusation(epoch, secs(50));
        assert_eq!(leader.accusation_time(), secs(50));
        assert!(leader.epoch() > epoch);
        // With no visible competitor it keeps competing (it may still be the
        // best candidate), but its rank is now worse than any veteran's.
        assert!(leader.is_competing());
    }

    #[test]
    fn leader_crash_triggers_reentry_and_new_leader() {
        let mut electors = vec![
            OmegaL::new(NodeId(0), true, secs(0)),
            OmegaL::new(NodeId(1), true, secs(1)),
            OmegaL::new(NodeId(2), true, secs(2)),
        ];
        for _ in 0..3 {
            exchange(&mut electors, secs(3));
        }
        // Nodes 1 and 2 went silent after withdrawing, so (as in a real run)
        // their detectors suspect each other; these suspicions are harmless.
        {
            let (left, right) = electors.split_at_mut(2);
            left[1].on_suspect(NodeId(2), secs(5));
            right[0].on_suspect(NodeId(1), secs(5));
        }
        // Node 0 crashes; the survivors' detectors eventually suspect it.
        let mut survivors: Vec<OmegaL> = electors.drain(1..).collect();
        for elector in survivors.iter_mut() {
            elector.on_suspect(NodeId(0), secs(10));
        }
        // Both re-enter the competition...
        assert!(survivors.iter().all(|e| e.is_competing()));
        // ...and after exchanging ALIVEs the earliest-ranked (node 1) wins,
        // while node 2 withdraws again.
        for _ in 0..3 {
            exchange(&mut survivors, secs(11));
        }
        assert_eq!(survivors[0].leader(), Some(NodeId(1)));
        assert_eq!(survivors[1].leader(), Some(NodeId(1)));
        assert!(survivors[0].is_competing());
        assert!(!survivors[1].is_competing());
    }

    #[test]
    fn rejoining_process_does_not_demote_leader() {
        let mut electors = vec![
            OmegaL::new(NodeId(1), true, secs(0)),
            OmegaL::new(NodeId(2), true, secs(0)),
        ];
        for _ in 0..2 {
            exchange(&mut electors, secs(1));
        }
        assert_eq!(electors[0].leader(), Some(NodeId(1)));

        // Node 0 recovers from a crash and joins with a later accusation
        // time: it must observe node 1's ALIVEs and withdraw, leaving the
        // leadership untouched.
        electors.push(OmegaL::new(NodeId(0), true, secs(300)));
        for _ in 0..3 {
            exchange(&mut electors, secs(301));
        }
        for elector in &electors {
            assert_eq!(elector.leader(), Some(NodeId(1)));
        }
        assert!(!electors[2].is_competing());
    }

    #[test]
    fn non_candidate_never_competes_but_follows() {
        let mut observer = OmegaL::new(NodeId(7), false, secs(0));
        assert!(!observer.is_competing());
        assert_eq!(observer.leader(), None);
        observer.on_alive(
            NodeId(2),
            AlivePayload {
                accusation_time: secs(1),
                epoch: 0,
                local_leader: None,
            },
            secs(2),
        );
        assert_eq!(observer.leader(), Some(NodeId(2)));
        assert!(!observer.is_competing());
        // Losing the leader leaves it leaderless (it cannot lead itself).
        observer.on_suspect(NodeId(2), secs(5));
        assert_eq!(observer.leader(), None);
    }

    #[test]
    fn withdrawn_process_reenters_when_better_peer_disappears() {
        let mut elector = OmegaL::new(NodeId(3), true, secs(10));
        elector.on_alive(
            NodeId(1),
            AlivePayload {
                accusation_time: secs(0),
                epoch: 4,
                local_leader: None,
            },
            secs(11),
        );
        assert!(!elector.is_competing());
        let epoch_after_withdraw = elector.epoch();

        let outputs = elector.on_suspect(NodeId(1), secs(20));
        assert_eq!(
            outputs,
            vec![ElectorOutput::SendAccusation {
                to: NodeId(1),
                epoch: 4
            }]
        );
        assert!(elector.is_competing());
        assert!(elector.epoch() > epoch_after_withdraw);
        assert_eq!(elector.leader(), Some(NodeId(3)));
    }
}
