//! Enum dispatch over the three elector implementations.
//!
//! The service selects an algorithm at group-join time (the paper lets the
//! user pick between S2's Ωlc and S3's Ωl; S1's Ωid is kept as the baseline
//! used in the evaluation). [`AnyElector`] lets the service hold whichever
//! was selected without boxing.

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::elector::LeaderElector;
use crate::omega_id::OmegaId;
use crate::omega_l::OmegaL;
use crate::omega_lc::OmegaLc;
use crate::types::{AlivePayload, ElectorKind, ElectorOutput};

/// One of the three leader-election algorithms, selected at runtime.
#[derive(Debug, Clone)]
pub enum AnyElector {
    /// The Ωid baseline (service S1).
    OmegaId(OmegaId),
    /// The link-crash tolerant Ωlc (service S2).
    OmegaLc(OmegaLc),
    /// The communication-efficient Ωl (service S3).
    OmegaL(OmegaL),
}

impl AnyElector {
    /// Builds an elector of the requested kind for node `me`.
    pub fn new(kind: ElectorKind, me: NodeId, candidate: bool, now: SimInstant) -> Self {
        Self::new_with_epoch(kind, me, candidate, now, 0)
    }

    /// Builds an elector of the requested kind whose accusation epoch starts
    /// at `epoch` instead of 0.
    ///
    /// This is the constructor for *recreating* an elector mid-life (a
    /// listener upgrading to candidate, the last local candidate leaving):
    /// passing an epoch above every value the previous elector advertised
    /// keeps replayed accusations from its earlier life stale. Ωid has no
    /// epoch mechanism, so the floor is ignored there.
    pub fn new_with_epoch(
        kind: ElectorKind,
        me: NodeId,
        candidate: bool,
        now: SimInstant,
        epoch: u64,
    ) -> Self {
        match kind {
            ElectorKind::OmegaId => AnyElector::OmegaId(OmegaId::new(me, candidate, now)),
            ElectorKind::OmegaLc => {
                AnyElector::OmegaLc(OmegaLc::new_with_epoch(me, candidate, now, epoch))
            }
            ElectorKind::OmegaL => {
                AnyElector::OmegaL(OmegaL::new_with_epoch(me, candidate, now, epoch))
            }
        }
    }

    fn inner(&self) -> &dyn LeaderElector {
        match self {
            AnyElector::OmegaId(e) => e,
            AnyElector::OmegaLc(e) => e,
            AnyElector::OmegaL(e) => e,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn LeaderElector {
        match self {
            AnyElector::OmegaId(e) => e,
            AnyElector::OmegaLc(e) => e,
            AnyElector::OmegaL(e) => e,
        }
    }
}

impl LeaderElector for AnyElector {
    fn kind(&self) -> ElectorKind {
        self.inner().kind()
    }

    fn id(&self) -> NodeId {
        self.inner().id()
    }

    fn is_candidate(&self) -> bool {
        self.inner().is_candidate()
    }

    fn is_competing(&self) -> bool {
        self.inner().is_competing()
    }

    fn accusation_time(&self) -> SimInstant {
        self.inner().accusation_time()
    }

    fn epoch(&self) -> u64 {
        self.inner().epoch()
    }

    fn leader(&self) -> Option<NodeId> {
        self.inner().leader()
    }

    fn alive_payload(&self) -> AlivePayload {
        self.inner().alive_payload()
    }

    fn on_alive(&mut self, from: NodeId, payload: AlivePayload, now: SimInstant) {
        self.inner_mut().on_alive(from, payload, now);
    }

    fn on_accusation(&mut self, epoch: u64, now: SimInstant) {
        self.inner_mut().on_accusation(epoch, now);
    }

    fn on_trust(&mut self, peer: NodeId, now: SimInstant) {
        self.inner_mut().on_trust(peer, now);
    }

    fn on_suspect(&mut self, peer: NodeId, now: SimInstant) -> Vec<ElectorOutput> {
        self.inner_mut().on_suspect(peer, now)
    }

    fn remove_peer(&mut self, peer: NodeId, now: SimInstant) {
        self.inner_mut().remove_peer(peer, now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_the_requested_kind() {
        for kind in ElectorKind::all() {
            let elector = AnyElector::new(kind, NodeId(4), true, SimInstant::ZERO);
            assert_eq!(elector.kind(), kind);
            assert_eq!(elector.id(), NodeId(4));
            assert!(elector.is_candidate());
        }
    }

    #[test]
    fn epoch_floor_keeps_replayed_accusations_stale() {
        for kind in [ElectorKind::OmegaLc, ElectorKind::OmegaL] {
            let mut elector =
                AnyElector::new_with_epoch(kind, NodeId(1), true, SimInstant::ZERO, 7);
            assert_eq!(elector.epoch(), 7);
            let acc_before = elector.accusation_time();
            // An accusation minted against a previous life (epoch < 7) must
            // not demote the recreated elector.
            for stale in 0..7 {
                elector.on_accusation(stale, SimInstant::ZERO);
            }
            assert_eq!(elector.epoch(), 7);
            assert_eq!(elector.accusation_time(), acc_before);
            // The current epoch is still honoured.
            elector.on_accusation(7, SimInstant::ZERO);
            assert!(elector.epoch() > 7);
        }
        // Ωid has no epochs; the floor is ignored.
        let elector =
            AnyElector::new_with_epoch(ElectorKind::OmegaId, NodeId(1), true, SimInstant::ZERO, 7);
        assert_eq!(elector.epoch(), 0);
    }

    #[test]
    fn dispatch_reaches_the_inner_elector() {
        let mut elector = AnyElector::new(ElectorKind::OmegaLc, NodeId(2), true, SimInstant::ZERO);
        assert_eq!(elector.leader(), Some(NodeId(2)));
        elector.on_alive(
            NodeId(1),
            AlivePayload {
                accusation_time: SimInstant::ZERO,
                epoch: 0,
                local_leader: None,
            },
            SimInstant::ZERO,
        );
        // Same accusation time: smaller id wins.
        assert_eq!(elector.leader(), Some(NodeId(1)));
        let outputs = elector.on_suspect(NodeId(1), SimInstant::ZERO);
        assert_eq!(outputs.len(), 1);
        assert_eq!(elector.leader(), Some(NodeId(2)));
        elector.on_trust(NodeId(1), SimInstant::ZERO);
        assert_eq!(elector.leader(), Some(NodeId(1)));
        elector.remove_peer(NodeId(1), SimInstant::ZERO);
        assert_eq!(elector.leader(), Some(NodeId(2)));
        elector.on_accusation(0, SimInstant::ZERO);
        assert!(elector.epoch() > 0);
        let _ = elector.alive_payload();
        assert!(elector.is_competing());
        let _ = elector.accusation_time();
    }
}
