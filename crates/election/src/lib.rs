//! # sle-election — the stable leader-election algorithms
//!
//! This crate implements the three leader-election algorithms evaluated in
//! Schiper & Toueg (DSN 2008) as sans-io state machines, one instance per
//! `(node, group)` pair, driven by the service layer in `sle-core`:
//!
//! | Service | Module | Behaviour |
//! |---------|--------|-----------|
//! | S1 | [`omega_id`] | smallest identifier among alive candidates — the unstable baseline |
//! | S2 | [`omega_lc`] | accusation-time ranking + local-leader forwarding — tolerates lossy **and** crashed links, quadratic messages |
//! | S3 | [`omega_l`] | accusation-time ranking + voluntary withdrawal — communication-efficient (eventually only the leader sends) |
//!
//! The [`elector::LeaderElector`] trait is the contract between the service
//! and an algorithm, and [`any::AnyElector`] provides runtime selection, so
//! additional algorithms can be "plugged in" exactly as the paper's
//! concluding remarks suggest.
//!
//! ## Example
//!
//! ```
//! use sle_election::prelude::*;
//! use sle_sim::actor::NodeId;
//! use sle_sim::time::{SimDuration, SimInstant};
//!
//! let t0 = SimInstant::ZERO;
//! // A veteran candidate and a freshly recovered one.
//! let veteran = OmegaLc::new(NodeId(7), true, t0);
//! let mut newcomer = OmegaLc::new(NodeId(1), true, t0 + SimDuration::from_secs(60));
//!
//! // The newcomer hears the veteran's ALIVE and, despite its smaller id,
//! // follows the veteran: the leadership is stable.
//! newcomer.on_alive(NodeId(7), veteran.alive_payload(), t0 + SimDuration::from_secs(61));
//! assert_eq!(newcomer.leader(), Some(NodeId(7)));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod any;
pub mod elector;
pub mod omega_id;
pub mod omega_l;
pub mod omega_lc;
pub mod types;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::any::AnyElector;
    pub use crate::elector::{LeaderElector, PeerState, PeerTable};
    pub use crate::omega_id::OmegaId;
    pub use crate::omega_l::OmegaL;
    pub use crate::omega_lc::OmegaLc;
    pub use crate::types::{AlivePayload, ElectorKind, ElectorOutput, LeaderClaim, Rank};
}

pub use any::AnyElector;
pub use elector::{LeaderElector, PeerState, PeerTable};
pub use omega_id::OmegaId;
pub use omega_l::OmegaL;
pub use omega_lc::OmegaLc;
pub use types::{AlivePayload, ElectorKind, ElectorOutput, LeaderClaim, Rank};
