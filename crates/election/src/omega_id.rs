//! Ωid — the leader-election algorithm of service **S1** (paper Section 6.2).
//!
//! The leader of a group is simply the process with the smallest identifier
//! among the processes currently deemed to be alive (i.e. the candidates
//! from which fresh ALIVE messages are being received, plus this node itself
//! if it is a candidate).
//!
//! This algorithm is deliberately *unstable*: whenever a process with a
//! smaller identifier (re)joins the group, the current leader is demoted
//! even though it is perfectly functional. The paper measures roughly six
//! such unjustified demotions per hour under its workstation crash/recovery
//! workload (Figure 3); services S2 and S3 exist precisely to avoid them.

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::elector::{LeaderElector, PeerTable};
use crate::types::{AlivePayload, ElectorKind, ElectorOutput};

/// The Ωid elector state for one node and one group.
#[derive(Debug, Clone)]
pub struct OmegaId {
    me: NodeId,
    candidate: bool,
    started_at: SimInstant,
    peers: PeerTable,
}

impl OmegaId {
    /// Creates the elector for node `me`, which is a leadership candidate iff
    /// `candidate` is true, starting (joining the group) at `now`.
    pub fn new(me: NodeId, candidate: bool, now: SimInstant) -> Self {
        OmegaId {
            me,
            candidate,
            started_at: now,
            peers: PeerTable::new(),
        }
    }
}

impl LeaderElector for OmegaId {
    fn kind(&self) -> ElectorKind {
        ElectorKind::OmegaId
    }

    fn id(&self) -> NodeId {
        self.me
    }

    fn is_candidate(&self) -> bool {
        self.candidate
    }

    fn is_competing(&self) -> bool {
        self.candidate
    }

    fn accusation_time(&self) -> SimInstant {
        self.started_at
    }

    fn epoch(&self) -> u64 {
        0
    }

    fn leader(&self) -> Option<NodeId> {
        let best_peer = self.peers.trusted().map(|(id, _)| id).min();
        let own = if self.candidate { Some(self.me) } else { None };
        match (best_peer, own) {
            (Some(p), Some(o)) => Some(p.min(o)),
            (Some(p), None) => Some(p),
            (None, own) => own,
        }
    }

    fn alive_payload(&self) -> AlivePayload {
        AlivePayload {
            accusation_time: self.started_at,
            epoch: 0,
            local_leader: None,
        }
    }

    fn on_alive(&mut self, from: NodeId, payload: AlivePayload, now: SimInstant) {
        self.peers.record_alive(from, payload, now);
    }

    fn on_accusation(&mut self, _epoch: u64, _now: SimInstant) {
        // Ωid has no accusation mechanism: identifiers, not accusation times,
        // decide the leader.
    }

    fn on_trust(&mut self, peer: NodeId, _now: SimInstant) {
        self.peers.mark_trusted(peer);
    }

    fn on_suspect(&mut self, peer: NodeId, _now: SimInstant) -> Vec<ElectorOutput> {
        self.peers.mark_suspected(peer);
        Vec::new()
    }

    fn remove_peer(&mut self, peer: NodeId, _now: SimInstant) {
        self.peers.remove(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    fn payload(at: SimInstant) -> AlivePayload {
        AlivePayload {
            accusation_time: at,
            epoch: 0,
            local_leader: None,
        }
    }

    #[test]
    fn lone_candidate_leads_itself() {
        let elector = OmegaId::new(NodeId(3), true, SimInstant::ZERO);
        assert_eq!(elector.leader(), Some(NodeId(3)));
        assert_eq!(elector.kind(), ElectorKind::OmegaId);
        assert!(elector.is_competing());
        assert_eq!(elector.epoch(), 0);
    }

    #[test]
    fn non_candidate_without_peers_has_no_leader() {
        let elector = OmegaId::new(NodeId(3), false, SimInstant::ZERO);
        assert_eq!(elector.leader(), None);
        assert!(!elector.is_competing());
        assert!(!elector.is_candidate());
    }

    #[test]
    fn smallest_known_id_wins() {
        let mut elector = OmegaId::new(NodeId(5), true, SimInstant::ZERO);
        let now = SimInstant::ZERO + SimDuration::from_millis(10);
        elector.on_alive(NodeId(8), payload(SimInstant::ZERO), now);
        assert_eq!(elector.leader(), Some(NodeId(5)));
        elector.on_alive(NodeId(2), payload(SimInstant::ZERO), now);
        assert_eq!(elector.leader(), Some(NodeId(2)));
    }

    #[test]
    fn suspected_leader_is_replaced_by_next_smallest() {
        let mut elector = OmegaId::new(NodeId(5), true, SimInstant::ZERO);
        let now = SimInstant::ZERO + SimDuration::from_millis(10);
        elector.on_alive(NodeId(2), payload(SimInstant::ZERO), now);
        elector.on_alive(NodeId(3), payload(SimInstant::ZERO), now);
        assert_eq!(elector.leader(), Some(NodeId(2)));
        let accusations = elector.on_suspect(NodeId(2), now + SimDuration::from_secs(1));
        assert!(accusations.is_empty(), "Omega_id never accuses");
        assert_eq!(elector.leader(), Some(NodeId(3)));
        // Trusting node 2 again restores it as the leader.
        elector.on_trust(NodeId(2), now + SimDuration::from_secs(2));
        assert_eq!(elector.leader(), Some(NodeId(2)));
    }

    #[test]
    fn rejoining_smaller_id_demotes_current_leader() {
        // This is the instability the paper measures: node 5 is the leader,
        // node 1 recovers from a crash and immediately takes over.
        let mut elector = OmegaId::new(NodeId(5), true, SimInstant::ZERO);
        let now = SimInstant::ZERO + SimDuration::from_secs(100);
        assert_eq!(elector.leader(), Some(NodeId(5)));
        elector.on_alive(NodeId(1), payload(now), now);
        assert_eq!(elector.leader(), Some(NodeId(1)));
    }

    #[test]
    fn removed_peer_no_longer_counts() {
        let mut elector = OmegaId::new(NodeId(5), true, SimInstant::ZERO);
        let now = SimInstant::ZERO;
        elector.on_alive(NodeId(1), payload(now), now);
        assert_eq!(elector.leader(), Some(NodeId(1)));
        elector.remove_peer(NodeId(1), now);
        assert_eq!(elector.leader(), Some(NodeId(5)));
    }

    #[test]
    fn accusations_are_ignored() {
        let mut elector = OmegaId::new(NodeId(5), true, SimInstant::ZERO);
        let before = elector.accusation_time();
        elector.on_accusation(0, SimInstant::ZERO + SimDuration::from_secs(9));
        assert_eq!(elector.accusation_time(), before);
        assert_eq!(elector.alive_payload().accusation_time, before);
    }
}
