//! Ωlc — the leader-election algorithm of service **S2** (paper Section 6.3).
//!
//! Ωlc is based on the algorithm of Aguilera, Delporte-Gallet, Fauconnier and
//! Toueg designed for systems where every link may be lossy or may crash
//! outright, except the output links of some correct process. Its two
//! distinguishing mechanisms, both sketched in the paper, are:
//!
//! 1. **Accusation-time ranking.** Every process keeps the last time it was
//!    validly accused of having crashed (initially its join time) and
//!    advertises it in its ALIVE messages. Candidates are ranked by
//!    `(accusation time, id)`, so a long-lived healthy leader is never
//!    out-ranked by a rejoining process — this is what makes S2 perfectly
//!    stable in the lossy-link experiments (Figure 4, λ_u = 0).
//! 2. **Local-leader forwarding.** Each process first picks a *local* leader
//!    among the processes it hears directly, then picks its *global* leader
//!    as the best-ranked local leader advertised by any process it trusts.
//!    If the link from the leader to p crashes, p keeps following the leader
//!    through the claims of the other processes instead of electing someone
//!    else on its own — this is what keeps S2's availability at 98.8% even
//!    when every link crashes once a minute (Figure 7).
//!
//! Every alive candidate sends ALIVE messages to every group member, so the
//! message cost is quadratic in the group size (Figure 6).

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::elector::{LeaderElector, PeerTable};
use crate::types::{AlivePayload, ElectorKind, ElectorOutput, LeaderClaim, Rank};

/// The Ωlc elector state for one node and one group.
#[derive(Debug, Clone)]
pub struct OmegaLc {
    me: NodeId,
    candidate: bool,
    accusation_time: SimInstant,
    epoch: u64,
    peers: PeerTable,
}

impl OmegaLc {
    /// Creates the elector for node `me`, which is a leadership candidate iff
    /// `candidate` is true, starting (joining the group) at `now`.
    ///
    /// The initial accusation time is the join time, so processes that have
    /// been members the longest (without being accused) rank best.
    pub fn new(me: NodeId, candidate: bool, now: SimInstant) -> Self {
        Self::new_with_epoch(me, candidate, now, 0)
    }

    /// Like [`OmegaLc::new`], but starting the accusation epoch at `epoch`
    /// instead of 0.
    ///
    /// A service recreating the elector for a group it never left (a
    /// listener upgrading to candidate, the last local candidate leaving)
    /// must pass an epoch above every value the previous elector ever
    /// advertised: accusations are honoured by exact epoch match, so
    /// resetting to 0 would make epochs from the previous life *current*
    /// again and let a delayed or duplicated old ACCUSE demote the node long
    /// after the suspicion episode that minted it.
    pub fn new_with_epoch(me: NodeId, candidate: bool, now: SimInstant, epoch: u64) -> Self {
        OmegaLc {
            me,
            candidate,
            accusation_time: now,
            epoch,
            peers: PeerTable::new(),
        }
    }

    fn my_rank(&self) -> Rank {
        Rank::new(self.accusation_time, self.me)
    }

    /// Stage one: the best-ranked process among those heard directly
    /// (trusted by the failure detector), plus this node if it is a
    /// candidate.
    fn local_leader(&self) -> Option<Rank> {
        let best_peer = self.peers.best_trusted_rank();
        let own = if self.candidate {
            Some(self.my_rank())
        } else {
            None
        };
        match (best_peer, own) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, own) => own,
        }
    }

    /// Stage two: the best-ranked local-leader claim among those advertised
    /// by trusted peers, together with this node's own local leader.
    fn global_leader(&self) -> Option<Rank> {
        let mut best = self.local_leader();
        for (_, state) in self.peers.trusted() {
            if let Some(claim) = state.payload.local_leader {
                let rank = claim.rank();
                best = Some(match best {
                    Some(current) => current.min(rank),
                    None => rank,
                });
            }
        }
        best
    }
}

impl LeaderElector for OmegaLc {
    fn kind(&self) -> ElectorKind {
        ElectorKind::OmegaLc
    }

    fn id(&self) -> NodeId {
        self.me
    }

    fn is_candidate(&self) -> bool {
        self.candidate
    }

    fn is_competing(&self) -> bool {
        self.candidate
    }

    fn accusation_time(&self) -> SimInstant {
        self.accusation_time
    }

    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn leader(&self) -> Option<NodeId> {
        self.global_leader().map(|rank| rank.id)
    }

    fn alive_payload(&self) -> AlivePayload {
        AlivePayload {
            accusation_time: self.accusation_time,
            epoch: self.epoch,
            local_leader: self.local_leader().map(|rank| LeaderClaim {
                node: rank.id,
                accusation_time: rank.accusation_time,
            }),
        }
    }

    fn on_alive(&mut self, from: NodeId, payload: AlivePayload, now: SimInstant) {
        self.peers.record_alive(from, payload, now);
    }

    fn on_accusation(&mut self, epoch: u64, now: SimInstant) {
        // Accept the accusation only if it refers to the current epoch: this
        // de-duplicates the accusations produced by a single suspicion
        // episode observed by many processes, so one disconnection episode
        // costs the accused at most one demotion.
        if epoch == self.epoch {
            self.accusation_time = now;
            self.epoch += 1;
        }
    }

    fn on_trust(&mut self, peer: NodeId, _now: SimInstant) {
        self.peers.mark_trusted(peer);
    }

    fn on_suspect(&mut self, peer: NodeId, _now: SimInstant) -> Vec<ElectorOutput> {
        match self.peers.mark_suspected(peer) {
            Some(epoch) => vec![ElectorOutput::SendAccusation { to: peer, epoch }],
            None => Vec::new(),
        }
    }

    fn remove_peer(&mut self, peer: NodeId, _now: SimInstant) {
        self.peers.remove(peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    fn secs(s: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_secs(s)
    }

    fn payload(acc: SimInstant, epoch: u64, claim: Option<(NodeId, SimInstant)>) -> AlivePayload {
        AlivePayload {
            accusation_time: acc,
            epoch,
            local_leader: claim.map(|(node, at)| LeaderClaim {
                node,
                accusation_time: at,
            }),
        }
    }

    /// Exchanges current payloads among a set of electors (full mesh), as the
    /// service would by broadcasting ALIVE messages.
    fn exchange(electors: &mut [OmegaLc], now: SimInstant) {
        let payloads: Vec<(NodeId, AlivePayload)> = electors
            .iter()
            .map(|e| (e.id(), e.alive_payload()))
            .collect();
        for elector in electors.iter_mut() {
            for &(from, p) in &payloads {
                if from != elector.id() {
                    elector.on_alive(from, p, now);
                }
            }
        }
    }

    #[test]
    fn earliest_accusation_time_wins_not_smallest_id() {
        let mut electors = vec![
            OmegaLc::new(NodeId(0), true, secs(10)),
            OmegaLc::new(NodeId(1), true, secs(0)), // oldest member
            OmegaLc::new(NodeId(2), true, secs(20)),
        ];
        for _ in 0..2 {
            exchange(&mut electors, secs(21));
        }
        for elector in &electors {
            assert_eq!(elector.leader(), Some(NodeId(1)));
        }
    }

    #[test]
    fn rejoining_process_does_not_demote_leader() {
        // Stability: node 0 rejoins with a later accusation (join) time and
        // must not displace the established leader even though 0 < 1.
        let mut electors = vec![
            OmegaLc::new(NodeId(1), true, secs(0)),
            OmegaLc::new(NodeId(2), true, secs(0)),
        ];
        exchange(&mut electors, secs(1));
        assert_eq!(electors[0].leader(), Some(NodeId(1)));

        let rejoined = OmegaLc::new(NodeId(0), true, secs(500));
        electors.push(rejoined);
        for _ in 0..2 {
            exchange(&mut electors, secs(501));
        }
        for elector in &electors {
            assert_eq!(
                elector.leader(),
                Some(NodeId(1)),
                "leader must remain node 1"
            );
        }
    }

    #[test]
    fn crashed_leader_is_replaced_by_next_earliest() {
        let mut electors = vec![
            OmegaLc::new(NodeId(0), true, secs(0)),
            OmegaLc::new(NodeId(1), true, secs(5)),
            OmegaLc::new(NodeId(2), true, secs(10)),
        ];
        for _ in 0..2 {
            exchange(&mut electors, secs(11));
        }
        assert_eq!(electors[1].leader(), Some(NodeId(0)));

        // Node 0 crashes: the survivors suspect it and re-exchange.
        let mut survivors: Vec<OmegaLc> = electors.drain(1..).collect();
        for elector in survivors.iter_mut() {
            let out = elector.on_suspect(NodeId(0), secs(12));
            assert_eq!(
                out.len(),
                1,
                "suspicion of a known peer produces an accusation"
            );
        }
        for _ in 0..2 {
            exchange(&mut survivors, secs(12));
        }
        for elector in &survivors {
            assert_eq!(elector.leader(), Some(NodeId(1)));
        }
    }

    #[test]
    fn forwarding_preserves_leader_through_a_crashed_link() {
        // Node 2 cannot hear the leader (node 0) directly, but node 1 keeps
        // claiming node 0 as its local leader; node 2 must keep following
        // node 0 (this is the mechanism behind Figure 7's S2 robustness).
        let mut n2 = OmegaLc::new(NodeId(2), true, secs(0));
        n2.on_alive(
            NodeId(1),
            payload(secs(0), 0, Some((NodeId(0), secs(0)))),
            secs(1),
        );
        // Node 2 has never heard node 0 directly (link crashed), so its local
        // leader is node 1... but the forwarded claim wins globally.
        assert_eq!(n2.leader(), Some(NodeId(0)));

        // Even after node 2 explicitly suspects node 0 (it cannot hear it),
        // the forwarded claim keeps node 0 elected.
        let accusations = n2.on_suspect(NodeId(0), secs(2));
        assert!(
            accusations.is_empty(),
            "node 0 was never directly heard, nothing to accuse"
        );
        assert_eq!(n2.leader(), Some(NodeId(0)));
    }

    #[test]
    fn valid_accusation_demotes_and_bumps_epoch() {
        let mut leader = OmegaLc::new(NodeId(0), true, secs(0));
        let mut other = OmegaLc::new(NodeId(1), true, secs(5));
        let mut both = vec![leader.clone(), other.clone()];
        exchange(&mut both, secs(6));
        leader = both.remove(0);
        other = both.remove(0);
        assert_eq!(other.leader(), Some(NodeId(0)));

        // A process that lost contact with the leader accuses it with the
        // epoch it last saw (0). The leader accepts and re-ranks itself.
        leader.on_accusation(0, secs(100));
        assert_eq!(leader.accusation_time(), secs(100));
        assert_eq!(leader.epoch(), 1);
        // A second, duplicate accusation for the stale epoch is ignored.
        leader.on_accusation(0, secs(200));
        assert_eq!(leader.accusation_time(), secs(100));

        // Once the demoted leader's new accusation time propagates, the other
        // process takes over.
        other.on_alive(NodeId(0), leader.alive_payload(), secs(101));
        let mut pair = vec![leader, other];
        exchange(&mut pair, secs(101));
        assert_eq!(pair[0].leader(), Some(NodeId(1)));
        assert_eq!(pair[1].leader(), Some(NodeId(1)));
    }

    #[test]
    fn non_candidate_follows_but_never_leads() {
        let mut observer = OmegaLc::new(NodeId(9), false, secs(0));
        assert_eq!(observer.leader(), None);
        assert!(!observer.is_competing());
        observer.on_alive(NodeId(3), payload(secs(1), 0, None), secs(2));
        assert_eq!(observer.leader(), Some(NodeId(3)));
        // Its own payload never claims itself.
        assert_eq!(
            observer.alive_payload().local_leader.unwrap().node,
            NodeId(3)
        );
    }

    #[test]
    fn suspected_then_trusted_peer_counts_again() {
        let mut elector = OmegaLc::new(NodeId(5), true, secs(10));
        elector.on_alive(NodeId(1), payload(secs(0), 0, None), secs(11));
        assert_eq!(elector.leader(), Some(NodeId(1)));
        elector.on_suspect(NodeId(1), secs(12));
        assert_eq!(elector.leader(), Some(NodeId(5)));
        elector.on_trust(NodeId(1), secs(13));
        assert_eq!(elector.leader(), Some(NodeId(1)));
        elector.remove_peer(NodeId(1), secs(14));
        assert_eq!(elector.leader(), Some(NodeId(5)));
    }
}
