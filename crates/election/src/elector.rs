//! The interface every leader-election algorithm implements, plus the peer
//! bookkeeping they all share.
//!
//! An elector instance lives at one service node, for one group. It is
//! driven entirely by the service layer: ALIVE payloads and accusations it
//! receives, trust/suspect notifications from the failure detector, and
//! membership updates from the Group Maintenance module. In return it
//! answers two questions — *who is the leader?* and *should this node be
//! sending ALIVE messages right now?* — and occasionally asks for an
//! accusation message to be sent.

use std::collections::BTreeMap;

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::types::{AlivePayload, ElectorKind, ElectorOutput, Rank};

/// Leader-election algorithm driven by the service layer.
///
/// Implementations: [`OmegaId`](crate::omega_id::OmegaId) (S1),
/// [`OmegaLc`](crate::omega_lc::OmegaLc) (S2) and
/// [`OmegaL`](crate::omega_l::OmegaL) (S3).
pub trait LeaderElector {
    /// Which algorithm this is.
    fn kind(&self) -> ElectorKind;

    /// This node's identifier.
    fn id(&self) -> NodeId;

    /// Whether this node is a candidate for the group's leadership.
    fn is_candidate(&self) -> bool;

    /// Whether this node should currently be sending ALIVE messages for the
    /// group. For Ωid and Ωlc this is simply "is a candidate"; for Ωl a
    /// candidate stops competing while it sees a better-ranked candidate.
    fn is_competing(&self) -> bool;

    /// This node's current accusation time.
    fn accusation_time(&self) -> SimInstant;

    /// This node's current accusation epoch.
    fn epoch(&self) -> u64;

    /// The current leader, if any.
    fn leader(&self) -> Option<NodeId>;

    /// The election payload to piggyback on the next outgoing ALIVE message.
    fn alive_payload(&self) -> AlivePayload;

    /// Handles an ALIVE payload received from `from` (which also implies the
    /// failure detector currently trusts `from`).
    fn on_alive(&mut self, from: NodeId, payload: AlivePayload, now: SimInstant);

    /// Handles an accusation against this node referencing `epoch`.
    fn on_accusation(&mut self, epoch: u64, now: SimInstant);

    /// The failure detector started trusting `peer` again.
    fn on_trust(&mut self, peer: NodeId, now: SimInstant);

    /// The failure detector suspects `peer`; returns any accusations to send.
    fn on_suspect(&mut self, peer: NodeId, now: SimInstant) -> Vec<ElectorOutput>;

    /// `peer` left the group (or was removed from the membership).
    fn remove_peer(&mut self, peer: NodeId, now: SimInstant);
}

/// What an elector knows about one remote candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerState {
    /// Latest election payload received from the peer.
    pub payload: AlivePayload,
    /// When that payload was received.
    pub last_alive: SimInstant,
    /// Whether the failure detector currently trusts the peer.
    pub trusted: bool,
}

impl PeerState {
    /// The peer's rank according to its latest payload.
    pub fn rank(&self, id: NodeId) -> Rank {
        self.payload.rank_of(id)
    }
}

/// Shared bookkeeping of remote candidates: their latest payloads and
/// whether the failure detector currently trusts them.
#[derive(Debug, Clone, Default)]
pub struct PeerTable {
    peers: BTreeMap<NodeId, PeerState>,
}

impl PeerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an ALIVE payload from `peer` (implies the peer is trusted).
    pub fn record_alive(&mut self, peer: NodeId, payload: AlivePayload, now: SimInstant) {
        let entry = self.peers.entry(peer).or_insert(PeerState {
            payload,
            last_alive: now,
            trusted: true,
        });
        entry.payload = payload;
        entry.last_alive = now;
        entry.trusted = true;
    }

    /// Marks `peer` as trusted (without new payload information).
    pub fn mark_trusted(&mut self, peer: NodeId) {
        if let Some(state) = self.peers.get_mut(&peer) {
            state.trusted = true;
        }
    }

    /// Marks `peer` as suspected. Returns the epoch last advertised by the
    /// peer if it was previously trusted (the epoch an accusation should
    /// reference), or `None` if the peer was unknown or already suspected.
    pub fn mark_suspected(&mut self, peer: NodeId) -> Option<u64> {
        match self.peers.get_mut(&peer) {
            Some(state) if state.trusted => {
                state.trusted = false;
                Some(state.payload.epoch)
            }
            _ => None,
        }
    }

    /// Forgets everything about `peer`.
    pub fn remove(&mut self, peer: NodeId) {
        self.peers.remove(&peer);
    }

    /// The state recorded for `peer`, if any.
    pub fn get(&self, peer: NodeId) -> Option<&PeerState> {
        self.peers.get(&peer)
    }

    /// Iterates over the peers currently trusted, with their states.
    pub fn trusted(&self) -> impl Iterator<Item = (NodeId, &PeerState)> + '_ {
        self.peers
            .iter()
            .filter(|(_, s)| s.trusted)
            .map(|(&id, s)| (id, s))
    }

    /// The best (minimum) rank among trusted peers, if any.
    pub fn best_trusted_rank(&self) -> Option<Rank> {
        self.trusted().map(|(id, s)| s.rank(id)).min()
    }

    /// Number of peers known (trusted or not).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Returns true if no peers are known.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    fn payload(acc_secs: u64, epoch: u64) -> AlivePayload {
        AlivePayload {
            accusation_time: SimInstant::ZERO + SimDuration::from_secs(acc_secs),
            epoch,
            local_leader: None,
        }
    }

    #[test]
    fn record_alive_marks_trusted_and_updates_payload() {
        let mut table = PeerTable::new();
        assert!(table.is_empty());
        table.record_alive(NodeId(1), payload(0, 1), SimInstant::ZERO);
        assert_eq!(table.len(), 1);
        let state = table.get(NodeId(1)).unwrap();
        assert!(state.trusted);
        assert_eq!(state.payload.epoch, 1);

        table.record_alive(
            NodeId(1),
            payload(5, 2),
            SimInstant::ZERO + SimDuration::from_secs(1),
        );
        let state = table.get(NodeId(1)).unwrap();
        assert_eq!(state.payload.epoch, 2);
        assert_eq!(
            state.last_alive,
            SimInstant::ZERO + SimDuration::from_secs(1)
        );
    }

    #[test]
    fn mark_suspected_returns_epoch_once() {
        let mut table = PeerTable::new();
        table.record_alive(NodeId(1), payload(0, 7), SimInstant::ZERO);
        assert_eq!(table.mark_suspected(NodeId(1)), Some(7));
        // Already suspected: no second accusation epoch.
        assert_eq!(table.mark_suspected(NodeId(1)), None);
        // Unknown peer: nothing to accuse.
        assert_eq!(table.mark_suspected(NodeId(9)), None);
        // Trusting again re-arms the accusation.
        table.mark_trusted(NodeId(1));
        assert_eq!(table.mark_suspected(NodeId(1)), Some(7));
    }

    #[test]
    fn best_trusted_rank_ignores_suspected_peers() {
        let mut table = PeerTable::new();
        table.record_alive(NodeId(3), payload(0, 0), SimInstant::ZERO);
        table.record_alive(NodeId(5), payload(10, 0), SimInstant::ZERO);
        assert_eq!(
            table.best_trusted_rank(),
            Some(Rank::new(SimInstant::ZERO, NodeId(3)))
        );
        table.mark_suspected(NodeId(3));
        assert_eq!(
            table.best_trusted_rank(),
            Some(Rank::new(
                SimInstant::ZERO + SimDuration::from_secs(10),
                NodeId(5)
            ))
        );
        table.mark_suspected(NodeId(5));
        assert_eq!(table.best_trusted_rank(), None);
    }

    #[test]
    fn remove_forgets_peer() {
        let mut table = PeerTable::new();
        table.record_alive(NodeId(1), payload(0, 0), SimInstant::ZERO);
        table.remove(NodeId(1));
        assert!(table.get(NodeId(1)).is_none());
        assert_eq!(table.trusted().count(), 0);
    }
}
