//! The interface every leader-election algorithm implements, plus the peer
//! bookkeeping they all share.
//!
//! An elector instance lives at one service node, for one group. It is
//! driven entirely by the service layer: ALIVE payloads and accusations it
//! receives, trust/suspect notifications from the failure detector, and
//! membership updates from the Group Maintenance module. In return it
//! answers two questions — *who is the leader?* and *should this node be
//! sending ALIVE messages right now?* — and occasionally asks for an
//! accusation message to be sent.

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::types::{AlivePayload, ElectorKind, ElectorOutput, Rank};

/// Leader-election algorithm driven by the service layer.
///
/// Implementations: [`OmegaId`](crate::omega_id::OmegaId) (S1),
/// [`OmegaLc`](crate::omega_lc::OmegaLc) (S2) and
/// [`OmegaL`](crate::omega_l::OmegaL) (S3).
pub trait LeaderElector {
    /// Which algorithm this is.
    fn kind(&self) -> ElectorKind;

    /// This node's identifier.
    fn id(&self) -> NodeId;

    /// Whether this node is a candidate for the group's leadership.
    fn is_candidate(&self) -> bool;

    /// Whether this node should currently be sending ALIVE messages for the
    /// group. For Ωid and Ωlc this is simply "is a candidate"; for Ωl a
    /// candidate stops competing while it sees a better-ranked candidate.
    fn is_competing(&self) -> bool;

    /// This node's current accusation time.
    fn accusation_time(&self) -> SimInstant;

    /// This node's current accusation epoch.
    fn epoch(&self) -> u64;

    /// The current leader, if any.
    fn leader(&self) -> Option<NodeId>;

    /// The election payload to piggyback on the next outgoing ALIVE message.
    fn alive_payload(&self) -> AlivePayload;

    /// Handles an ALIVE payload received from `from` (which also implies the
    /// failure detector currently trusts `from`).
    fn on_alive(&mut self, from: NodeId, payload: AlivePayload, now: SimInstant);

    /// Handles an accusation against this node referencing `epoch`.
    fn on_accusation(&mut self, epoch: u64, now: SimInstant);

    /// The failure detector started trusting `peer` again.
    fn on_trust(&mut self, peer: NodeId, now: SimInstant);

    /// The failure detector suspects `peer`; returns any accusations to send.
    fn on_suspect(&mut self, peer: NodeId, now: SimInstant) -> Vec<ElectorOutput>;

    /// `peer` left the group (or was removed from the membership).
    fn remove_peer(&mut self, peer: NodeId, now: SimInstant);
}

/// What an elector knows about one remote candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerState {
    /// Latest election payload received from the peer.
    pub payload: AlivePayload,
    /// When that payload was received.
    pub last_alive: SimInstant,
    /// Whether the failure detector currently trusts the peer.
    pub trusted: bool,
}

impl PeerState {
    /// The peer's rank according to its latest payload.
    pub fn rank(&self, id: NodeId) -> Rank {
        self.payload.rank_of(id)
    }
}

/// Shared bookkeeping of remote candidates: their latest payloads and
/// whether the failure detector currently trusts them.
///
/// Stored as a vector sorted by peer id: the table is consulted on every
/// ALIVE payload a group applies (`record_alive` + a `best_trusted_rank`
/// scan), and group fan-out bounds its size, so binary search over
/// contiguous `Copy` entries beats a node-per-entry tree both on lookups
/// and on the scan.
#[derive(Debug, Clone, Default)]
pub struct PeerTable {
    peers: Vec<(NodeId, PeerState)>,
    /// Incrementally maintained minimum trusted rank. The electors consult
    /// [`PeerTable::best_trusted_rank`] on every applied ALIVE payload
    /// (often several times: re-evaluation plus leader queries), so the
    /// steady-state path must not rescan the table. Mutations either fold
    /// their change into the cached minimum or, when the current minimum
    /// may have *worsened* (the best peer re-ranked, got suspected or
    /// removed), mark it dirty for a lazy rescan.
    best: std::cell::Cell<BestRank>,
}

/// Cache state for [`PeerTable`]'s minimum trusted rank.
#[derive(Debug, Clone, Copy, Default)]
enum BestRank {
    /// Unknown: the next query rescans the table.
    #[default]
    Dirty,
    /// Known minimum trusted rank (`None` = no trusted peers).
    Known(Option<Rank>),
}

impl PeerTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn find(&self, peer: NodeId) -> Result<usize, usize> {
        self.peers.binary_search_by_key(&peer, |&(p, _)| p)
    }

    /// Folds a newly trusted rank into the cached minimum (a new contender
    /// can only improve or preserve the minimum, never worsen it).
    #[inline]
    fn cache_add(&self, rank: Rank) {
        if let BestRank::Known(best) = self.best.get() {
            let merged = best.map_or(rank, |b| b.min(rank));
            self.best.set(BestRank::Known(Some(merged)));
        }
    }

    /// Invalidates the cached minimum if `rank` might be it.
    #[inline]
    fn cache_drop(&self, rank: Rank) {
        if let BestRank::Known(Some(best)) = self.best.get() {
            if rank <= best {
                self.best.set(BestRank::Dirty);
            }
        }
    }

    /// Records an ALIVE payload from `peer` (implies the peer is trusted).
    pub fn record_alive(&mut self, peer: NodeId, payload: AlivePayload, now: SimInstant) {
        let state = PeerState {
            payload,
            last_alive: now,
            trusted: true,
        };
        let new_rank = state.rank(peer);
        match self.find(peer) {
            Ok(i) => {
                let old = self.peers[i].1;
                self.peers[i].1 = state;
                let old_rank = old.rank(peer);
                if old.trusted && new_rank != old_rank {
                    // The peer re-ranked: if it held the minimum, the
                    // minimum may have worsened.
                    self.cache_drop(old_rank);
                }
                self.cache_add(new_rank);
            }
            Err(i) => {
                self.peers.insert(i, (peer, state));
                self.cache_add(new_rank);
            }
        }
    }

    /// Marks `peer` as trusted (without new payload information).
    pub fn mark_trusted(&mut self, peer: NodeId) {
        if let Ok(i) = self.find(peer) {
            self.peers[i].1.trusted = true;
            self.cache_add(self.peers[i].1.rank(peer));
        }
    }

    /// Marks `peer` as suspected. Returns the epoch last advertised by the
    /// peer if it was previously trusted (the epoch an accusation should
    /// reference), or `None` if the peer was unknown or already suspected.
    pub fn mark_suspected(&mut self, peer: NodeId) -> Option<u64> {
        match self.find(peer) {
            Ok(i) if self.peers[i].1.trusted => {
                self.peers[i].1.trusted = false;
                self.cache_drop(self.peers[i].1.rank(peer));
                Some(self.peers[i].1.payload.epoch)
            }
            _ => None,
        }
    }

    /// Forgets everything about `peer`.
    pub fn remove(&mut self, peer: NodeId) {
        if let Ok(i) = self.find(peer) {
            let (_, state) = self.peers.remove(i);
            if state.trusted {
                self.cache_drop(state.rank(peer));
            }
        }
    }

    /// The state recorded for `peer`, if any.
    pub fn get(&self, peer: NodeId) -> Option<&PeerState> {
        self.find(peer).ok().map(|i| &self.peers[i].1)
    }

    /// Iterates over the peers currently trusted, with their states, in
    /// ascending peer-id order.
    pub fn trusted(&self) -> impl Iterator<Item = (NodeId, &PeerState)> + '_ {
        self.peers
            .iter()
            .filter(|(_, s)| s.trusted)
            .map(|(id, s)| (*id, s))
    }

    /// The best (minimum) rank among trusted peers, if any.
    ///
    /// O(1) while the incremental cache is clean; a mutation that may have
    /// worsened the minimum triggers one O(peers) rescan here.
    pub fn best_trusted_rank(&self) -> Option<Rank> {
        match self.best.get() {
            BestRank::Known(best) => best,
            BestRank::Dirty => {
                let best = self.trusted().map(|(id, s)| s.rank(id)).min();
                self.best.set(BestRank::Known(best));
                best
            }
        }
    }

    /// Number of peers known (trusted or not).
    pub fn len(&self) -> usize {
        self.peers.len()
    }

    /// Returns true if no peers are known.
    pub fn is_empty(&self) -> bool {
        self.peers.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    fn payload(acc_secs: u64, epoch: u64) -> AlivePayload {
        AlivePayload {
            accusation_time: SimInstant::ZERO + SimDuration::from_secs(acc_secs),
            epoch,
            local_leader: None,
        }
    }

    #[test]
    fn record_alive_marks_trusted_and_updates_payload() {
        let mut table = PeerTable::new();
        assert!(table.is_empty());
        table.record_alive(NodeId(1), payload(0, 1), SimInstant::ZERO);
        assert_eq!(table.len(), 1);
        let state = table.get(NodeId(1)).unwrap();
        assert!(state.trusted);
        assert_eq!(state.payload.epoch, 1);

        table.record_alive(
            NodeId(1),
            payload(5, 2),
            SimInstant::ZERO + SimDuration::from_secs(1),
        );
        let state = table.get(NodeId(1)).unwrap();
        assert_eq!(state.payload.epoch, 2);
        assert_eq!(
            state.last_alive,
            SimInstant::ZERO + SimDuration::from_secs(1)
        );
    }

    #[test]
    fn mark_suspected_returns_epoch_once() {
        let mut table = PeerTable::new();
        table.record_alive(NodeId(1), payload(0, 7), SimInstant::ZERO);
        assert_eq!(table.mark_suspected(NodeId(1)), Some(7));
        // Already suspected: no second accusation epoch.
        assert_eq!(table.mark_suspected(NodeId(1)), None);
        // Unknown peer: nothing to accuse.
        assert_eq!(table.mark_suspected(NodeId(9)), None);
        // Trusting again re-arms the accusation.
        table.mark_trusted(NodeId(1));
        assert_eq!(table.mark_suspected(NodeId(1)), Some(7));
    }

    #[test]
    fn best_trusted_rank_ignores_suspected_peers() {
        let mut table = PeerTable::new();
        table.record_alive(NodeId(3), payload(0, 0), SimInstant::ZERO);
        table.record_alive(NodeId(5), payload(10, 0), SimInstant::ZERO);
        assert_eq!(
            table.best_trusted_rank(),
            Some(Rank::new(SimInstant::ZERO, NodeId(3)))
        );
        table.mark_suspected(NodeId(3));
        assert_eq!(
            table.best_trusted_rank(),
            Some(Rank::new(
                SimInstant::ZERO + SimDuration::from_secs(10),
                NodeId(5)
            ))
        );
        table.mark_suspected(NodeId(5));
        assert_eq!(table.best_trusted_rank(), None);
    }

    #[test]
    fn remove_forgets_peer() {
        let mut table = PeerTable::new();
        table.record_alive(NodeId(1), payload(0, 0), SimInstant::ZERO);
        table.remove(NodeId(1));
        assert!(table.get(NodeId(1)).is_none());
        assert_eq!(table.trusted().count(), 0);
    }

    /// The incremental best-rank cache must agree with a full rescan after
    /// every kind of mutation, including the ones that can only *worsen*
    /// the minimum (re-rank, suspicion, removal of the best peer).
    #[test]
    fn best_rank_cache_matches_rescan_across_mutations() {
        let mut table = PeerTable::new();
        let rescan = |t: &PeerTable| t.trusted().map(|(id, s)| s.rank(id)).min();
        let now = SimInstant::ZERO;

        table.record_alive(NodeId(3), payload(5, 0), now);
        table.record_alive(NodeId(1), payload(9, 0), now);
        assert_eq!(table.best_trusted_rank(), rescan(&table));

        // A better newcomer folds into the cached minimum.
        table.record_alive(NodeId(2), payload(1, 0), now);
        assert_eq!(table.best_trusted_rank(), rescan(&table));

        // The best peer re-ranks itself worse: the minimum must move back
        // to another peer, not stay pinned at the stale cached value.
        table.record_alive(NodeId(2), payload(20, 1), now);
        assert_eq!(table.best_trusted_rank(), rescan(&table));

        // Suspecting the current best drops it from the minimum.
        let best_id = table.best_trusted_rank().unwrap().id;
        table.mark_suspected(best_id);
        assert_eq!(table.best_trusted_rank(), rescan(&table));

        // Re-trusting it restores it.
        table.mark_trusted(best_id);
        assert_eq!(table.best_trusted_rank(), rescan(&table));

        // Removing the best peer recomputes from the survivors.
        let best_id = table.best_trusted_rank().unwrap().id;
        table.remove(best_id);
        assert_eq!(table.best_trusted_rank(), rescan(&table));

        // Steady state: repeated identical payloads keep cache and rescan
        // in agreement without drift.
        for _ in 0..3 {
            table.record_alive(NodeId(3), payload(5, 0), now);
            assert_eq!(table.best_trusted_rank(), rescan(&table));
        }
    }
}
