//! Property tests for the online estimators the tuner's safety rests on.
//!
//! The adaptive subsystem derives failure-detection timeouts from these
//! estimators, so an out-of-range quantile or a NaN-poisoned mean is not a
//! cosmetic bug — it mis-configures the detector. Each property is checked
//! over many SimRng-driven random inputs (the workspace's dependency-free
//! stand-in for proptest), covering what the unit tests' happy paths do
//! not: arbitrary magnitudes, mixed signs, NaN/infinity injection and
//! adversarial window churn.

use sle_adaptive::ewma::{Ewma, EwmaVar};
use sle_adaptive::quantile::WindowedQuantile;
use sle_sim::rng::SimRng;

/// Draws a "reasonable but arbitrary" magnitude: signs, huge and tiny
/// scales, but finite (overflow behaviour with finite inputs is part of
/// what is under test).
fn arbitrary_magnitude(rng: &mut SimRng) -> f64 {
    let exponent = rng.uniform_range(-30.0, 30.0);
    let mantissa = rng.uniform_range(-1.0, 1.0);
    mantissa * 10f64.powf(exponent)
}

#[test]
fn ewma_stays_within_the_observed_range() {
    let mut rng = SimRng::seed_from(0xE3A1);
    for case in 0..200 {
        let alpha = rng.uniform_range(0.01, 1.0);
        let mut ewma = Ewma::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..rng.uniform_usize(200) + 1 {
            let x = arbitrary_magnitude(&mut rng);
            lo = lo.min(x);
            hi = hi.max(x);
            ewma.observe(x);
            let value = ewma.value().expect("observed at least once");
            assert!(
                value >= lo && value <= hi,
                "case {case}: EWMA {value} outside [{lo}, {hi}]"
            );
        }
    }
}

#[test]
fn ewma_is_monotone_in_the_updates() {
    // Feeding a value above the current estimate must not decrease it, and
    // vice versa — the fixed-point property timeout growth relies on.
    let mut rng = SimRng::seed_from(0xE3A2);
    for _ in 0..200 {
        let alpha = rng.uniform_range(0.01, 1.0);
        let mut ewma = Ewma::new(alpha);
        ewma.observe(arbitrary_magnitude(&mut rng));
        for _ in 0..100 {
            let before = ewma.value().unwrap();
            let x = arbitrary_magnitude(&mut rng);
            ewma.observe(x);
            let after = ewma.value().unwrap();
            if x >= before {
                assert!(after >= before, "upward sample decreased the EWMA");
            } else {
                assert!(after <= before, "downward sample increased the EWMA");
            }
        }
    }
}

#[test]
fn ewma_ignores_non_finite_observations() {
    let mut rng = SimRng::seed_from(0xE3A3);
    let mut ewma = Ewma::new(0.3);
    let mut reference = Ewma::new(0.3);
    for _ in 0..1000 {
        let x = rng.uniform_range(-100.0, 100.0);
        ewma.observe(x);
        reference.observe(x);
        // Poison attempts interleaved with every real sample.
        match rng.uniform_usize(3) {
            0 => ewma.observe(f64::NAN),
            1 => ewma.observe(f64::INFINITY),
            _ => ewma.observe(f64::NEG_INFINITY),
        }
        assert_eq!(
            ewma.value(),
            reference.value(),
            "a non-finite observation changed the estimate"
        );
    }
    let mut fresh = Ewma::new(0.5);
    fresh.observe(f64::NAN);
    assert_eq!(fresh.value(), None, "NaN must not initialise the average");
}

#[test]
fn ewma_var_mean_in_range_and_variance_finite_nonnegative() {
    let mut rng = SimRng::seed_from(0xE3A4);
    for case in 0..200 {
        let alpha = rng.uniform_range(0.01, 1.0);
        let mut est = EwmaVar::new(alpha);
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for _ in 0..rng.uniform_usize(300) + 1 {
            // Bounded to ±1e150 so squared deviations stay below f64::MAX:
            // the documented overflow-resistance envelope.
            let x = arbitrary_magnitude(&mut rng) * 1e120;
            lo = lo.min(x);
            hi = hi.max(x);
            est.observe(x);
            let mean = est.mean().expect("observed at least once");
            let std_dev = est.std_dev().expect("observed at least once");
            assert!(
                mean >= lo && mean <= hi,
                "case {case}: mean {mean} outside [{lo}, {hi}]"
            );
            assert!(
                std_dev.is_finite() && std_dev >= 0.0,
                "case {case}: std dev {std_dev}"
            );
        }
    }
}

#[test]
fn ewma_var_ignores_non_finite_observations() {
    let mut rng = SimRng::seed_from(0xE3A5);
    let mut est = EwmaVar::new(0.2);
    let mut reference = EwmaVar::new(0.2);
    for _ in 0..500 {
        let x = rng.uniform_range(0.0, 1.0);
        est.observe(x);
        reference.observe(x);
        est.observe(f64::NAN);
        est.observe(f64::INFINITY);
        assert_eq!(est.mean(), reference.mean());
        assert_eq!(est.std_dev(), reference.std_dev());
        assert_eq!(est.samples(), reference.samples());
    }
}

#[test]
fn windowed_quantile_is_within_range_monotone_and_bounded() {
    let mut rng = SimRng::seed_from(0xE3A6);
    for case in 0..100 {
        let capacity = rng.uniform_usize(64) + 1;
        let mut quantile = WindowedQuantile::new(capacity);
        let total = rng.uniform_usize(300) + 1;
        let mut window: Vec<f64> = Vec::new();
        for _ in 0..total {
            let x = arbitrary_magnitude(&mut rng);
            quantile.record(x);
            window.push(x);
            if window.len() > capacity {
                window.remove(0);
            }
            assert!(quantile.len() <= capacity, "case {case}: window overflow");
            assert_eq!(quantile.len(), window.len());

            let lo = window.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = window.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            // Every quantile lies within the observed window...
            let mut previous = f64::NEG_INFINITY;
            for step in 0..=10 {
                let q = step as f64 / 10.0;
                let value = quantile.quantile(q).expect("non-empty window");
                assert!(
                    value >= lo && value <= hi,
                    "case {case}: q{q} = {value} outside [{lo}, {hi}]"
                );
                // ...and quantiles are monotone in q.
                assert!(
                    value >= previous,
                    "case {case}: quantile not monotone at q{q}"
                );
                previous = value;
            }
            assert_eq!(quantile.quantile(0.0), Some(lo));
            assert_eq!(quantile.quantile(1.0), Some(hi));
            assert_eq!(quantile.max(), Some(hi));
        }
    }
}

#[test]
fn windowed_quantile_updates_track_eviction_exactly() {
    // The window is an exact sliding window: after `capacity` further
    // records, nothing of the old regime may survive, whatever the values.
    let mut rng = SimRng::seed_from(0xE3A7);
    for _ in 0..50 {
        let capacity = rng.uniform_usize(32) + 1;
        let mut quantile = WindowedQuantile::new(capacity);
        for _ in 0..rng.uniform_usize(100) {
            quantile.record(rng.uniform_range(1e6, 2e6));
        }
        for _ in 0..capacity {
            quantile.record(rng.uniform_range(0.0, 1.0));
        }
        let max = quantile.max().unwrap();
        assert!(max <= 1.0, "old regime survived eviction: max {max}");
    }
}

#[test]
fn windowed_quantile_survives_non_finite_floods() {
    let mut rng = SimRng::seed_from(0xE3A8);
    let mut quantile = WindowedQuantile::new(16);
    for _ in 0..200 {
        quantile.record(f64::NAN);
        quantile.record(f64::INFINITY);
        quantile.record(f64::NEG_INFINITY);
        let x = rng.uniform_range(10.0, 20.0);
        quantile.record(x);
        let q99 = quantile.quantile(0.99).unwrap();
        assert!(q99.is_finite());
        assert!((10.0..=20.0).contains(&q99));
    }
    assert_eq!(quantile.len(), 16);
}
