//! Sliding-window quantile estimation.
//!
//! The tuner sets the failure-detector timeout shift δ from a high quantile
//! of the recently observed delays (plus a safety margin), so the estimator
//! must (a) forget old regimes quickly — hence a bounded window — and
//! (b) be exact over that window, since the far tail is precisely what a
//! timeout must cover and an approximate sketch could under-estimate it.

use std::collections::VecDeque;

/// An exact quantile estimator over a sliding window of the last `capacity`
/// observations.
///
/// ```
/// use sle_adaptive::quantile::WindowedQuantile;
///
/// let mut q = WindowedQuantile::new(100);
/// for i in 1..=100u32 {
///     q.record(i as f64);
/// }
/// assert_eq!(q.quantile(0.5), Some(50.0));
/// assert_eq!(q.quantile(0.99), Some(99.0));
/// assert_eq!(q.quantile(1.0), Some(100.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WindowedQuantile {
    capacity: usize,
    window: VecDeque<f64>,
}

impl WindowedQuantile {
    /// Creates an estimator over the last `capacity` observations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "quantile window capacity must be positive");
        WindowedQuantile {
            capacity,
            window: VecDeque::with_capacity(capacity),
        }
    }

    /// The window capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of observations currently in the window.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// Returns true if no observation has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Records an observation, evicting the oldest one if the window is full.
    /// Non-finite observations are ignored.
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(x);
    }

    /// The `q`-quantile (lower nearest-rank) of the current window, or `None`
    /// if the window is empty. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.window.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("window holds only finite values"));
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    /// The maximum of the current window, or `None` if it is empty.
    pub fn max(&self) -> Option<f64> {
        self.window
            .iter()
            .copied()
            .fold(None, |acc, x| Some(acc.map_or(x, |m: f64| m.max(x))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = WindowedQuantile::new(0);
    }

    #[test]
    fn empty_window_has_no_quantiles() {
        let q = WindowedQuantile::new(8);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.quantile(0.5), None);
        assert_eq!(q.max(), None);
        assert_eq!(q.capacity(), 8);
    }

    #[test]
    fn quantiles_of_a_known_distribution() {
        let mut q = WindowedQuantile::new(10);
        for x in [5.0, 1.0, 9.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0, 10.0] {
            q.record(x);
        }
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(0.1), Some(1.0));
        assert_eq!(q.quantile(0.5), Some(5.0));
        assert_eq!(q.quantile(0.9), Some(9.0));
        assert_eq!(q.quantile(1.0), Some(10.0));
        assert_eq!(q.max(), Some(10.0));
    }

    #[test]
    fn window_evicts_oldest_and_forgets_old_regime() {
        let mut q = WindowedQuantile::new(50);
        // An old regime of large delays...
        for _ in 0..50 {
            q.record(100.0);
        }
        // ...completely displaced by the new regime.
        for _ in 0..50 {
            q.record(1.0);
        }
        assert_eq!(q.quantile(0.99), Some(1.0));
        assert_eq!(q.len(), 50);
    }

    #[test]
    fn convergence_on_a_synthetic_delay_stream() {
        // 95% of delays at 10 ms, 5% spikes at 50 ms: the 0.99 quantile must
        // report the spike level, the median the base level.
        let mut q = WindowedQuantile::new(200);
        for i in 0..200 {
            q.record(if i % 20 == 0 { 0.050 } else { 0.010 });
        }
        assert_eq!(q.quantile(0.5), Some(0.010));
        assert_eq!(q.quantile(0.99), Some(0.050));
    }

    #[test]
    fn non_finite_observations_are_ignored() {
        let mut q = WindowedQuantile::new(4);
        q.record(f64::NAN);
        q.record(f64::INFINITY);
        assert!(q.is_empty());
        q.record(2.0);
        assert_eq!(q.quantile(0.5), Some(2.0));
    }
}
