//! Exponentially weighted moving averages.
//!
//! The online measurement pipeline needs estimators that (a) track a drifting
//! signal with bounded memory and (b) converge quickly after a regime shift.
//! EWMAs provide both: the smoothing factor α trades convergence speed
//! against noise rejection, and the paired mean/variance estimator follows
//! the classic exponentially weighted variance recurrence (as used by RFC
//! 6298-style RTT estimation).

/// An exponentially weighted moving average of a scalar signal.
///
/// ```
/// use sle_adaptive::ewma::Ewma;
///
/// let mut ewma = Ewma::new(0.5);
/// assert_eq!(ewma.value(), None);
/// ewma.observe(10.0);
/// ewma.observe(20.0);
/// assert_eq!(ewma.value(), Some(15.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ewma {
    alpha: f64,
    value: Option<f64>,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not within `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must lie in (0, 1]"
        );
        Ewma { alpha, value: None }
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feeds one observation. The first observation initialises the
    /// average. Non-finite observations are ignored: a single NaN or
    /// infinity from a degenerate timestamp must not poison the estimate
    /// the failure detector's timeout is derived from.
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        self.value = Some(match self.value {
            None => x,
            Some(v) => v + self.alpha * (x - v),
        });
    }

    /// The current average, or `None` before any observation.
    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

/// An exponentially weighted estimator of both the mean and the variance of
/// a signal.
///
/// The recurrence (`diff = x − mean`, `mean += α·diff`,
/// `var = (1 − α)·(var + α·diff²)`) is the standard exponentially weighted
/// variance update; it converges to the true variance for a stationary
/// signal and tracks it after shifts.
///
/// ```
/// use sle_adaptive::ewma::EwmaVar;
///
/// let mut est = EwmaVar::new(0.2);
/// for i in 0..200 {
///     est.observe(if i % 2 == 0 { 10.0 } else { 30.0 });
/// }
/// let mean = est.mean().unwrap();
/// assert!((mean - 20.0).abs() < 3.0);
/// assert!(est.std_dev().unwrap() > 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EwmaVar {
    alpha: f64,
    mean: f64,
    var: f64,
    samples: u64,
}

impl EwmaVar {
    /// Creates an estimator with smoothing factor `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not within `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "EWMA smoothing factor must lie in (0, 1]"
        );
        EwmaVar {
            alpha,
            mean: 0.0,
            var: 0.0,
            samples: 0,
        }
    }

    /// Feeds one observation. Non-finite observations are ignored (see
    /// [`Ewma::observe`]).
    pub fn observe(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.samples == 0 {
            self.mean = x;
            self.var = 0.0;
        } else {
            let diff = x - self.mean;
            let incr = self.alpha * diff;
            self.mean += incr;
            self.var = (1.0 - self.alpha) * (self.var + diff * incr);
        }
        self.samples += 1;
    }

    /// The current mean, or `None` before any observation.
    pub fn mean(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.mean)
    }

    /// The current standard deviation, or `None` before any observation.
    pub fn std_dev(&self) -> Option<f64> {
        (self.samples > 0).then_some(self.var.max(0.0).sqrt())
    }

    /// Number of observations fed so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_a_constant_signal() {
        let mut ewma = Ewma::new(0.1);
        for _ in 0..100 {
            ewma.observe(42.0);
        }
        assert!((ewma.value().unwrap() - 42.0).abs() < 1e-9);
        assert_eq!(ewma.alpha(), 0.1);
    }

    #[test]
    fn ewma_tracks_a_step_change() {
        let mut ewma = Ewma::new(0.2);
        for _ in 0..50 {
            ewma.observe(100.0);
        }
        for _ in 0..50 {
            ewma.observe(10.0);
        }
        // After 50 samples at alpha 0.2 the old level has decayed to
        // 100 * 0.8^50 ~ 0.001: the estimate must sit at the new level.
        assert!((ewma.value().unwrap() - 10.0).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_rejects_zero_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn ewma_var_rejects_large_alpha() {
        let _ = EwmaVar::new(1.5);
    }

    #[test]
    fn ewma_var_on_constant_signal_has_zero_variance() {
        let mut est = EwmaVar::new(0.3);
        assert_eq!(est.mean(), None);
        assert_eq!(est.std_dev(), None);
        for _ in 0..100 {
            est.observe(7.0);
        }
        assert!((est.mean().unwrap() - 7.0).abs() < 1e-12);
        assert!(est.std_dev().unwrap() < 1e-9);
        assert_eq!(est.samples(), 100);
    }

    #[test]
    fn ewma_var_estimates_alternating_signal() {
        let mut est = EwmaVar::new(0.1);
        for i in 0..500 {
            est.observe(if i % 2 == 0 { 0.0 } else { 20.0 });
        }
        // True mean 10, true std dev 10.
        assert!((est.mean().unwrap() - 10.0).abs() < 2.0);
        let sd = est.std_dev().unwrap();
        assert!((5.0..15.0).contains(&sd), "std dev {sd}");
    }

    #[test]
    fn ewma_var_mean_tracks_latency_drop() {
        let mut est = EwmaVar::new(0.2);
        for _ in 0..100 {
            est.observe(0.050);
        }
        for _ in 0..100 {
            est.observe(0.005);
        }
        assert!((est.mean().unwrap() - 0.005).abs() < 0.001);
    }
}
