//! Dynamic re-derivation of failure-detection and election timing.
//!
//! The paper's service configures its Chen et al. failure detector once per
//! join, from the application QoS `(T_D^U, T_MR^L, P_A^L)` and a
//! conservative link prior: the detection bound `T_D^U` is treated as a
//! *target* and η + δ is pinned to it. On a link that is faster and cleaner
//! than the prior this wastes detection latency — the group takes the full
//! `T_D^U` to notice a crashed leader even though the measured network would
//! support a far tighter timeout at the same false-suspicion rate.
//!
//! An [`AdaptiveTuner`] closes that loop. It consumes the passive per-link
//! measurements of [`LinkSampler`] and
//! periodically re-derives, per monitored peer:
//!
//! * the heartbeat interval η and timeout shift δ (as
//!   [`FdParams`]), choosing the **smallest** worst-case detection time
//!   η + δ ≤ `T_D^U` whose predicted false-suspicion rate still honours the
//!   application's mistake-recurrence bound — the acceptance test is the
//!   exact same [`params_meet_qos`] the static configurator applies, but fed
//!   with live measurements instead of the prior;
//! * a safety margin: δ is floored at a high quantile of the measured delay
//!   plus `safety_margin` standard deviations of jitter, so a regime shift
//!   towards a slower network immediately pushes the timeout back out;
//! * the election-layer grace period (the time a freshly joined candidate
//!   waits before claiming leadership, and the horizon accusations are
//!   judged against), kept at twice the derived detection bound exactly as
//!   the static service keeps it at twice `T_D^U`.
//!
//! The [`Tuner`] trait keeps all of this opt-in: the default
//! [`StaticTuner`] recommends nothing, leaving the per-join static
//! configuration untouched.

use std::collections::BTreeMap;

use sle_fd::config::params_meet_qos;
use sle_fd::{FdConfigurator, FdParams, QosSpec};
use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::sampler::LinkSampler;

/// Knobs of the adaptive tuner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunerConfig {
    /// How often the parameters are re-derived.
    pub period: SimDuration,
    /// Heartbeats that must be observed on a link before its measurements
    /// replace the static configuration.
    pub min_samples: u64,
    /// Lower bound on the derived worst-case detection time η + δ. Guards
    /// against over-fitting a briefly quiet network with a hair-trigger
    /// timeout.
    pub floor: SimDuration,
    /// Smallest heartbeat interval the tuner will ask a peer for.
    pub min_interval: SimDuration,
    /// η as a fraction of the derived detection bound (mirrors the static
    /// configurator's cap fraction).
    pub interval_fraction: f64,
    /// δ is floored at `delay quantile + safety_margin × jitter`.
    pub safety_margin: f64,
    /// The delay quantile used for the δ floor.
    pub quantile: f64,
    /// EWMA smoothing factor of the delay/loss estimators.
    pub ewma_alpha: f64,
    /// Sliding-window size of the quantile estimator.
    pub window: usize,
    /// Candidate detection bounds examined between the floor and `T_D^U`.
    pub search_steps: usize,
    /// Relative change of the detection bound below which the previous
    /// recommendation is kept (hysteresis against parameter flapping).
    pub hysteresis: f64,
}

impl Default for TunerConfig {
    fn default() -> Self {
        TunerConfig {
            period: SimDuration::from_secs(1),
            min_samples: 16,
            floor: SimDuration::from_millis(100),
            min_interval: SimDuration::from_millis(5),
            interval_fraction: 0.25,
            safety_margin: 4.0,
            quantile: 0.99,
            ewma_alpha: 0.1,
            window: 64,
            search_steps: 64,
            hysteresis: 0.1,
        }
    }
}

/// Whether (and how) a group's failure detection is tuned at run time.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TuningPolicy {
    /// The paper's behaviour: parameters derived once per join from the QoS
    /// and a conservative prior, never revisited by the tuner.
    #[default]
    Static,
    /// Continuous re-derivation from passive measurements.
    Adaptive(TunerConfig),
}

impl TuningPolicy {
    /// Adaptive tuning with the default configuration.
    pub fn adaptive() -> Self {
        TuningPolicy::Adaptive(TunerConfig::default())
    }
}

/// What the tuner currently recommends for one monitored peer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recommendation {
    /// The failure-detector operating point (η, δ).
    pub params: FdParams,
}

impl Recommendation {
    /// The derived worst-case detection time η + δ.
    pub fn detection_bound(&self) -> SimDuration {
        self.params.worst_case_detection()
    }

    /// The recommended election grace period (self-election delay of a
    /// freshly joined candidate): twice the detection bound, mirroring the
    /// static service's `2 × T_D^U`.
    pub fn election_grace(&self) -> SimDuration {
        self.detection_bound() * 2
    }
}

/// A source of failure-detection parameter recommendations.
///
/// Implementations are sans-io: they are fed receive timestamps by the
/// service and queried on the service's timers.
pub trait Tuner {
    /// Whether this tuner ever recommends anything.
    fn is_adaptive(&self) -> bool;

    /// The cadence at which the owner should call
    /// [`recommend`](Tuner::recommend), or `None` for a static tuner.
    fn period(&self) -> Option<SimDuration>;

    /// Feeds the receive timestamp of heartbeat `seq` from `peer`.
    fn observe(&mut self, peer: NodeId, seq: u64, sent_at: SimInstant, received_at: SimInstant);

    /// Re-derives (if due) and returns the current recommendation for
    /// `peer`, or `None` while measurements are insufficient (or for a
    /// static tuner, always).
    fn recommend(&mut self, peer: NodeId, qos: &QosSpec, now: SimInstant)
        -> Option<Recommendation>;

    /// Discards all measurement state about `peer` (it left, or restarted
    /// with a new incarnation).
    fn forget_peer(&mut self, peer: NodeId);
}

/// The default tuner: keeps the per-join static configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StaticTuner;

impl Tuner for StaticTuner {
    fn is_adaptive(&self) -> bool {
        false
    }

    fn period(&self) -> Option<SimDuration> {
        None
    }

    fn observe(&mut self, _: NodeId, _: u64, _: SimInstant, _: SimInstant) {}

    fn recommend(&mut self, _: NodeId, _: &QosSpec, _: SimInstant) -> Option<Recommendation> {
        None
    }

    fn forget_peer(&mut self, _: NodeId) {}
}

#[derive(Debug, Clone, PartialEq)]
struct PeerTuning {
    sampler: LinkSampler,
    current: Option<Recommendation>,
}

/// Continuously re-derives FD parameters from passive link measurements.
///
/// ```
/// use sle_adaptive::tuner::{AdaptiveTuner, Tuner, TunerConfig};
/// use sle_fd::QosSpec;
/// use sle_sim::actor::NodeId;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let mut tuner = AdaptiveTuner::new(TunerConfig::default());
/// let qos = QosSpec::paper_default();
/// let mut now = SimInstant::ZERO;
/// for seq in 0..100u64 {
///     now = now + SimDuration::from_millis(100);
///     // A fast, clean link: 1 ms delay, no loss.
///     tuner.observe(NodeId(1), seq, now - SimDuration::from_millis(1), now);
/// }
/// let rec = tuner.recommend(NodeId(1), &qos, now).unwrap();
/// // The derived bound sits at the configured floor, far below T_D^U = 1 s.
/// assert!(rec.detection_bound() < SimDuration::from_millis(200));
/// assert!(rec.detection_bound() >= TunerConfig::default().floor);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveTuner {
    config: TunerConfig,
    peers: BTreeMap<NodeId, PeerTuning>,
}

impl AdaptiveTuner {
    /// Creates a tuner with the given configuration.
    pub fn new(config: TunerConfig) -> Self {
        AdaptiveTuner {
            config,
            peers: BTreeMap::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> TunerConfig {
        self.config
    }

    /// Number of peers with measurement state.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Derives the smallest acceptable detection bound for the measured link,
    /// or `None` if the measurements do not (yet) justify deviating from the
    /// static configuration.
    fn derive(&self, sampler: &LinkSampler, qos: &QosSpec) -> Option<Recommendation> {
        let measurement = sampler.measurement()?;
        if measurement.samples < self.config.min_samples {
            return None;
        }
        let quality = measurement.to_link_quality();
        let t_d = qos.detection_time();
        let fraction = self.config.interval_fraction.clamp(0.05, 0.8);

        // The timeout shift must cover the observed delay tail plus margin.
        let delta_min = measurement
            .delay_quantile
            .saturating_add(measurement.delay_std_dev.mul_f64(self.config.safety_margin));
        let floor = self
            .config
            .floor
            .max(delta_min.mul_f64(1.0 / (1.0 - fraction)))
            .min(t_d);
        let steps = self.config.search_steps.max(2);

        for i in 0..steps {
            // Walk from the floor up towards T_D^U, keeping the smallest
            // (fastest-detecting) bound that still honours the QoS.
            let fraction_of_span = i as f64 / (steps - 1) as f64;
            let total = floor + (t_d.saturating_sub(floor)).mul_f64(fraction_of_span);
            let interval = total.mul_f64(fraction).max(self.config.min_interval);
            if interval >= total {
                continue;
            }
            let shift = total - interval;
            if shift < delta_min {
                continue;
            }
            // The acceptance test is shared with the static configurator
            // (sle_fd::config::params_meet_qos): predicted mistakes must
            // recur no more often than T_MR^L and last no longer than T_M^U.
            if !params_meet_qos(&quality, interval, shift, qos) {
                continue;
            }
            return Some(Recommendation {
                params: FdParams { interval, shift },
            });
        }
        // Even T_D^U cannot be met with the measured link. Recommend what
        // the static configurator would choose for these measurements rather
        // than nothing: a previously applied tight recommendation must not
        // linger on a link that has degraded past it.
        let params = FdConfigurator::default().compute(qos, &quality);
        Some(Recommendation { params })
    }
}

impl Tuner for AdaptiveTuner {
    fn is_adaptive(&self) -> bool {
        true
    }

    fn period(&self) -> Option<SimDuration> {
        Some(self.config.period)
    }

    fn observe(&mut self, peer: NodeId, seq: u64, sent_at: SimInstant, received_at: SimInstant) {
        let config = &self.config;
        let entry = self.peers.entry(peer).or_insert_with(|| PeerTuning {
            sampler: LinkSampler::new(config.ewma_alpha, config.window, config.quantile),
            current: None,
        });
        entry.sampler.record(seq, sent_at, received_at);
    }

    fn recommend(
        &mut self,
        peer: NodeId,
        qos: &QosSpec,
        _now: SimInstant,
    ) -> Option<Recommendation> {
        let hysteresis = self.config.hysteresis;
        let derived = self.derive(&self.peers.get(&peer)?.sampler, qos)?;
        let entry = self.peers.get_mut(&peer).expect("peer state just read");
        // Hysteresis compares the full operating point, not just the bound:
        // in the fallback regime the bound is pinned at T_D^U while the
        // (η, δ) split keeps tracking the degrading link, and those updates
        // must go through.
        let within = |old: SimDuration, new: SimDuration| {
            let old = old.as_secs_f64();
            old > 0.0 && ((new.as_secs_f64() - old) / old).abs() < hysteresis
        };
        let keep_current = entry.current.is_some_and(|current| {
            within(current.params.interval, derived.params.interval)
                && within(current.params.shift, derived.params.shift)
        });
        if !keep_current {
            entry.current = Some(derived);
        }
        entry.current
    }

    fn forget_peer(&mut self, peer: NodeId) {
        self.peers.remove(&peer);
    }
}

/// Runtime-selectable tuner, mirroring the `AnyElector` pattern: concrete
/// enough for the service's group state to stay `Clone` + `Debug`, while the
/// [`Tuner`] trait remains the extension point for new policies.
#[derive(Debug, Clone, PartialEq)]
pub enum AnyTuner {
    /// No tuning (the default).
    Static(StaticTuner),
    /// Measurement-driven tuning.
    Adaptive(AdaptiveTuner),
}

impl AnyTuner {
    /// Builds the tuner selected by `policy`.
    pub fn new(policy: TuningPolicy) -> Self {
        match policy {
            TuningPolicy::Static => AnyTuner::Static(StaticTuner),
            TuningPolicy::Adaptive(config) => AnyTuner::Adaptive(AdaptiveTuner::new(config)),
        }
    }
}

impl Default for AnyTuner {
    fn default() -> Self {
        AnyTuner::Static(StaticTuner)
    }
}

impl Tuner for AnyTuner {
    fn is_adaptive(&self) -> bool {
        match self {
            AnyTuner::Static(t) => t.is_adaptive(),
            AnyTuner::Adaptive(t) => t.is_adaptive(),
        }
    }

    fn period(&self) -> Option<SimDuration> {
        match self {
            AnyTuner::Static(t) => t.period(),
            AnyTuner::Adaptive(t) => t.period(),
        }
    }

    fn observe(&mut self, peer: NodeId, seq: u64, sent_at: SimInstant, received_at: SimInstant) {
        match self {
            AnyTuner::Static(t) => t.observe(peer, seq, sent_at, received_at),
            AnyTuner::Adaptive(t) => t.observe(peer, seq, sent_at, received_at),
        }
    }

    fn recommend(
        &mut self,
        peer: NodeId,
        qos: &QosSpec,
        now: SimInstant,
    ) -> Option<Recommendation> {
        match self {
            AnyTuner::Static(t) => t.recommend(peer, qos, now),
            AnyTuner::Adaptive(t) => t.recommend(peer, qos, now),
        }
    }

    fn forget_peer(&mut self, peer: NodeId) {
        match self {
            AnyTuner::Static(t) => t.forget_peer(peer),
            AnyTuner::Adaptive(t) => t.forget_peer(peer),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PEER: NodeId = NodeId(1);

    fn feed(
        tuner: &mut AdaptiveTuner,
        start_seq: u64,
        count: u64,
        delay: SimDuration,
        start: SimInstant,
    ) -> SimInstant {
        let mut now = start;
        for seq in start_seq..start_seq + count {
            now += SimDuration::from_millis(100);
            tuner.observe(PEER, seq, now - delay, now);
        }
        now
    }

    #[test]
    fn static_tuner_never_recommends() {
        let mut tuner = StaticTuner;
        assert!(!tuner.is_adaptive());
        assert_eq!(tuner.period(), None);
        tuner.observe(PEER, 0, SimInstant::ZERO, SimInstant::ZERO);
        assert_eq!(
            tuner.recommend(PEER, &QosSpec::paper_default(), SimInstant::ZERO),
            None
        );
    }

    #[test]
    fn too_few_samples_yield_no_recommendation() {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let now = feed(
            &mut tuner,
            0,
            5,
            SimDuration::from_millis(1),
            SimInstant::ZERO,
        );
        assert_eq!(tuner.recommend(PEER, &QosSpec::paper_default(), now), None);
        assert_eq!(tuner.peer_count(), 1);
    }

    #[test]
    fn clean_link_earns_a_tight_detection_bound() {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let qos = QosSpec::paper_default();
        let now = feed(
            &mut tuner,
            0,
            100,
            SimDuration::from_millis(1),
            SimInstant::ZERO,
        );
        let rec = tuner.recommend(PEER, &qos, now).unwrap();
        assert!(rec.detection_bound() < qos.detection_time());
        assert!(rec.detection_bound() >= TunerConfig::default().floor);
        assert_eq!(
            rec.params.worst_case_detection(),
            rec.detection_bound(),
            "η + δ must equal the derived bound"
        );
        assert_eq!(rec.election_grace(), rec.detection_bound() * 2);
        // The shift must clear the measured delay tail with margin to spare.
        assert!(rec.params.shift >= SimDuration::from_millis(1));
    }

    #[test]
    fn delta_shrinks_after_a_latency_drop_and_grows_after_a_spike() {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let qos = QosSpec::paper_default();

        // Regime 1: a slow WAN-ish link (90 ms delays).
        let now = feed(
            &mut tuner,
            0,
            200,
            SimDuration::from_millis(90),
            SimInstant::ZERO,
        );
        let slow = tuner.recommend(PEER, &qos, now).unwrap();
        assert!(slow.params.shift > SimDuration::from_millis(90));

        // Regime 2: latency drops to 1 ms; δ and the bound must shrink.
        let now = feed(&mut tuner, 200, 200, SimDuration::from_millis(1), now);
        let fast = tuner.recommend(PEER, &qos, now).unwrap();
        assert!(
            fast.params.shift < slow.params.shift,
            "δ must shrink after the latency drop: {} !< {}",
            fast.params.shift,
            slow.params.shift
        );
        assert!(fast.detection_bound() < slow.detection_bound());

        // Regime 3: latency spikes to 150 ms; δ must grow back out.
        let now = feed(&mut tuner, 400, 200, SimDuration::from_millis(150), now);
        let spiked = tuner.recommend(PEER, &qos, now).unwrap();
        assert!(
            spiked.params.shift > fast.params.shift,
            "δ must grow after the latency spike: {} !> {}",
            spiked.params.shift,
            fast.params.shift
        );
        assert!(spiked.params.shift > SimDuration::from_millis(150));
    }

    #[test]
    fn derived_bound_never_exceeds_the_static_one() {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let qos = QosSpec::paper_default();
        // A terrible link: 300 ms delays with heavy jitter.
        let mut now = SimInstant::ZERO;
        for seq in 0..200u64 {
            now += SimDuration::from_millis(100);
            let delay = SimDuration::from_millis(if seq % 3 == 0 { 500 } else { 150 });
            tuner.observe(PEER, seq, now - delay, now);
        }
        if let Some(rec) = tuner.recommend(PEER, &qos, now) {
            assert!(rec.detection_bound() <= qos.detection_time());
        }
    }

    #[test]
    fn lossy_link_keeps_a_wider_bound_than_a_clean_one() {
        let qos = QosSpec::paper_default();
        let config = TunerConfig::default();

        let mut clean = AdaptiveTuner::new(config);
        let now = feed(
            &mut clean,
            0,
            300,
            SimDuration::from_millis(5),
            SimInstant::ZERO,
        );
        let clean_rec = clean.recommend(PEER, &qos, now).unwrap();

        let mut lossy = AdaptiveTuner::new(config);
        let mut t = SimInstant::ZERO;
        for seq in (0..300u64).filter(|s| s % 3 != 0) {
            t = SimInstant::ZERO + SimDuration::from_millis((seq + 1) * 100);
            lossy.observe(PEER, seq, t - SimDuration::from_millis(5), t);
        }
        // Declining to recommend at all would also be acceptable on such a
        // lossy link; a recommendation, if made, must not be tighter.
        if let Some(lossy_rec) = lossy.recommend(PEER, &qos, t) {
            assert!(
                lossy_rec.detection_bound() >= clean_rec.detection_bound(),
                "a 33%-lossy link must not get a tighter bound"
            );
        }
    }

    #[test]
    fn hysteresis_suppresses_small_oscillations() {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let qos = QosSpec::paper_default();
        let now = feed(
            &mut tuner,
            0,
            100,
            SimDuration::from_millis(10),
            SimInstant::ZERO,
        );
        let first = tuner.recommend(PEER, &qos, now).unwrap();
        // A tiny wobble in measured delay must not move the recommendation.
        let now = feed(&mut tuner, 100, 20, SimDuration::from_millis(11), now);
        let second = tuner.recommend(PEER, &qos, now).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn forget_peer_drops_measurement_state() {
        let mut tuner = AdaptiveTuner::new(TunerConfig::default());
        let now = feed(
            &mut tuner,
            0,
            50,
            SimDuration::from_millis(1),
            SimInstant::ZERO,
        );
        assert!(tuner
            .recommend(PEER, &QosSpec::paper_default(), now)
            .is_some());
        tuner.forget_peer(PEER);
        assert_eq!(tuner.peer_count(), 0);
        assert_eq!(tuner.recommend(PEER, &QosSpec::paper_default(), now), None);
    }

    #[test]
    fn any_tuner_selects_by_policy() {
        let mut s = AnyTuner::new(TuningPolicy::Static);
        assert!(!s.is_adaptive());
        assert_eq!(s.period(), None);
        assert_eq!(AnyTuner::default(), s);
        s.observe(PEER, 0, SimInstant::ZERO, SimInstant::ZERO);
        s.forget_peer(PEER);

        let mut a = AnyTuner::new(TuningPolicy::adaptive());
        assert!(a.is_adaptive());
        assert_eq!(a.period(), Some(TunerConfig::default().period));
        let mut now = SimInstant::ZERO;
        for seq in 0..100u64 {
            now += SimDuration::from_millis(100);
            a.observe(PEER, seq, now - SimDuration::from_millis(1), now);
        }
        assert!(a.recommend(PEER, &QosSpec::paper_default(), now).is_some());
        a.forget_peer(PEER);
        assert!(a.recommend(PEER, &QosSpec::paper_default(), now).is_none());
    }
}
