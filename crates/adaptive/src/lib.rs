//! # sle-adaptive — online network measurement and dynamic QoS tuning
//!
//! The reproduced paper (Schiper & Toueg, DSN 2008) configures its Chen
//! et al. failure detector with *static* per-join QoS parameters, even
//! though its whole premise is a dynamic system whose link quality drifts.
//! This crate makes the service self-tuning, following the direction of
//! measurement-driven timeout derivation (Dynatune, arXiv:2507.15154) and
//! performance-aware election (SEER, arXiv:2104.01355):
//!
//! * [`ewma`] / [`quantile`] — the estimator toolbox: exponentially weighted
//!   mean/variance tracking and exact sliding-window quantiles,
//! * [`sampler`] — [`sampler::LinkSampler`]: passive per-link delay, jitter
//!   and loss measurement from the ALIVE heartbeats the service already
//!   exchanges (no probe traffic is added),
//! * [`tuner`] — the [`tuner::Tuner`] trait, the default no-op
//!   [`tuner::StaticTuner`], and [`tuner::AdaptiveTuner`], which
//!   periodically re-derives the failure-detector parameters (η, δ, safety
//!   margin) and the election grace period from live measurements against
//!   the application's mistake-recurrence bound.
//!
//! The subsystem is sans-io, like everything else in this workspace: the
//! service feeds it receive timestamps and polls it from a timer, so the
//! exact same tuning code runs under the discrete-event simulator and the
//! real-time runtime. Tuning is opt-in per group join
//! (`JoinConfig::with_tuning(TuningPolicy::adaptive())` in `sle-core`);
//! the default [`tuner::TuningPolicy::Static`] reproduces the paper
//! unchanged.
//!
//! ## Example
//!
//! ```
//! use sle_adaptive::prelude::*;
//! use sle_fd::QosSpec;
//! use sle_sim::actor::NodeId;
//! use sle_sim::time::{SimDuration, SimInstant};
//!
//! let mut tuner = AdaptiveTuner::new(TunerConfig::default());
//! let qos = QosSpec::paper_default();
//! let peer = NodeId(1);
//! let mut now = SimInstant::ZERO;
//! // Feed heartbeats observed over a fast LAN...
//! for seq in 0..64u64 {
//!     now = now + SimDuration::from_millis(100);
//!     tuner.observe(peer, seq, now - SimDuration::from_micros(25), now);
//! }
//! // ...and the tuner derives a detection bound far below the static 1 s.
//! let rec = tuner.recommend(peer, &qos, now).unwrap();
//! assert!(rec.detection_bound() <= SimDuration::from_millis(250));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ewma;
pub mod quantile;
pub mod sampler;
pub mod tuner;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::ewma::{Ewma, EwmaVar};
    pub use crate::quantile::WindowedQuantile;
    pub use crate::sampler::{LinkMeasurement, LinkSampler};
    pub use crate::tuner::{
        AdaptiveTuner, AnyTuner, Recommendation, StaticTuner, Tuner, TunerConfig, TuningPolicy,
    };
}

pub use ewma::{Ewma, EwmaVar};
pub use quantile::WindowedQuantile;
pub use sampler::{LinkMeasurement, LinkSampler};
pub use tuner::{
    AdaptiveTuner, AnyTuner, Recommendation, StaticTuner, Tuner, TunerConfig, TuningPolicy,
};
