//! Passive per-link measurement from the service's existing traffic.
//!
//! The service already timestamps every ALIVE/HELLO it sends and numbers the
//! ALIVEs per destination; a [`LinkSampler`] turns that into a continuously
//! updated estimate of the directed link's delay, jitter and loss — no probe
//! messages are added (the measurement is entirely passive, in the spirit of
//! Dynatune's piggybacked measurement plane).

use sle_fd::LinkQuality;
use sle_sim::time::{SimDuration, SimInstant};

use crate::ewma::{Ewma, EwmaVar};
use crate::quantile::WindowedQuantile;

/// A snapshot of what the sampler currently believes about one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkMeasurement {
    /// EWMA of the one-way delay.
    pub delay_mean: SimDuration,
    /// Exponentially weighted standard deviation of the one-way delay.
    pub delay_std_dev: SimDuration,
    /// A high quantile of the delay over the recent window (the quantile
    /// itself is configured on the sampler).
    pub delay_quantile: SimDuration,
    /// EWMA of the per-heartbeat loss indicator.
    pub loss_probability: f64,
    /// Number of heartbeats observed so far.
    pub samples: u64,
}

impl LinkMeasurement {
    /// Converts the measurement into the failure detector's link-quality
    /// vocabulary `(p_L, E[D], S[D])`.
    ///
    /// The standard deviation is widened to at least half the gap between the
    /// high delay quantile and the mean, so that heavy-tailed delays (which
    /// an EWMA of squared deviations under-weights) still push the Chebyshev
    /// tail bound — and therefore the derived timeout — outward.
    pub fn to_link_quality(&self) -> LinkQuality {
        let mean = self.delay_mean.as_secs_f64();
        let tail_spread = (self.delay_quantile.as_secs_f64() - mean).max(0.0) / 2.0;
        let std = self.delay_std_dev.as_secs_f64().max(tail_spread);
        LinkQuality::from_parts(
            self.loss_probability,
            self.delay_mean,
            SimDuration::from_secs_f64(std),
        )
    }
}

/// Passively measures one directed link from the heartbeats received over it.
///
/// This is deliberately separate from the failure detector's own
/// `LinkQualityEstimator` even though both consume the same heartbeat
/// stream: the tuner needs drift-tracking estimators (EWMAs and a bounded
/// quantile window) where the detector keeps long flat sample windows, and
/// keeping the tuner outside `sle-fd` preserves the monitor's independence
/// from tuning policy. The overhead is one O(1) record per heartbeat.
///
/// ```
/// use sle_adaptive::sampler::LinkSampler;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let mut sampler = LinkSampler::new(0.2, 64, 0.99);
/// let mut now = SimInstant::ZERO;
/// for seq in 0..50u64 {
///     now = now + SimDuration::from_millis(100);
///     sampler.record(seq, now - SimDuration::from_millis(5), now);
/// }
/// let m = sampler.measurement().unwrap();
/// assert!((m.delay_mean.as_millis_f64() - 5.0).abs() < 0.5);
/// assert!(m.loss_probability < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LinkSampler {
    delay: EwmaVar,
    window: WindowedQuantile,
    quantile: f64,
    loss: Ewma,
    highest_seq: u64,
    received: u64,
}

impl LinkSampler {
    /// Creates a sampler with EWMA smoothing factor `alpha`, a delay window
    /// of `window` samples, and `quantile` as the reported high quantile.
    pub fn new(alpha: f64, window: usize, quantile: f64) -> Self {
        LinkSampler {
            delay: EwmaVar::new(alpha),
            window: WindowedQuantile::new(window),
            quantile: quantile.clamp(0.5, 1.0),
            loss: Ewma::new(alpha),
            highest_seq: 0,
            received: 0,
        }
    }

    /// Number of heartbeats recorded.
    pub fn samples(&self) -> u64 {
        self.received
    }

    /// Records heartbeat `seq`, stamped `sent_at` by the sender and received
    /// at `received_at`.
    ///
    /// Losses are inferred from gaps in the sequence numbers: receiving
    /// heartbeat `n` after heartbeat `m < n − 1` means `n − m − 1` heartbeats
    /// were lost (or are still in flight; late arrivals are counted back as
    /// deliveries, so a transient reordering only perturbs the loss EWMA
    /// briefly).
    pub fn record(&mut self, seq: u64, sent_at: SimInstant, received_at: SimInstant) {
        let delay = received_at.saturating_since(sent_at).as_secs_f64();
        self.delay.observe(delay);
        self.window.record(delay);

        if self.received == 0 {
            self.highest_seq = seq;
            self.loss.observe(0.0);
        } else if seq > self.highest_seq {
            let gap = seq - self.highest_seq - 1;
            // Each lost heartbeat is one "1" observation, the delivered one a
            // "0"; cap the gap so one pathological sequence jump (e.g. a
            // sender restart) cannot saturate the estimator for long.
            for _ in 0..gap.min(16) {
                self.loss.observe(1.0);
            }
            self.loss.observe(0.0);
            self.highest_seq = seq;
        } else {
            // Duplicate or late arrival: a previously counted loss made it
            // after all.
            self.loss.observe(0.0);
        }
        self.received += 1;
    }

    /// The current measurement, or `None` before any heartbeat arrived.
    pub fn measurement(&self) -> Option<LinkMeasurement> {
        let mean = self.delay.mean()?;
        let std = self.delay.std_dev()?;
        let quantile = self.window.quantile(self.quantile)?;
        Some(LinkMeasurement {
            delay_mean: SimDuration::from_secs_f64(mean),
            delay_std_dev: SimDuration::from_secs_f64(std),
            delay_quantile: SimDuration::from_secs_f64(quantile),
            loss_probability: self.loss.value().unwrap_or(0.0).clamp(0.0, 1.0),
            samples: self.received,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sampler: &mut LinkSampler, seqs: &[u64], delay_ms: f64) {
        for &seq in seqs {
            let sent = SimInstant::ZERO + SimDuration::from_millis(seq * 100);
            let recv = sent + SimDuration::from_millis_f64(delay_ms);
            sampler.record(seq, sent, recv);
        }
    }

    #[test]
    fn empty_sampler_has_no_measurement() {
        let sampler = LinkSampler::new(0.1, 32, 0.99);
        assert_eq!(sampler.measurement(), None);
        assert_eq!(sampler.samples(), 0);
    }

    #[test]
    fn clean_stream_measures_delay_and_no_loss() {
        let mut sampler = LinkSampler::new(0.1, 64, 0.99);
        let seqs: Vec<u64> = (0..100).collect();
        feed(&mut sampler, &seqs, 10.0);
        let m = sampler.measurement().unwrap();
        assert!((m.delay_mean.as_millis_f64() - 10.0).abs() < 1e-6);
        assert!(m.delay_std_dev.as_millis_f64() < 1e-6);
        assert_eq!(m.delay_quantile, SimDuration::from_millis(10));
        assert!(m.loss_probability < 1e-3);
        assert_eq!(m.samples, 100);
    }

    #[test]
    fn sequence_gaps_raise_the_loss_estimate() {
        let mut sampler = LinkSampler::new(0.05, 64, 0.99);
        // Every other heartbeat lost: true loss 0.5.
        let seqs: Vec<u64> = (0..300).filter(|s| s % 2 == 0).collect();
        feed(&mut sampler, &seqs, 1.0);
        let m = sampler.measurement().unwrap();
        assert!(
            (m.loss_probability - 0.5).abs() < 0.1,
            "loss {}",
            m.loss_probability
        );
    }

    #[test]
    fn loss_estimate_recovers_after_a_lossy_burst() {
        let mut sampler = LinkSampler::new(0.1, 64, 0.99);
        let lossy: Vec<u64> = (0..100).filter(|s| s % 4 == 0).collect();
        feed(&mut sampler, &lossy, 1.0);
        let clean: Vec<u64> = (100..300).collect();
        feed(&mut sampler, &clean, 1.0);
        let m = sampler.measurement().unwrap();
        assert!(m.loss_probability < 0.02, "loss {}", m.loss_probability);
    }

    #[test]
    fn late_arrivals_do_not_inflate_loss_permanently() {
        let mut sampler = LinkSampler::new(0.2, 32, 0.99);
        let sent = |s: u64| SimInstant::ZERO + SimDuration::from_millis(s * 100);
        sampler.record(0, sent(0), sent(0));
        sampler.record(2, sent(2), sent(2));
        // Heartbeat 1 was counted lost; now it arrives late.
        sampler.record(1, sent(1), sent(2) + SimDuration::from_millis(50));
        for s in 3..40u64 {
            sampler.record(s, sent(s), sent(s));
        }
        let m = sampler.measurement().unwrap();
        assert!(m.loss_probability < 0.01, "loss {}", m.loss_probability);
    }

    #[test]
    fn quantile_tracks_the_tail_and_quality_widens_std() {
        let mut sampler = LinkSampler::new(0.1, 100, 0.99);
        for seq in 0..100u64 {
            let sent = SimInstant::ZERO + SimDuration::from_millis(seq * 100);
            let delay = if seq % 10 == 0 { 80 } else { 5 };
            sampler.record(seq, sent, sent + SimDuration::from_millis(delay));
        }
        let m = sampler.measurement().unwrap();
        assert_eq!(m.delay_quantile, SimDuration::from_millis(80));
        let quality = m.to_link_quality();
        // The widened std must cover at least half the tail spread.
        assert!(
            quality.delay_std_dev.as_millis_f64()
                >= (80.0 - m.delay_mean.as_millis_f64()) / 2.0 - 1e-6
        );
    }

    #[test]
    fn giant_sequence_jump_is_capped() {
        let mut sampler = LinkSampler::new(0.3, 16, 0.99);
        let sent = |s: u64| SimInstant::ZERO + SimDuration::from_millis(s);
        sampler.record(0, sent(0), sent(0));
        // A restart-style jump of a million: must not pin loss at 1 forever.
        sampler.record(1_000_000, sent(10), sent(10));
        for s in 1_000_001..1_000_040u64 {
            sampler.record(s, sent(s), sent(s));
        }
        let m = sampler.measurement().unwrap();
        assert!(m.loss_probability < 0.05, "loss {}", m.loss_probability);
    }
}
