//! The failure-detector configurator.
//!
//! Given the QoS requirement `(T_D^U, T_MR^L, P_A^L)` of an application and
//! the current quality `(p_L, E[D], S[D])` of the monitored link, the
//! configurator computes the two operational parameters of the NFD-S
//! detector of Chen et al.:
//!
//! * η — the interval at which the monitored process must send ALIVE
//!   messages, and
//! * δ — the timeout shift: a heartbeat sent at time σ keeps the sender
//!   trusted until σ + η + δ.
//!
//! The computation follows the structure of Chen et al.'s configuration
//! procedure. The detection-time bound fixes `η + δ = T_D^U` (a crash right
//! after a heartbeat is detected at the next freshness point, η + δ later).
//! For a candidate split, the probability that a freshness point finds *no*
//! eligible heartbeat delivered — the probability that a false suspicion
//! begins there — is
//!
//! ```text
//! P_fs(η, δ) = Π_{k ≥ 0, δ−kη ≥ 0} [ p_L + (1 − p_L)·Pr(D > δ − kη) ]
//! ```
//!
//! with the delay tail `Pr(D > x)` bounded by the one-sided Chebyshev
//! (Cantelli) inequality `V[D] / (V[D] + (x − E[D])²)` for `x > E[D]` — the
//! same distribution-free bound Chen et al. use when only the mean and
//! variance of the delay are known. Mistakes recur roughly every
//! `η / P_fs(η, δ)`, so the configurator picks the **largest** η (fewest
//! messages) for which `η / P_fs ≥ T_MR^L` and the expected mistake duration
//! stays below `T_M^U = (1 − P_A^L)·T_MR^L`, subject to a configurable cap
//! `η ≤ cap_fraction · T_D^U` that keeps the average detection latency well
//! below the bound (as observed in the paper, where T_r tracks just below
//! `T_D^U`).

use sle_sim::time::SimDuration;

use crate::qos::QosSpec;
use crate::quality::LinkQuality;

/// The operational failure-detector parameters produced by the configurator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FdParams {
    /// The heartbeat (ALIVE) sending interval η the monitored process should
    /// use towards the monitoring process.
    pub interval: SimDuration,
    /// The timeout shift δ: a heartbeat stamped σ extends trust until
    /// σ + η + δ at the monitor.
    pub shift: SimDuration,
}

impl FdParams {
    /// The worst-case crash-detection time implied by these parameters.
    pub fn worst_case_detection(&self) -> SimDuration {
        self.interval + self.shift
    }
}

/// Tunable knobs of the configurator (not part of the application-facing
/// QoS; defaults reproduce the paper's observed behaviour).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfiguratorOptions {
    /// Smallest heartbeat interval the configurator will ever choose.
    pub min_interval: SimDuration,
    /// Upper bound on η as a fraction of `T_D^U`. Keeping η at a quarter of
    /// the detection bound keeps the *average* detection latency (≈ δ + η/2)
    /// close to, but below, `T_D^U`, matching Figure 8 of the paper.
    pub max_interval_fraction: f64,
    /// Number of candidate intervals examined between the cap and the floor.
    pub search_steps: usize,
}

impl Default for ConfiguratorOptions {
    fn default() -> Self {
        ConfiguratorOptions {
            min_interval: SimDuration::from_millis(5),
            max_interval_fraction: 0.25,
            search_steps: 128,
        }
    }
}

/// Computes NFD-S parameters from a QoS requirement and a link-quality
/// estimate.
///
/// ```
/// use sle_fd::config::FdConfigurator;
/// use sle_fd::qos::QosSpec;
/// use sle_fd::quality::LinkQuality;
/// use sle_sim::time::SimDuration;
///
/// let configurator = FdConfigurator::default();
/// let params = configurator.compute(&QosSpec::paper_default(), &LinkQuality::perfect());
/// // On a clean LAN the interval is capped at a quarter of T_D^U.
/// assert_eq!(params.interval, SimDuration::from_millis(250));
/// assert_eq!(params.worst_case_detection(), SimDuration::from_secs(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FdConfigurator {
    options: ConfiguratorOptions,
}

impl FdConfigurator {
    /// Creates a configurator with custom options.
    pub fn new(options: ConfiguratorOptions) -> Self {
        FdConfigurator { options }
    }

    /// The options in use.
    pub fn options(&self) -> ConfiguratorOptions {
        self.options
    }

    /// Computes `(η, δ)` for the given QoS and link quality.
    ///
    /// The result always satisfies `η + δ = T_D^U` and `η ≥ min_interval`
    /// (clamped); if even the smallest interval cannot satisfy the
    /// mistake-recurrence bound (e.g. on an extremely lossy link), the
    /// smallest interval is returned — the detector then does the best it
    /// can, exactly like the real system under network conditions that make
    /// the requested QoS unattainable.
    pub fn compute(&self, qos: &QosSpec, quality: &LinkQuality) -> FdParams {
        let t_d = qos.detection_time();
        let cap = t_d
            .mul_f64(self.options.max_interval_fraction.clamp(0.01, 0.95))
            .max(self.options.min_interval);
        let floor = self.options.min_interval.min(cap);
        let steps = self.options.search_steps.max(2);

        let mut chosen = floor;
        for i in 0..steps {
            // Walk from the cap down towards the floor, keeping the largest
            // feasible interval.
            let frac = 1.0 - i as f64 / (steps - 1) as f64;
            let eta = floor + (cap - floor).mul_f64(frac);
            let eta = eta.max(floor);
            if self.satisfies(qos, quality, eta) {
                chosen = eta;
                break;
            }
            chosen = floor;
        }

        let shift = t_d.saturating_sub(chosen);
        FdParams {
            interval: chosen,
            shift,
        }
    }

    /// Returns whether interval `eta` (with the implied shift) meets the QoS
    /// for the given link quality.
    fn satisfies(&self, qos: &QosSpec, quality: &LinkQuality, eta: SimDuration) -> bool {
        if eta > qos.detection_time() {
            return false;
        }
        let delta = qos.detection_time().saturating_sub(eta);
        params_meet_qos(quality, eta, delta, qos)
    }
}

/// Returns whether the operating point `(eta, delta)` meets `qos` on a link
/// with the given quality: predicted mistakes must recur no more often than
/// `T_MR^L` and last no longer than `T_M^U`. This is the acceptance test of
/// both the static configurator and the adaptive tuner.
pub fn params_meet_qos(
    quality: &LinkQuality,
    eta: SimDuration,
    delta: SimDuration,
    qos: &QosSpec,
) -> bool {
    let p_fs = false_suspicion_probability(quality, eta, delta);

    // Mistake recurrence: one freshness point every η, each starting a
    // mistake with probability P_fs.
    let recurrence_ok = if p_fs <= 0.0 {
        true
    } else {
        eta.as_secs_f64() / p_fs >= qos.mistake_recurrence().as_secs_f64()
    };

    // Mistake duration: once suspected, trust resumes when the next
    // heartbeat that survives the link arrives: on average after about
    // one inter-heartbeat interval per expected retransmission plus the
    // mean delay.
    let p_l = quality.loss_probability.min(0.999);
    let expected_duration = eta.as_secs_f64() / (1.0 - p_l) + quality.delay_mean.as_secs_f64();
    let duration_ok = expected_duration <= qos.mistake_duration_bound().as_secs_f64().max(1e-9);

    recurrence_ok && duration_ok
}

/// Probability that a message sent with `margin` time to spare misses its
/// freshness point (it is lost, or delayed beyond the margin).
fn late_or_lost_probability(quality: &LinkQuality, margin: SimDuration) -> f64 {
    let p_l = quality.loss_probability.clamp(0.0, 1.0);
    p_l + (1.0 - p_l) * delay_tail_probability(quality, margin)
}

/// Distribution-free bound on `Pr(D > x)` from the estimated mean and
/// standard deviation of the delay (Cantelli's inequality).
fn delay_tail_probability(quality: &LinkQuality, x: SimDuration) -> f64 {
    let mean = quality.delay_mean.as_secs_f64();
    let x = x.as_secs_f64();
    if x <= mean {
        return 1.0;
    }
    let var = quality.delay_std_dev.as_secs_f64().powi(2);
    if var <= 0.0 {
        return 0.0;
    }
    let excess = x - mean;
    (var / (var + excess * excess)).clamp(0.0, 1.0)
}

/// Probability that a freshness point finds no eligible heartbeat delivered,
/// i.e. that a false suspicion starts there.
///
/// Eligible heartbeats are those sent `δ, δ−η, δ−2η, …` before the freshness
/// point; their arrivals are treated as independent (the same independence
/// assumption Chen et al. make for their bounds).
pub fn false_suspicion_probability(
    quality: &LinkQuality,
    interval: SimDuration,
    shift: SimDuration,
) -> f64 {
    if interval.is_zero() {
        return 0.0;
    }
    let mut probability = 1.0_f64;
    let mut margin = shift;
    loop {
        probability *= late_or_lost_probability(quality, margin);
        if probability < 1e-60 {
            return 0.0;
        }
        if margin < interval {
            break;
        }
        margin -= interval;
    }
    probability
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quality(loss: f64, mean_ms: f64, std_ms: f64) -> LinkQuality {
        LinkQuality::from_parts(
            loss,
            SimDuration::from_millis_f64(mean_ms),
            SimDuration::from_millis_f64(std_ms),
        )
    }

    #[test]
    fn perfect_link_hits_the_interval_cap() {
        let params =
            FdConfigurator::default().compute(&QosSpec::paper_default(), &LinkQuality::perfect());
        assert_eq!(params.interval, SimDuration::from_millis(250));
        assert_eq!(params.shift, SimDuration::from_millis(750));
    }

    #[test]
    fn lossier_links_get_shorter_intervals() {
        let configurator = FdConfigurator::default();
        let qos = QosSpec::paper_default();
        let clean = configurator.compute(&qos, &quality(0.0, 0.025, 0.01));
        let lossy = configurator.compute(&qos, &quality(0.1, 100.0, 100.0));
        assert!(
            lossy.interval < clean.interval,
            "lossy {} !< clean {}",
            lossy.interval,
            clean.interval
        );
        // Both must respect the detection bound.
        assert_eq!(clean.worst_case_detection(), SimDuration::from_secs(1));
        assert_eq!(lossy.worst_case_detection(), SimDuration::from_secs(1));
        // In the paper's worst lossy network the interval lands in the
        // 30-150 ms range, producing the traffic levels of Figure 6.
        let ms = lossy.interval.as_millis_f64();
        assert!((20.0..200.0).contains(&ms), "interval = {ms} ms");
    }

    #[test]
    fn interval_scales_with_detection_bound() {
        let configurator = FdConfigurator::default();
        let quality = quality(0.0, 0.025, 0.01);
        for &td_ms in &[100u64, 250, 500, 750, 1000] {
            let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(td_ms));
            let params = configurator.compute(&qos, &quality);
            assert_eq!(
                params.worst_case_detection(),
                SimDuration::from_millis(td_ms),
                "η + δ must equal T_D^U"
            );
            assert!(params.interval <= SimDuration::from_millis_f64(td_ms as f64 * 0.25 + 0.001));
        }
    }

    #[test]
    fn hopeless_link_falls_back_to_minimum_interval() {
        let configurator = FdConfigurator::default();
        let params = configurator.compute(&QosSpec::paper_default(), &quality(0.95, 500.0, 500.0));
        assert_eq!(params.interval, configurator.options().min_interval);
    }

    #[test]
    fn recurrence_estimate_meets_bound_for_chosen_interval() {
        let configurator = FdConfigurator::default();
        let qos = QosSpec::paper_default();
        let q = quality(0.1, 100.0, 100.0);
        let params = configurator.compute(&qos, &q);
        let p_fs = false_suspicion_probability(&q, params.interval, params.shift);
        if p_fs > 0.0 {
            let recurrence = params.interval.as_secs_f64() / p_fs;
            assert!(
                recurrence >= qos.mistake_recurrence().as_secs_f64(),
                "recurrence {recurrence}s below bound"
            );
        }
    }

    #[test]
    fn false_suspicion_probability_monotone_in_shift() {
        let q = quality(0.1, 50.0, 50.0);
        let eta = SimDuration::from_millis(100);
        let p_short = false_suspicion_probability(&q, eta, SimDuration::from_millis(200));
        let p_long = false_suspicion_probability(&q, eta, SimDuration::from_millis(900));
        assert!(p_long < p_short);
    }

    #[test]
    fn cantelli_tail_behaviour() {
        let q = quality(0.0, 100.0, 100.0);
        // Below or at the mean the bound is vacuous (1.0).
        assert_eq!(
            delay_tail_probability(&q, SimDuration::from_millis(50)),
            1.0
        );
        assert_eq!(
            delay_tail_probability(&q, SimDuration::from_millis(100)),
            1.0
        );
        // One standard deviation above the mean: bound = 1/2.
        let one_sigma = delay_tail_probability(&q, SimDuration::from_millis(200));
        assert!((one_sigma - 0.5).abs() < 1e-9);
        // Far above the mean the bound becomes small.
        assert!(delay_tail_probability(&q, SimDuration::from_millis(1100)) < 0.01);
        // Zero variance: deterministic delay.
        let det = quality(0.0, 100.0, 0.0);
        assert_eq!(
            delay_tail_probability(&det, SimDuration::from_millis(101)),
            0.0
        );
        assert_eq!(
            delay_tail_probability(&det, SimDuration::from_millis(99)),
            1.0
        );
    }

    #[test]
    fn late_or_lost_combines_loss_and_tail() {
        let q = quality(0.2, 10.0, 0.0);
        // Far beyond the mean with zero variance: only losses matter.
        assert!((late_or_lost_probability(&q, SimDuration::from_millis(100)) - 0.2).abs() < 1e-9);
        // Below the mean: certainly late.
        assert_eq!(
            late_or_lost_probability(&q, SimDuration::from_millis(5)),
            1.0
        );
    }

    #[test]
    fn zero_interval_probability_is_zero() {
        let q = quality(0.5, 10.0, 10.0);
        assert_eq!(
            false_suspicion_probability(&q, SimDuration::ZERO, SimDuration::from_millis(100)),
            0.0
        );
    }

    #[test]
    fn options_are_respected() {
        let options = ConfiguratorOptions {
            min_interval: SimDuration::from_millis(50),
            max_interval_fraction: 0.5,
            search_steps: 16,
        };
        let configurator = FdConfigurator::new(options);
        assert_eq!(configurator.options(), options);
        let params = configurator.compute(&QosSpec::paper_default(), &LinkQuality::perfect());
        assert_eq!(params.interval, SimDuration::from_millis(500));
    }
}
