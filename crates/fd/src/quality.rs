//! Link-quality estimation.
//!
//! The Link Quality Estimator module of the paper (Figure 1) continuously
//! estimates three quantities for the directed link q → p, using the ALIVE
//! messages p receives from q:
//!
//! * the probability of message loss `p_L`,
//! * the expected message delay `E[D]`, and
//! * the standard deviation of the message delay `S[D]`.
//!
//! The estimates feed the failure-detector configurator, which recomputes
//! the heartbeat interval η and timeout shift δ as the network changes.

use sle_sim::time::{SimDuration, SimInstant};

/// A point-in-time estimate of the quality of one directed link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkQuality {
    /// Estimated probability that a message is lost.
    pub loss_probability: f64,
    /// Estimated mean one-way message delay.
    pub delay_mean: SimDuration,
    /// Estimated standard deviation of the one-way message delay.
    pub delay_std_dev: SimDuration,
    /// Number of delay samples backing the estimate.
    pub samples: usize,
}

impl LinkQuality {
    /// A conservative prior used before any heartbeat has been observed:
    /// a metropolitan-area-like link (10 ms mean delay, 10 ms deviation, 1%
    /// losses). Starting conservative makes the detector cautious until real
    /// measurements arrive.
    pub fn conservative_prior() -> Self {
        LinkQuality {
            loss_probability: 0.01,
            delay_mean: SimDuration::from_millis(10),
            delay_std_dev: SimDuration::from_millis(10),
            samples: 0,
        }
    }

    /// The quality of an ideal link (no loss, no delay); useful in tests.
    pub fn perfect() -> Self {
        LinkQuality {
            loss_probability: 0.0,
            delay_mean: SimDuration::ZERO,
            delay_std_dev: SimDuration::ZERO,
            samples: 0,
        }
    }

    /// Builds a quality description directly from parameters; primarily used
    /// by tests and by the configurator's own unit tests.
    pub fn from_parts(
        loss_probability: f64,
        delay_mean: SimDuration,
        delay_std_dev: SimDuration,
    ) -> Self {
        LinkQuality {
            loss_probability: loss_probability.clamp(0.0, 1.0),
            delay_mean,
            delay_std_dev,
            samples: usize::MAX,
        }
    }
}

impl Default for LinkQuality {
    fn default() -> Self {
        LinkQuality::conservative_prior()
    }
}

/// Estimates the quality of one directed link from the heartbeats received
/// over it.
///
/// Losses are inferred from gaps in the heartbeat sequence numbers over a
/// sliding window; delays are measured as `receive time − send timestamp`
/// (the simulator and the in-process runtime share a single clock, mirroring
/// the synchronized-clock variant NFD-S of Chen et al.).
///
/// ```
/// use sle_fd::quality::LinkQualityEstimator;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let mut est = LinkQualityEstimator::new(128);
/// let mut now = SimInstant::ZERO;
/// for seq in 0..100u64 {
///     now = now + SimDuration::from_millis(100);
///     // every heartbeat arrives 5 ms after it was sent
///     est.record(seq, now - SimDuration::from_millis(5), now);
/// }
/// let q = est.estimate();
/// assert!(q.loss_probability < 0.02);
/// assert!((q.delay_mean.as_millis_f64() - 5.0).abs() < 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct LinkQualityEstimator {
    capacity: usize,
    delays: Vec<f64>,
    next_slot: usize,
    received: u64,
    highest_seq: u64,
    /// Sequence numbers received within the sliding loss window, in arrival
    /// order (heartbeat streams are almost always in order, so the front of
    /// the queue holds the oldest sequence numbers).
    recent_seqs: std::collections::VecDeque<u64>,
}

impl LinkQualityEstimator {
    /// Creates an estimator keeping up to `capacity` delay samples.
    ///
    /// The loss window covers the last `4 * capacity` sequence numbers.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "estimator capacity must be positive");
        LinkQualityEstimator {
            capacity,
            delays: Vec::with_capacity(capacity),
            next_slot: 0,
            received: 0,
            highest_seq: 0,
            recent_seqs: std::collections::VecDeque::new(),
        }
    }

    fn loss_window_span(&self) -> u64 {
        (self.capacity as u64) * 4
    }

    /// Records the arrival of heartbeat number `seq`, stamped `sent_at` by
    /// the sender and received at `received_at`.
    ///
    /// Out-of-order arrivals are accepted; a `received_at` earlier than
    /// `sent_at` (possible with unsynchronised clocks) is treated as a zero
    /// delay.
    pub fn record(&mut self, seq: u64, sent_at: SimInstant, received_at: SimInstant) {
        let delay = received_at.saturating_since(sent_at).as_secs_f64();
        if self.delays.len() < self.capacity {
            self.delays.push(delay);
        } else {
            self.delays[self.next_slot] = delay;
        }
        self.next_slot = (self.next_slot + 1) % self.capacity;

        self.received += 1;
        if seq > self.highest_seq || self.received == 1 {
            self.highest_seq = seq;
        }
        self.recent_seqs.push_back(seq);
        let cutoff = self.highest_seq.saturating_sub(self.loss_window_span());
        while let Some(&front) = self.recent_seqs.front() {
            if front < cutoff {
                self.recent_seqs.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of heartbeats recorded so far.
    pub fn heartbeats_recorded(&self) -> u64 {
        self.received
    }

    /// Produces the current quality estimate.
    ///
    /// Before any heartbeat is recorded this returns
    /// [`LinkQuality::conservative_prior`].
    pub fn estimate(&self) -> LinkQuality {
        if self.delays.is_empty() || self.recent_seqs.is_empty() {
            return LinkQuality::conservative_prior();
        }
        let n = self.delays.len();
        let mean = self.delays.iter().sum::<f64>() / n as f64;
        let variance = if n > 1 {
            self.delays.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };

        // Loss: compare the sequence-number span of the window with the
        // number of heartbeats actually received in it.
        let oldest = self
            .recent_seqs
            .iter()
            .copied()
            .min()
            .unwrap_or(self.highest_seq);
        let expected = self.highest_seq.saturating_sub(oldest) + 1;
        let received = self.recent_seqs.len() as u64;
        let loss = if expected == 0 || received >= expected {
            0.0
        } else {
            1.0 - received as f64 / expected as f64
        };

        LinkQuality {
            loss_probability: loss.clamp(0.0, 1.0),
            delay_mean: SimDuration::from_secs_f64(mean),
            delay_std_dev: SimDuration::from_secs_f64(variance.sqrt()),
            samples: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(est: &mut LinkQualityEstimator, seqs: &[u64], delay_ms: f64, interval_ms: u64) {
        for &seq in seqs {
            let sent = SimInstant::ZERO + SimDuration::from_millis(seq * interval_ms);
            let recv = sent + SimDuration::from_millis_f64(delay_ms);
            est.record(seq, sent, recv);
        }
    }

    #[test]
    fn empty_estimator_returns_prior() {
        let est = LinkQualityEstimator::new(16);
        assert_eq!(est.estimate(), LinkQuality::conservative_prior());
        assert_eq!(est.heartbeats_recorded(), 0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = LinkQualityEstimator::new(0);
    }

    #[test]
    fn estimates_constant_delay_with_no_loss() {
        let mut est = LinkQualityEstimator::new(64);
        let seqs: Vec<u64> = (0..100).collect();
        feed(&mut est, &seqs, 5.0, 100);
        let q = est.estimate();
        assert!((q.delay_mean.as_millis_f64() - 5.0).abs() < 1e-6);
        assert!(q.delay_std_dev.as_millis_f64() < 1e-6);
        assert_eq!(q.loss_probability, 0.0);
        assert_eq!(q.samples, 64);
        assert_eq!(est.heartbeats_recorded(), 100);
    }

    #[test]
    fn estimates_loss_from_sequence_gaps() {
        let mut est = LinkQualityEstimator::new(64);
        // Receive only even sequence numbers: 50% loss.
        let seqs: Vec<u64> = (0..200).filter(|s| s % 2 == 0).collect();
        feed(&mut est, &seqs, 1.0, 100);
        let q = est.estimate();
        assert!(
            (q.loss_probability - 0.5).abs() < 0.05,
            "loss = {}",
            q.loss_probability
        );
    }

    #[test]
    fn estimates_delay_variance() {
        let mut est = LinkQualityEstimator::new(128);
        // Alternate 10 ms and 30 ms delays: mean 20 ms, std dev ~10 ms.
        for seq in 0..100u64 {
            let sent = SimInstant::ZERO + SimDuration::from_millis(seq * 50);
            let delay = if seq % 2 == 0 { 10 } else { 30 };
            est.record(seq, sent, sent + SimDuration::from_millis(delay));
        }
        let q = est.estimate();
        assert!((q.delay_mean.as_millis_f64() - 20.0).abs() < 0.5);
        assert!((q.delay_std_dev.as_millis_f64() - 10.0).abs() < 0.6);
    }

    #[test]
    fn negative_clock_skew_is_clamped_to_zero_delay() {
        let mut est = LinkQualityEstimator::new(8);
        let sent = SimInstant::ZERO + SimDuration::from_millis(100);
        est.record(0, sent, sent - SimDuration::from_millis(5));
        let q = est.estimate();
        assert_eq!(q.delay_mean, SimDuration::ZERO);
    }

    #[test]
    fn window_slides_and_forgets_ancient_losses() {
        let mut est = LinkQualityEstimator::new(16);
        // A burst of losses early on (only every 4th received), then a long
        // clean period; the final estimate should reflect the clean period.
        let early: Vec<u64> = (0..80).filter(|s| s % 4 == 0).collect();
        feed(&mut est, &early, 1.0, 10);
        let late: Vec<u64> = (80..400).collect();
        feed(&mut est, &late, 1.0, 10);
        let q = est.estimate();
        assert!(q.loss_probability < 0.1, "loss = {}", q.loss_probability);
    }

    #[test]
    fn from_parts_clamps_loss() {
        let q = LinkQuality::from_parts(2.0, SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(q.loss_probability, 1.0);
        let q = LinkQuality::from_parts(-0.5, SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(q.loss_probability, 0.0);
        assert_eq!(LinkQuality::default(), LinkQuality::conservative_prior());
        assert_eq!(LinkQuality::perfect().loss_probability, 0.0);
    }
}
