//! The per-workstation shared liveness arena.
//!
//! The paper's architecture (Figure 2) already gives every workstation a
//! *single* Failure Detector module shared by all groups; historically this
//! implementation nevertheless kept one independent [`PeerMonitor`] — link
//! quality estimator included — per `(group, peer)` pair. With thousands of
//! groups sharing the same peers that is N copies of the same measurement:
//! N estimator windows fed the same packets, N times the memory, and N
//! disagreeing liveness estimates for one physical link.
//!
//! A [`MonitorArena`] fixes the redundancy at the root: it owns one
//! [`PeerLiveness`] record per *peer node* — the link-quality estimator and
//! the heartbeat-arrival bookkeeping — and hands every group's monitor a
//! shared handle to it. The per-group state that genuinely differs between
//! groups (the (η, δ) operating point derived from each group's QoS, the
//! trust state, the freshness horizon, adaptive-tuner overrides) stays in
//! the [`PeerMonitor`]. N groups sharing a peer therefore maintain one
//! liveness estimate with N cheap QoS views layered on top.
//!
//! Because ALIVEs for several groups can ride the same datagram (see
//! `sle-core`'s batched fan-out), the arena deduplicates: the same
//! `(seq, sent_at, received_at)` observation is recorded once no matter how
//! many groups process the datagram.
//!
//! [`PeerMonitor`]: crate::monitor::PeerMonitor

use std::sync::{Arc, Mutex};

use sle_sim::actor::NodeId;
use sle_sim::dense::SlotIndex;
use sle_sim::time::{SimDuration, SimInstant};

use crate::config::{FdConfigurator, FdParams};
use crate::qos::QosSpec;
use crate::quality::{LinkQuality, LinkQualityEstimator};

/// How many delay samples each peer's shared estimator keeps.
const ESTIMATOR_WINDOW: usize = 256;

/// The node-level liveness record for one remote peer: everything about the
/// peer that is a property of the *link*, not of any particular group.
#[derive(Debug)]
pub struct PeerLiveness {
    estimator: LinkQualityEstimator,
    /// The last `(seq, sent_at, received_at)` recorded, for deduplicating
    /// the per-group fan-out of one batched datagram.
    last_record: Option<(u64, SimInstant, SimInstant)>,
    /// Memoized `(computed_at, estimate, version)` of the estimator scan.
    /// Thousands of per-group monitors share one record; each wants a fresh
    /// estimate only every few seconds, so the scan runs once per refresh
    /// interval for the whole record instead of once per monitor. The
    /// version only advances when the estimate actually changed, letting
    /// monitors skip recomputing their (η, δ) operating point entirely.
    cached_quality: Option<(SimInstant, LinkQuality, u64)>,
    /// Memoized result of the (η, δ) configurator search, keyed by the
    /// quality version it was derived from plus the QoS/configurator pair
    /// that requested it. Monitors of different groups usually monitor the
    /// same peer under the *same* QoS, so when the estimate does change,
    /// one monitor runs the search and its siblings reuse the result.
    cached_params: Option<(u64, QosSpec, FdConfigurator, FdParams)>,
}

impl PeerLiveness {
    fn new() -> Self {
        PeerLiveness {
            estimator: LinkQualityEstimator::new(ESTIMATOR_WINDOW),
            last_record: None,
            cached_quality: None,
            cached_params: None,
        }
    }
}

/// A shared handle to one peer's [`PeerLiveness`] record.
///
/// Cloning the handle shares the record; monitors of different groups hold
/// clones of the same handle. All accessors copy data out under a private
/// lock, so a handle can never deadlock against the arena.
#[derive(Debug, Clone)]
pub struct LivenessHandle {
    slot: Arc<Mutex<PeerLiveness>>,
}

impl LivenessHandle {
    /// A standalone record not registered in any arena (used by monitors
    /// constructed outside a service instance, e.g. in tests).
    pub fn detached() -> Self {
        LivenessHandle {
            slot: Arc::new(Mutex::new(PeerLiveness::new())),
        }
    }

    /// Records the arrival of heartbeat `seq`, stamped `sent_at`, received
    /// at `received_at`.
    ///
    /// The exact same observation recorded twice in a row (the second and
    /// later groups processing one batched datagram) is counted once.
    pub fn record(&self, seq: u64, sent_at: SimInstant, received_at: SimInstant) {
        let mut liveness = self.slot.lock().expect("liveness poisoned");
        if liveness.last_record == Some((seq, sent_at, received_at)) {
            return;
        }
        liveness.last_record = Some((seq, sent_at, received_at));
        liveness.estimator.record(seq, sent_at, received_at);
    }

    /// The current link-quality estimate.
    pub fn quality(&self) -> LinkQuality {
        self.slot
            .lock()
            .expect("liveness poisoned")
            .estimator
            .estimate()
    }

    /// The link-quality estimate memoized per record: recomputed at most
    /// once every `max_age`, shared by every monitor holding this handle.
    ///
    /// Returns the estimate and a version number that advances only when a
    /// recomputation produced a *different* estimate — callers deriving
    /// expensive state from the quality (the (η, δ) search) can compare
    /// versions and skip the derivation when nothing changed.
    pub fn quality_cached(&self, now: SimInstant, max_age: SimDuration) -> (LinkQuality, u64) {
        let mut liveness = self.slot.lock().expect("liveness poisoned");
        if let Some((at, quality, version)) = liveness.cached_quality {
            if now.saturating_since(at) < max_age {
                return (quality, version);
            }
            let fresh = liveness.estimator.estimate();
            let version = if fresh == quality {
                version
            } else {
                version + 1
            };
            liveness.cached_quality = Some((now, fresh, version));
            (fresh, version)
        } else {
            let fresh = liveness.estimator.estimate();
            liveness.cached_quality = Some((now, fresh, 1));
            (fresh, 1)
        }
    }

    /// The (η, δ) operating point for `quality` (at `version`) under the
    /// given QoS and configurator, computed at most once per record: the
    /// first monitor to ask after a quality change runs the configurator
    /// search; every sibling monitor with the same QoS reuses the cached
    /// result. A monitor with a *different* QoS simply recomputes (and
    /// takes over the single cache entry) — correctness never depends on a
    /// hit.
    pub fn shared_params(
        &self,
        version: u64,
        qos: &QosSpec,
        configurator: &FdConfigurator,
        quality: &LinkQuality,
    ) -> FdParams {
        let mut liveness = self.slot.lock().expect("liveness poisoned");
        if let Some((v, q, c, params)) = liveness.cached_params {
            if v == version && q == *qos && c == *configurator {
                return params;
            }
        }
        let params = configurator.compute(qos, quality);
        liveness.cached_params = Some((version, *qos, *configurator, params));
        params
    }

    /// Heartbeats recorded (after deduplication) since creation or the last
    /// reset.
    pub fn heartbeats_recorded(&self) -> u64 {
        self.slot
            .lock()
            .expect("liveness poisoned")
            .estimator
            .heartbeats_recorded()
    }

    /// Discards every measurement (the peer restarted with a new
    /// incarnation, so its old link behaviour no longer applies). The
    /// handle itself — and therefore the sharing between groups — survives.
    pub fn reset(&self) {
        *self.slot.lock().expect("liveness poisoned") = PeerLiveness::new();
    }

    fn is_shared_beyond(&self, holders: usize) -> bool {
        Arc::strong_count(&self.slot) > holders
    }
}

/// Array-indexed storage behind a [`MonitorArena`].
///
/// Peers are interned into `u32` slots on first use: `index` maps the peer
/// id to its slot, `slots` holds the records densely, and `free` recycles
/// slots vacated by [`MonitorArena::prune`]. Lookups are a binary search
/// over a contiguous `(id, slot)` vector instead of a pointer-chasing tree
/// walk, and slot numbers are stable for as long as the record lives, so
/// callers can cache the returned handle and skip the arena entirely on
/// their hot paths.
#[derive(Debug, Default)]
struct ArenaInner {
    index: SlotIndex,
    slots: Vec<Option<LivenessHandle>>,
    free: Vec<u32>,
}

impl ArenaInner {
    fn prune(&mut self) {
        let mut dead = Vec::new();
        for (id, slot) in self.index.iter() {
            let handle = self.slots[slot as usize]
                .as_ref()
                .expect("indexed slot must be live");
            // One strong count is the arena's own; records held only by the
            // arena belong to peers every group has stopped monitoring.
            if !handle.is_shared_beyond(1) {
                dead.push((id, slot));
            }
        }
        for (id, slot) in dead {
            self.index.remove(id);
            self.slots[slot as usize] = None;
            self.free.push(slot);
        }
    }
}

/// The per-workstation registry of shared [`PeerLiveness`] records.
///
/// Cloning an arena shares it: a service instance creates one and hands a
/// clone to every group's failure detector. Records live in dense `u32`
/// slots behind a sorted id → slot index; pruned slots are recycled.
#[derive(Debug, Clone, Default)]
pub struct MonitorArena {
    inner: Arc<Mutex<ArenaInner>>,
}

impl MonitorArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared record for `peer`, creating it on first use.
    ///
    /// The returned handle stays valid (and shared) independently of the
    /// arena, so hot paths should intern once and cache the handle rather
    /// than calling `slot` per message. Records whose monitors are all gone
    /// are reclaimed lazily by [`MonitorArena::prune`] /
    /// [`MonitorArena::peer_count`]; unpruned leftovers are bounded by the
    /// workstation universe, not by churn.
    pub fn slot(&self, peer: NodeId) -> LivenessHandle {
        let mut inner = self.inner.lock().expect("arena poisoned");
        if let Some(slot) = inner.index.get(peer.0) {
            return inner.slots[slot as usize]
                .as_ref()
                .expect("indexed slot must be live")
                .clone();
        }
        let handle = LivenessHandle::detached();
        let slot = match inner.free.pop() {
            Some(s) => {
                inner.slots[s as usize] = Some(handle.clone());
                s
            }
            None => {
                inner.slots.push(Some(handle.clone()));
                (inner.slots.len() - 1) as u32
            }
        };
        inner.index.insert(peer.0, slot);
        handle
    }

    /// Drops every record no monitor references any more (a record whose
    /// only holder is the arena itself belongs to a peer every group has
    /// stopped monitoring). Vacated slots are recycled for future peers.
    pub fn prune(&self) {
        self.inner.lock().expect("arena poisoned").prune();
    }

    /// Number of peers currently tracked (after pruning).
    pub fn peer_count(&self) -> usize {
        let mut inner = self.inner.lock().expect("arena poisoned");
        inner.prune();
        inner.index.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    #[test]
    fn slots_are_shared_per_peer() {
        let arena = MonitorArena::new();
        let a1 = arena.slot(NodeId(1));
        let a2 = arena.slot(NodeId(1));
        let b = arena.slot(NodeId(2));
        let sent = SimInstant::ZERO;
        let recv = sent + SimDuration::from_millis(5);
        a1.record(0, sent, recv);
        // The second handle observes the first handle's recording.
        assert_eq!(a2.heartbeats_recorded(), 1);
        assert_eq!(b.heartbeats_recorded(), 0);
        assert_eq!(arena.peer_count(), 2);
    }

    #[test]
    fn duplicate_observations_of_one_datagram_count_once() {
        let arena = MonitorArena::new();
        let slot = arena.slot(NodeId(1));
        let sent = SimInstant::ZERO + SimDuration::from_millis(100);
        let recv = sent + SimDuration::from_millis(2);
        // Three groups processing the same batched datagram.
        slot.record(7, sent, recv);
        slot.record(7, sent, recv);
        slot.record(7, sent, recv);
        assert_eq!(slot.heartbeats_recorded(), 1);
        // A genuinely new observation (network duplicate arriving later)
        // still counts.
        slot.record(7, sent, recv + SimDuration::from_millis(9));
        assert_eq!(slot.heartbeats_recorded(), 2);
    }

    #[test]
    fn reset_clears_measurements_but_keeps_sharing() {
        let arena = MonitorArena::new();
        let a = arena.slot(NodeId(1));
        let b = arena.slot(NodeId(1));
        a.record(0, SimInstant::ZERO, SimInstant::ZERO);
        a.reset();
        assert_eq!(b.heartbeats_recorded(), 0);
        b.record(0, SimInstant::ZERO, SimInstant::ZERO);
        assert_eq!(a.heartbeats_recorded(), 1);
    }

    #[test]
    fn dropped_peers_are_pruned() {
        let arena = MonitorArena::new();
        let kept = arena.slot(NodeId(1));
        {
            let _dropped = arena.slot(NodeId(2));
        }
        assert_eq!(arena.peer_count(), 1);
        drop(kept);
        assert_eq!(arena.peer_count(), 0);
    }

    #[test]
    fn pruned_slots_are_recycled() {
        let arena = MonitorArena::new();
        let a = arena.slot(NodeId(1));
        let _b = arena.slot(NodeId(2));
        drop(a);
        arena.prune();
        assert_eq!(arena.peer_count(), 1);
        // A new peer reuses the vacated slot; the surviving record and the
        // newcomer stay distinct.
        let c = arena.slot(NodeId(3));
        c.record(0, SimInstant::ZERO, SimInstant::ZERO);
        assert_eq!(arena.slot(NodeId(2)).heartbeats_recorded(), 0);
        assert_eq!(arena.slot(NodeId(3)).heartbeats_recorded(), 1);
        assert_eq!(arena.peer_count(), 2);
    }

    #[test]
    fn churn_returns_live_handle_count_to_baseline() {
        // Group churn sharing one peer: every join takes a handle, every
        // leave drops it. The arena must neither leak records nor reclaim a
        // record that another group still holds.
        let arena = MonitorArena::new();
        let baseline = arena.slot(NodeId(9)); // one long-lived group
        baseline.record(0, SimInstant::ZERO, SimInstant::ZERO);
        for _ in 0..100 {
            let churned = arena.slot(NodeId(9));
            // The churned group's handle shares the long-lived estimate.
            assert_eq!(churned.heartbeats_recorded(), 1);
            drop(churned);
            arena.prune();
            // The record survives: the baseline group still holds it.
            assert_eq!(arena.peer_count(), 1);
        }
        drop(baseline);
        assert_eq!(arena.peer_count(), 0);
    }

    #[test]
    fn shared_params_are_keyed_by_qos_and_version() {
        let handle = LivenessHandle::detached();
        let cfg = FdConfigurator::default();
        let quality = LinkQuality::perfect();
        let fast = QosSpec::paper_default();
        let slow = QosSpec::paper_default_with_detection(SimDuration::from_secs(8));
        let p_fast = handle.shared_params(1, &fast, &cfg, &quality);
        // A sibling monitor with the same key reuses the cached entry.
        assert_eq!(handle.shared_params(1, &fast, &cfg, &quality), p_fast);
        // A different QoS must never be served another QoS's params.
        let p_slow = handle.shared_params(1, &slow, &cfg, &quality);
        assert_eq!(p_slow.worst_case_detection(), SimDuration::from_secs(8));
        assert_ne!(p_fast, p_slow);
        // The evicted QoS recomputes to the same operating point.
        assert_eq!(handle.shared_params(1, &fast, &cfg, &quality), p_fast);
    }

    #[test]
    fn detached_handles_work_without_an_arena() {
        let solo = LivenessHandle::detached();
        assert_eq!(solo.quality(), LinkQuality::conservative_prior());
        solo.record(0, SimInstant::ZERO, SimInstant::ZERO);
        assert_eq!(solo.heartbeats_recorded(), 1);
    }
}
