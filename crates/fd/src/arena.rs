//! The per-workstation shared liveness arena.
//!
//! The paper's architecture (Figure 2) already gives every workstation a
//! *single* Failure Detector module shared by all groups; historically this
//! implementation nevertheless kept one independent [`PeerMonitor`] — link
//! quality estimator included — per `(group, peer)` pair. With thousands of
//! groups sharing the same peers that is N copies of the same measurement:
//! N estimator windows fed the same packets, N times the memory, and N
//! disagreeing liveness estimates for one physical link.
//!
//! A [`MonitorArena`] fixes the redundancy at the root: it owns one
//! [`PeerLiveness`] record per *peer node* — the link-quality estimator and
//! the heartbeat-arrival bookkeeping — and hands every group's monitor a
//! shared handle to it. The per-group state that genuinely differs between
//! groups (the (η, δ) operating point derived from each group's QoS, the
//! trust state, the freshness horizon, adaptive-tuner overrides) stays in
//! the [`PeerMonitor`]. N groups sharing a peer therefore maintain one
//! liveness estimate with N cheap QoS views layered on top.
//!
//! Because ALIVEs for several groups can ride the same datagram (see
//! `sle-core`'s batched fan-out), the arena deduplicates: the same
//! `(seq, sent_at, received_at)` observation is recorded once no matter how
//! many groups process the datagram.
//!
//! [`PeerMonitor`]: crate::monitor::PeerMonitor

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use sle_sim::actor::NodeId;
use sle_sim::time::SimInstant;

use crate::quality::{LinkQuality, LinkQualityEstimator};

/// How many delay samples each peer's shared estimator keeps.
const ESTIMATOR_WINDOW: usize = 256;

/// The node-level liveness record for one remote peer: everything about the
/// peer that is a property of the *link*, not of any particular group.
#[derive(Debug)]
pub struct PeerLiveness {
    estimator: LinkQualityEstimator,
    /// The last `(seq, sent_at, received_at)` recorded, for deduplicating
    /// the per-group fan-out of one batched datagram.
    last_record: Option<(u64, SimInstant, SimInstant)>,
}

impl PeerLiveness {
    fn new() -> Self {
        PeerLiveness {
            estimator: LinkQualityEstimator::new(ESTIMATOR_WINDOW),
            last_record: None,
        }
    }
}

/// A shared handle to one peer's [`PeerLiveness`] record.
///
/// Cloning the handle shares the record; monitors of different groups hold
/// clones of the same handle. All accessors copy data out under a private
/// lock, so a handle can never deadlock against the arena.
#[derive(Debug, Clone)]
pub struct LivenessHandle {
    slot: Arc<Mutex<PeerLiveness>>,
}

impl LivenessHandle {
    /// A standalone record not registered in any arena (used by monitors
    /// constructed outside a service instance, e.g. in tests).
    pub fn detached() -> Self {
        LivenessHandle {
            slot: Arc::new(Mutex::new(PeerLiveness::new())),
        }
    }

    /// Records the arrival of heartbeat `seq`, stamped `sent_at`, received
    /// at `received_at`.
    ///
    /// The exact same observation recorded twice in a row (the second and
    /// later groups processing one batched datagram) is counted once.
    pub fn record(&self, seq: u64, sent_at: SimInstant, received_at: SimInstant) {
        let mut liveness = self.slot.lock().expect("liveness poisoned");
        if liveness.last_record == Some((seq, sent_at, received_at)) {
            return;
        }
        liveness.last_record = Some((seq, sent_at, received_at));
        liveness.estimator.record(seq, sent_at, received_at);
    }

    /// The current link-quality estimate.
    pub fn quality(&self) -> LinkQuality {
        self.slot
            .lock()
            .expect("liveness poisoned")
            .estimator
            .estimate()
    }

    /// Heartbeats recorded (after deduplication) since creation or the last
    /// reset.
    pub fn heartbeats_recorded(&self) -> u64 {
        self.slot
            .lock()
            .expect("liveness poisoned")
            .estimator
            .heartbeats_recorded()
    }

    /// Discards every measurement (the peer restarted with a new
    /// incarnation, so its old link behaviour no longer applies). The
    /// handle itself — and therefore the sharing between groups — survives.
    pub fn reset(&self) {
        *self.slot.lock().expect("liveness poisoned") = PeerLiveness::new();
    }

    fn is_shared_beyond(&self, holders: usize) -> bool {
        Arc::strong_count(&self.slot) > holders
    }
}

/// The per-workstation registry of shared [`PeerLiveness`] records.
///
/// Cloning an arena shares it: a service instance creates one and hands a
/// clone to every group's failure detector.
#[derive(Debug, Clone, Default)]
pub struct MonitorArena {
    peers: Arc<Mutex<BTreeMap<NodeId, LivenessHandle>>>,
}

impl MonitorArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the shared record for `peer`, creating it on first use.
    ///
    /// This is on the heartbeat-receive hot path, so it is a plain map
    /// lookup: records whose monitors are all gone are reclaimed lazily by
    /// [`MonitorArena::prune`] / [`MonitorArena::peer_count`] instead of
    /// being scanned for here. Unpruned leftovers are bounded by the
    /// workstation universe (one small record per distinct peer), not by
    /// churn.
    pub fn slot(&self, peer: NodeId) -> LivenessHandle {
        let mut peers = self.peers.lock().expect("arena poisoned");
        peers
            .entry(peer)
            .or_insert_with(LivenessHandle::detached)
            .clone()
    }

    /// Drops every record no monitor references any more (a record whose
    /// only holder is the map itself belongs to a peer every group has
    /// stopped monitoring).
    pub fn prune(&self) {
        let mut peers = self.peers.lock().expect("arena poisoned");
        peers.retain(|_, handle| handle.is_shared_beyond(1));
    }

    /// Number of peers currently tracked (after pruning).
    pub fn peer_count(&self) -> usize {
        let mut peers = self.peers.lock().expect("arena poisoned");
        peers.retain(|_, handle| handle.is_shared_beyond(1));
        peers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::time::SimDuration;

    #[test]
    fn slots_are_shared_per_peer() {
        let arena = MonitorArena::new();
        let a1 = arena.slot(NodeId(1));
        let a2 = arena.slot(NodeId(1));
        let b = arena.slot(NodeId(2));
        let sent = SimInstant::ZERO;
        let recv = sent + SimDuration::from_millis(5);
        a1.record(0, sent, recv);
        // The second handle observes the first handle's recording.
        assert_eq!(a2.heartbeats_recorded(), 1);
        assert_eq!(b.heartbeats_recorded(), 0);
        assert_eq!(arena.peer_count(), 2);
    }

    #[test]
    fn duplicate_observations_of_one_datagram_count_once() {
        let arena = MonitorArena::new();
        let slot = arena.slot(NodeId(1));
        let sent = SimInstant::ZERO + SimDuration::from_millis(100);
        let recv = sent + SimDuration::from_millis(2);
        // Three groups processing the same batched datagram.
        slot.record(7, sent, recv);
        slot.record(7, sent, recv);
        slot.record(7, sent, recv);
        assert_eq!(slot.heartbeats_recorded(), 1);
        // A genuinely new observation (network duplicate arriving later)
        // still counts.
        slot.record(7, sent, recv + SimDuration::from_millis(9));
        assert_eq!(slot.heartbeats_recorded(), 2);
    }

    #[test]
    fn reset_clears_measurements_but_keeps_sharing() {
        let arena = MonitorArena::new();
        let a = arena.slot(NodeId(1));
        let b = arena.slot(NodeId(1));
        a.record(0, SimInstant::ZERO, SimInstant::ZERO);
        a.reset();
        assert_eq!(b.heartbeats_recorded(), 0);
        b.record(0, SimInstant::ZERO, SimInstant::ZERO);
        assert_eq!(a.heartbeats_recorded(), 1);
    }

    #[test]
    fn dropped_peers_are_pruned() {
        let arena = MonitorArena::new();
        let kept = arena.slot(NodeId(1));
        {
            let _dropped = arena.slot(NodeId(2));
        }
        assert_eq!(arena.peer_count(), 1);
        drop(kept);
        assert_eq!(arena.peer_count(), 0);
    }

    #[test]
    fn detached_handles_work_without_an_arena() {
        let solo = LivenessHandle::detached();
        assert_eq!(solo.quality(), LinkQuality::conservative_prior());
        solo.record(0, SimInstant::ZERO, SimInstant::ZERO);
        assert_eq!(solo.heartbeats_recorded(), 1);
    }
}
