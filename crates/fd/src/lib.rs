//! # sle-fd — the Chen-Toueg-Aguilera failure detector with QoS
//!
//! Failure detection is at the core of the leader-election service of
//! Schiper & Toueg (DSN 2008): it decides when the current leader must be
//! replaced and which candidates are operational. This crate implements the
//! stochastic failure detector of Chen et al. ("On the Quality of Service of
//! Failure Detectors", IEEE ToC 2002) exactly as it is used by the service
//! (paper Section 3, Figure 1):
//!
//! * [`arena`] — the per-workstation shared liveness arena: one link
//!   estimate per peer, however many groups monitor it,
//! * [`qos`] — the application-facing QoS triple `(T_D^U, T_MR^L, P_A^L)`,
//! * [`quality`] — the Link Quality Estimator (`p_L`, `E[D]`, `S[D]`),
//! * [`config`] — the Failure Detector Configurator computing the heartbeat
//!   interval η and timeout shift δ from the QoS and link estimates,
//! * [`monitor`] — the per-peer NFD-S freshness monitor,
//! * [`detector`] — the per-workstation aggregation used by the service.
//!
//! ## Example
//!
//! ```
//! use sle_fd::prelude::*;
//! use sle_sim::time::{SimDuration, SimInstant};
//! use sle_sim::actor::NodeId;
//!
//! let mut fd = FailureDetector::new(QosSpec::paper_default());
//! let mut now = SimInstant::ZERO;
//! fd.ensure_peer(NodeId(1), now);
//!
//! // Regular heartbeats keep the peer trusted...
//! for seq in 0..20u64 {
//!     now = now + SimDuration::from_millis(250);
//!     fd.on_heartbeat(NodeId(1), seq, now, SimDuration::from_millis(250), now);
//!     assert!(fd.poll(now).is_empty());
//! }
//! // ...silence gets it suspected within the detection bound.
//! let transitions = fd.poll(now + SimDuration::from_secs(2));
//! assert_eq!(transitions.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod arena;
pub mod config;
pub mod detector;
pub mod monitor;
pub mod qos;
pub mod quality;

/// Convenient re-exports of the items most users need.
pub mod prelude {
    pub use crate::arena::{LivenessHandle, MonitorArena};
    pub use crate::config::{ConfiguratorOptions, FdConfigurator, FdParams};
    pub use crate::detector::{FailureDetector, PeerTransition};
    pub use crate::monitor::{PeerMonitor, Transition, TrustState};
    pub use crate::qos::{QosError, QosSpec};
    pub use crate::quality::{LinkQuality, LinkQualityEstimator};
}

pub use arena::{LivenessHandle, MonitorArena};
pub use config::{ConfiguratorOptions, FdConfigurator, FdParams};
pub use detector::{FailureDetector, PeerTransition};
pub use monitor::{PeerMonitor, Transition, TrustState};
pub use qos::{QosError, QosSpec};
pub use quality::{LinkQuality, LinkQualityEstimator};
