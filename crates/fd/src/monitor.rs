//! The per-peer NFD-S freshness monitor.
//!
//! A [`PeerMonitor`] implements the monitoring side of Chen et al.'s NFD-S
//! algorithm for a single remote process: every received ALIVE message,
//! stamped with its send time and the sender's current heartbeat interval,
//! extends a *freshness horizon*; the peer is trusted exactly while the
//! current time is before that horizon. The monitor also owns the link
//! quality estimator and periodically re-runs the configurator so the
//! detector adapts to changing network conditions, as described in
//! Sections 3 and 6.2 of the paper.

use sle_sim::time::{SimDuration, SimInstant};

use crate::arena::LivenessHandle;
use crate::config::{FdConfigurator, FdParams};
use crate::qos::QosSpec;
use crate::quality::LinkQuality;

/// The monitor's current opinion about a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustState {
    /// The peer is believed to be operational.
    Trusted,
    /// The peer is suspected to have crashed.
    Suspected,
}

/// A change of opinion produced by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The peer was suspected and is now trusted again.
    BecameTrusted,
    /// The peer was trusted and is now suspected.
    BecameSuspected,
}

/// How often the FD parameters are recomputed from fresh link estimates.
const RECONFIGURE_EVERY: SimDuration = SimDuration::from_secs(5);

/// Minimum number of heartbeats before measured link quality replaces the
/// conservative prior.
const MIN_SAMPLES_FOR_ESTIMATE: u64 = 8;

/// NFD-S monitoring state for one remote process.
///
/// ```
/// use sle_fd::monitor::{PeerMonitor, Transition, TrustState};
/// use sle_fd::qos::QosSpec;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let start = SimInstant::ZERO;
/// let mut monitor = PeerMonitor::new(QosSpec::paper_default(), start);
/// assert_eq!(monitor.state(), TrustState::Trusted);
///
/// // No heartbeat within the grace period: the peer becomes suspected...
/// let later = start + SimDuration::from_secs(2);
/// assert_eq!(monitor.check(later), Some(Transition::BecameSuspected));
///
/// // ...until a heartbeat arrives and trust is restored.
/// let hb_sent = later + SimDuration::from_millis(10);
/// let received = hb_sent + SimDuration::from_millis(1);
/// let t = monitor.on_heartbeat(1, hb_sent, SimDuration::from_millis(250), received);
/// assert_eq!(t, Some(Transition::BecameTrusted));
/// ```
#[derive(Debug, Clone)]
pub struct PeerMonitor {
    qos: QosSpec,
    configurator: FdConfigurator,
    /// The node-level liveness record (link-quality estimator), possibly
    /// shared with the monitors other groups keep for the same peer.
    /// Cloning a monitor shares the record.
    liveness: LivenessHandle,
    params: FdParams,
    state: TrustState,
    fresh_until: SimInstant,
    last_reconfigure: SimInstant,
    /// Version of the shared quality estimate the current params were
    /// derived from; reconfiguration is skipped while it is unchanged.
    last_quality_version: u64,
    heartbeats: u64,
    /// True once an external tuner took over the parameters; the monitor's
    /// own periodic reconfiguration then stands down.
    externally_tuned: bool,
}

impl PeerMonitor {
    /// Creates a monitor for a peer first observed (e.g. via group
    /// membership) at `now`.
    ///
    /// The peer starts trusted with a grace period of one detection bound, so
    /// that a newly joined member is not instantly suspected before it had a
    /// chance to send its first ALIVE.
    pub fn new(qos: QosSpec, now: SimInstant) -> Self {
        Self::with_configurator(qos, FdConfigurator::default(), now)
    }

    /// Creates a monitor with a custom configurator (and a private
    /// liveness record).
    pub fn with_configurator(qos: QosSpec, configurator: FdConfigurator, now: SimInstant) -> Self {
        Self::with_liveness(qos, configurator, LivenessHandle::detached(), now)
    }

    /// Creates a monitor reading from (and feeding) the given liveness
    /// record — the constructor used by a service instance's per-group
    /// failure detectors, which share one record per peer through a
    /// [`MonitorArena`](crate::arena::MonitorArena) so N groups keep one
    /// link estimate instead of N.
    pub fn with_liveness(
        qos: QosSpec,
        configurator: FdConfigurator,
        liveness: LivenessHandle,
        now: SimInstant,
    ) -> Self {
        let params = configurator.compute(&qos, &LinkQuality::conservative_prior());
        PeerMonitor {
            qos,
            configurator,
            liveness,
            params,
            state: TrustState::Trusted,
            fresh_until: now + qos.detection_time(),
            last_reconfigure: now,
            last_quality_version: 0,
            heartbeats: 0,
            externally_tuned: false,
        }
    }

    /// Applies externally derived parameters (from an adaptive tuner) *live*:
    /// the link-quality estimator, the trust state and the current freshness
    /// horizon are all preserved, so tuning never manufactures a suspicion or
    /// discards measurement history. From this point on the monitor's own
    /// periodic reconfiguration is suppressed — the external tuner owns the
    /// operating point.
    pub fn set_params(&mut self, params: FdParams) {
        self.params = params;
        self.externally_tuned = true;
    }

    /// Whether an external tuner has taken over this monitor's parameters.
    pub fn is_externally_tuned(&self) -> bool {
        self.externally_tuned
    }

    /// The QoS this monitor was created with.
    pub fn qos(&self) -> QosSpec {
        self.qos
    }

    /// The current operational parameters (η, δ).
    pub fn params(&self) -> FdParams {
        self.params
    }

    /// The heartbeat interval this monitor would like the peer to use — this
    /// is the value the service piggybacks on its outgoing messages to the
    /// peer ("the Scheduler schedules the sending of alive messages by q at a
    /// frequency of η").
    pub fn requested_interval(&self) -> SimDuration {
        self.params.interval
    }

    /// The current link-quality estimate for the peer → monitor direction
    /// (shared with every other monitor of the same peer on this
    /// workstation).
    pub fn quality(&self) -> LinkQuality {
        self.liveness.quality()
    }

    /// The monitor's current opinion.
    pub fn state(&self) -> TrustState {
        self.state
    }

    /// Returns true if the peer is currently trusted.
    pub fn is_trusted(&self) -> bool {
        self.state == TrustState::Trusted
    }

    /// The instant at which the current freshness horizon expires. While the
    /// peer is suspected there is no pending deadline and
    /// [`SimInstant::FAR_FUTURE`] is returned.
    pub fn deadline(&self) -> SimInstant {
        match self.state {
            TrustState::Trusted => self.fresh_until,
            TrustState::Suspected => SimInstant::FAR_FUTURE,
        }
    }

    /// Total heartbeats received from the peer.
    pub fn heartbeats_received(&self) -> u64 {
        self.heartbeats
    }

    /// Processes a heartbeat with sequence number `seq`, stamped `sent_at` by
    /// the sender, which declares it is currently sending every
    /// `sender_interval`; the heartbeat was received at `now`.
    ///
    /// Returns `Some(Transition::BecameTrusted)` if this heartbeat restored
    /// trust in a suspected peer.
    pub fn on_heartbeat(
        &mut self,
        seq: u64,
        sent_at: SimInstant,
        sender_interval: SimDuration,
        now: SimInstant,
    ) -> Option<Transition> {
        self.heartbeats += 1;
        // The shared record deduplicates: when several groups process the
        // same batched datagram, the sample is counted once.
        self.liveness.record(seq, sent_at, now);
        self.maybe_reconfigure(now);

        // The freshness contribution of this heartbeat: it proves the sender
        // was alive at `sent_at` and promises another heartbeat one interval
        // later, which we allow δ to arrive. The sender-declared interval is
        // clamped to the detection bound so a mis-configured sender cannot
        // stretch detection arbitrarily.
        let interval = sender_interval.min(self.qos.detection_time());
        let horizon = sent_at + interval + self.params.shift;
        if horizon > self.fresh_until {
            self.fresh_until = horizon;
        }

        if self.state == TrustState::Suspected && now < self.fresh_until {
            self.state = TrustState::Trusted;
            Some(Transition::BecameTrusted)
        } else {
            None
        }
    }

    /// Re-evaluates the trust state at `now` (typically called when a timer
    /// set for [`PeerMonitor::deadline`] fires).
    ///
    /// Returns `Some(Transition::BecameSuspected)` if the freshness horizon
    /// has passed and the peer is newly suspected.
    pub fn check(&mut self, now: SimInstant) -> Option<Transition> {
        if self.state == TrustState::Trusted && now >= self.fresh_until {
            self.state = TrustState::Suspected;
            Some(Transition::BecameSuspected)
        } else {
            None
        }
    }

    fn maybe_reconfigure(&mut self, now: SimInstant) {
        if self.externally_tuned {
            return;
        }
        if now.saturating_since(self.last_reconfigure) < RECONFIGURE_EVERY {
            return;
        }
        self.last_reconfigure = now;
        // The estimator scan is memoized in the shared record, and the
        // version only moves when the estimate changed — so the (η, δ)
        // search below runs once per actual link-quality change, not once
        // per monitor per reconfigure period.
        let (measured, version) = self.liveness.quality_cached(now, RECONFIGURE_EVERY);
        if version == self.last_quality_version {
            return;
        }
        self.last_quality_version = version;
        let quality = if measured.samples as u64 >= MIN_SAMPLES_FOR_ESTIMATE {
            measured
        } else {
            LinkQuality::conservative_prior()
        };
        // The search result is shared through the liveness record too: the
        // sibling monitors other groups keep for this peer almost always ask
        // with the same QoS, so the search runs once per quality change per
        // peer instead of once per (group, peer).
        self.params = self
            .liveness
            .shared_params(version, &self.qos, &self.configurator, &quality);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_monitor() -> PeerMonitor {
        PeerMonitor::new(QosSpec::paper_default(), SimInstant::ZERO)
    }

    #[test]
    fn new_peer_is_trusted_with_grace_period() {
        let monitor = paper_monitor();
        assert!(monitor.is_trusted());
        assert_eq!(
            monitor.deadline(),
            SimInstant::ZERO + SimDuration::from_secs(1)
        );
        assert_eq!(monitor.heartbeats_received(), 0);
    }

    #[test]
    fn silence_leads_to_suspicion_at_the_deadline() {
        let mut monitor = paper_monitor();
        let just_before = monitor.deadline() - SimDuration::from_nanos(1);
        assert_eq!(monitor.check(just_before), None);
        assert!(monitor.is_trusted());
        let at_deadline = monitor.deadline();
        assert_eq!(
            monitor.check(at_deadline),
            Some(Transition::BecameSuspected)
        );
        assert_eq!(monitor.state(), TrustState::Suspected);
        // Further checks do not produce duplicate transitions.
        assert_eq!(monitor.check(at_deadline + SimDuration::from_secs(1)), None);
        assert_eq!(monitor.deadline(), SimInstant::FAR_FUTURE);
    }

    #[test]
    fn heartbeats_maintain_trust_indefinitely() {
        let mut monitor = paper_monitor();
        let interval = SimDuration::from_millis(250);
        let mut now = SimInstant::ZERO;
        for seq in 0..100u64 {
            now += interval;
            let sent = now - SimDuration::from_micros(25);
            assert_eq!(monitor.on_heartbeat(seq, sent, interval, now), None);
            assert_eq!(monitor.check(now), None);
            assert!(monitor.is_trusted());
        }
        assert_eq!(monitor.heartbeats_received(), 100);
    }

    #[test]
    fn crash_is_detected_within_the_bound() {
        let mut monitor = paper_monitor();
        let interval = SimDuration::from_millis(250);
        let mut now = SimInstant::ZERO;
        let mut last_sent = SimInstant::ZERO;
        for seq in 0..20u64 {
            now += interval;
            last_sent = now;
            monitor.on_heartbeat(seq, last_sent, interval, now);
        }
        // The peer crashes right after its last heartbeat. The monitor must
        // suspect it no later than T_D^U after the crash.
        let bound = last_sent + QosSpec::paper_default().detection_time();
        assert!(monitor.deadline() <= bound);
        assert_eq!(
            monitor.check(monitor.deadline()),
            Some(Transition::BecameSuspected)
        );
    }

    #[test]
    fn trust_is_restored_by_a_late_heartbeat() {
        let mut monitor = paper_monitor();
        let t_suspect = monitor.deadline();
        assert_eq!(monitor.check(t_suspect), Some(Transition::BecameSuspected));
        let sent = t_suspect + SimDuration::from_millis(100);
        let received = sent + SimDuration::from_millis(1);
        assert_eq!(
            monitor.on_heartbeat(0, sent, SimDuration::from_millis(250), received),
            Some(Transition::BecameTrusted)
        );
        assert!(monitor.is_trusted());
    }

    #[test]
    fn stale_heartbeat_does_not_restore_trust() {
        let mut monitor = paper_monitor();
        let t_suspect = monitor.deadline();
        monitor.check(t_suspect);
        // A heartbeat sent long ago (delivered very late) must not flip the
        // monitor back to trusted if its freshness horizon is already past.
        let sent = SimInstant::ZERO + SimDuration::from_millis(10);
        let received = t_suspect + SimDuration::from_secs(5);
        assert_eq!(
            monitor.on_heartbeat(0, sent, SimDuration::from_millis(250), received),
            None
        );
        assert!(!monitor.is_trusted());
    }

    #[test]
    fn sender_interval_is_clamped_to_detection_bound() {
        let mut monitor = paper_monitor();
        let sent = SimInstant::ZERO + SimDuration::from_millis(100);
        monitor.on_heartbeat(0, sent, SimDuration::from_secs(60), sent);
        // Even though the sender claims a 60 s interval, the freshness horizon
        // may extend at most interval(clamped to 1s) + δ past the send time.
        assert!(monitor.deadline() <= sent + SimDuration::from_secs(2));
    }

    #[test]
    fn reconfiguration_adapts_to_measured_quality() {
        let mut monitor = paper_monitor();
        let initial = monitor.requested_interval();
        // Feed a long run of heartbeats over a clean, fast link; after the
        // reconfiguration interval the requested interval should relax to the
        // cap for a clean link (250 ms for the default QoS).
        let interval = SimDuration::from_millis(50);
        let mut now = SimInstant::ZERO;
        for seq in 0..400u64 {
            now += interval;
            let sent = now - SimDuration::from_micros(25);
            monitor.on_heartbeat(seq, sent, interval, now);
        }
        let relaxed = monitor.requested_interval();
        assert!(
            relaxed >= initial,
            "interval should not shrink on a clean link"
        );
        assert_eq!(relaxed, SimDuration::from_millis(250));
        assert!(monitor.quality().loss_probability < 0.01);
    }

    #[test]
    fn set_params_applies_live_without_resetting_state() {
        let mut monitor = paper_monitor();
        // Build up estimator history.
        let interval = SimDuration::from_millis(100);
        let mut now = SimInstant::ZERO;
        for seq in 0..20u64 {
            now += interval;
            monitor.on_heartbeat(seq, now - SimDuration::from_millis(2), interval, now);
        }
        let heartbeats_before = monitor.heartbeats_received();
        let quality_before = monitor.quality();
        let deadline_before = monitor.deadline();

        let tuned = FdParams {
            interval: SimDuration::from_millis(50),
            shift: SimDuration::from_millis(150),
        };
        monitor.set_params(tuned);
        assert!(monitor.is_externally_tuned());
        assert_eq!(monitor.params(), tuned);
        assert_eq!(monitor.requested_interval(), SimDuration::from_millis(50));
        // Estimator state, trust state and horizon survive the update.
        assert_eq!(monitor.heartbeats_received(), heartbeats_before);
        assert_eq!(monitor.quality(), quality_before);
        assert_eq!(monitor.deadline(), deadline_before);
        assert!(monitor.is_trusted());

        // Heartbeats after the update extend the horizon using the tuned
        // shift (the pre-update horizon stays valid until it expires — the
        // horizon is monotone, so tuning can never manufacture a suspicion).
        let old_deadline = monitor.deadline();
        assert_eq!(
            monitor.check(old_deadline),
            Some(Transition::BecameSuspected)
        );
        let sent = old_deadline + SimDuration::from_millis(100);
        monitor.on_heartbeat(20, sent, SimDuration::from_millis(50), sent);
        assert!(monitor.is_trusted());
        assert_eq!(
            monitor.deadline(),
            sent + SimDuration::from_millis(50) + tuned.shift
        );
    }

    #[test]
    fn external_tuning_suppresses_self_reconfiguration() {
        let mut monitor = paper_monitor();
        let tuned = FdParams {
            interval: SimDuration::from_millis(40),
            shift: SimDuration::from_millis(60),
        };
        monitor.set_params(tuned);
        // Feed far more than RECONFIGURE_EVERY worth of heartbeats; the
        // monitor must keep the externally chosen operating point.
        let interval = SimDuration::from_millis(100);
        let mut now = SimInstant::ZERO;
        for seq in 0..200u64 {
            now += interval;
            monitor.on_heartbeat(seq, now, interval, now);
        }
        assert_eq!(monitor.params(), tuned);
    }

    #[test]
    fn params_accessors_are_consistent() {
        let monitor = paper_monitor();
        assert_eq!(monitor.params().interval, monitor.requested_interval());
        assert_eq!(monitor.qos(), QosSpec::paper_default());
        assert_eq!(
            monitor.params().worst_case_detection(),
            QosSpec::paper_default().detection_time()
        );
    }
}
