//! The aggregated failure detector of one service instance.
//!
//! The paper's architecture (Figure 2) gives every service instance a single
//! Failure Detector module shared by all groups and applications on that
//! workstation: it monitors the other service instances and reports
//! trust/suspect transitions to the Group Maintenance and Leader Election
//! modules. [`FailureDetector`] is that module: a collection of per-peer
//! [`PeerMonitor`]s plus the bookkeeping needed to drive them from a single
//! timer.

use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::arena::MonitorArena;
use crate::config::FdConfigurator;
use crate::monitor::{PeerMonitor, Transition, TrustState};
use crate::qos::QosSpec;
use crate::quality::LinkQuality;

/// A trust/suspect notification about a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerTransition {
    /// The peer whose status changed.
    pub peer: NodeId,
    /// The direction of the change.
    pub transition: Transition,
}

/// The failure-detector module of one service instance.
///
/// ```
/// use sle_fd::detector::FailureDetector;
/// use sle_fd::qos::QosSpec;
/// use sle_sim::actor::NodeId;
/// use sle_sim::time::{SimDuration, SimInstant};
///
/// let mut fd = FailureDetector::new(QosSpec::paper_default());
/// let now = SimInstant::ZERO;
/// fd.ensure_peer(NodeId(1), now);
/// assert!(fd.is_trusted(NodeId(1)));
///
/// // Two seconds of silence: polling reports the suspicion.
/// let later = now + SimDuration::from_secs(2);
/// let transitions = fd.poll(later);
/// assert_eq!(transitions.len(), 1);
/// assert!(!fd.is_trusted(NodeId(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FailureDetector {
    qos: QosSpec,
    configurator: FdConfigurator,
    arena: MonitorArena,
    /// Monitors sorted by peer id: lookups are binary searches over
    /// contiguous memory, iteration is in deterministic id order. Peer sets
    /// are bounded by group fan-out, so inserts/removals are cheap.
    monitors: Vec<(NodeId, PeerMonitor)>,
}

impl FailureDetector {
    /// Creates a failure detector using `qos` for every monitored peer,
    /// with a private liveness arena.
    pub fn new(qos: QosSpec) -> Self {
        Self::with_configurator(qos, FdConfigurator::default())
    }

    /// Creates a failure detector with a custom configurator (and a
    /// private liveness arena).
    pub fn with_configurator(qos: QosSpec, configurator: FdConfigurator) -> Self {
        Self::with_arena(qos, configurator, MonitorArena::new())
    }

    /// Creates a failure detector whose per-peer liveness records live in
    /// `arena` — the constructor service instances use so every group on
    /// one workstation shares a single link estimate per peer (the
    /// paper's "one Failure Detector module per workstation", Figure 2).
    pub fn with_arena(qos: QosSpec, configurator: FdConfigurator, arena: MonitorArena) -> Self {
        FailureDetector {
            qos,
            configurator,
            arena,
            monitors: Vec::new(),
        }
    }

    #[inline]
    fn find(&self, peer: NodeId) -> Result<usize, usize> {
        self.monitors.binary_search_by_key(&peer, |&(p, _)| p)
    }

    #[inline]
    fn monitor(&self, peer: NodeId) -> Option<&PeerMonitor> {
        self.find(peer).ok().map(|i| &self.monitors[i].1)
    }

    /// The QoS used for newly monitored peers.
    pub fn qos(&self) -> QosSpec {
        self.qos
    }

    /// Starts monitoring `peer` if it is not already monitored.
    pub fn ensure_peer(&mut self, peer: NodeId, now: SimInstant) {
        if let Err(i) = self.find(peer) {
            let monitor =
                PeerMonitor::with_liveness(self.qos, self.configurator, self.arena.slot(peer), now);
            self.monitors.insert(i, (peer, monitor));
        }
    }

    /// Stops monitoring `peer` (e.g. because it left every shared group).
    pub fn remove_peer(&mut self, peer: NodeId) {
        if let Ok(i) = self.find(peer) {
            self.monitors.remove(i);
        }
        // Reclaim shared records nobody monitors any more. This is the
        // rare membership-churn path, not the heartbeat hot path.
        self.arena.prune();
    }

    /// Discards any state about `peer` and starts monitoring it afresh
    /// (used when a peer restarts with a new incarnation). The shared
    /// liveness record is wiped in place, so every other group monitoring
    /// the peer starts measuring the new incarnation too.
    pub fn reset_peer(&mut self, peer: NodeId, now: SimInstant) {
        let slot = self.arena.slot(peer);
        slot.reset();
        let monitor = PeerMonitor::with_liveness(self.qos, self.configurator, slot, now);
        match self.find(peer) {
            Ok(i) => self.monitors[i].1 = monitor,
            Err(i) => self.monitors.insert(i, (peer, monitor)),
        }
    }

    /// Number of peers currently monitored.
    pub fn peer_count(&self) -> usize {
        self.monitors.len()
    }

    /// Iterates over the monitored peers (in ascending id order).
    pub fn peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.monitors.iter().map(|&(p, _)| p)
    }

    /// Returns whether `peer` is currently trusted. Unmonitored peers are
    /// not trusted.
    pub fn is_trusted(&self, peer: NodeId) -> bool {
        self.monitor(peer).map(|m| m.is_trusted()).unwrap_or(false)
    }

    /// Iterates over the peers currently trusted.
    pub fn trusted_peers(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.monitors
            .iter()
            .filter(|(_, m)| m.is_trusted())
            .map(|&(peer, _)| peer)
    }

    /// The trust state of `peer`, if monitored.
    pub fn state(&self, peer: NodeId) -> Option<TrustState> {
        self.monitor(peer).map(|m| m.state())
    }

    /// The heartbeat interval this detector would like `peer` to use when
    /// sending to us (piggybacked on outgoing messages).
    pub fn requested_interval(&self, peer: NodeId) -> Option<SimDuration> {
        self.monitor(peer).map(|m| m.requested_interval())
    }

    /// The link-quality estimate for `peer`, if monitored.
    pub fn quality(&self, peer: NodeId) -> Option<LinkQuality> {
        self.monitor(peer).map(|m| m.quality())
    }

    /// The operating parameters (η, δ) currently used for `peer`.
    pub fn params(&self, peer: NodeId) -> Option<crate::config::FdParams> {
        self.monitor(peer).map(|m| m.params())
    }

    /// Applies externally derived parameters to `peer`'s monitor, live (see
    /// [`PeerMonitor::set_params`]). Returns false if the peer is unknown.
    pub fn set_peer_params(&mut self, peer: NodeId, params: crate::config::FdParams) -> bool {
        match self.find(peer) {
            Ok(i) => {
                self.monitors[i].1.set_params(params);
                true
            }
            Err(_) => false,
        }
    }

    /// Processes a heartbeat from `peer`.
    ///
    /// The peer is implicitly added to the monitored set if unknown.
    /// Returns the transition (back to trusted) if the heartbeat revived a
    /// suspected peer.
    pub fn on_heartbeat(
        &mut self,
        peer: NodeId,
        seq: u64,
        sent_at: SimInstant,
        sender_interval: SimDuration,
        now: SimInstant,
    ) -> Option<PeerTransition> {
        self.ensure_peer(peer, now);
        let i = self.find(peer).expect("peer was just inserted");
        self.monitors[i]
            .1
            .on_heartbeat(seq, sent_at, sender_interval, now)
            .map(|transition| PeerTransition { peer, transition })
    }

    /// Re-evaluates every monitor at `now` and returns all transitions (in
    /// practice, new suspicions whose freshness horizon has expired).
    pub fn poll(&mut self, now: SimInstant) -> Vec<PeerTransition> {
        let mut transitions = Vec::new();
        for (peer, monitor) in self.monitors.iter_mut() {
            if let Some(transition) = monitor.check(now) {
                transitions.push(PeerTransition {
                    peer: *peer,
                    transition,
                });
            }
        }
        transitions
    }

    /// The earliest deadline among all monitors — the time at which the next
    /// suspicion could occur and therefore the time at which the owner should
    /// call [`FailureDetector::poll`] again.
    pub fn next_deadline(&self) -> Option<SimInstant> {
        self.monitors
            .iter()
            .map(|(_, m)| m.deadline())
            .filter(|&d| d != SimInstant::FAR_FUTURE)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd() -> FailureDetector {
        FailureDetector::new(QosSpec::paper_default())
    }

    #[test]
    fn unknown_peers_are_not_trusted() {
        let detector = fd();
        assert!(!detector.is_trusted(NodeId(3)));
        assert_eq!(detector.state(NodeId(3)), None);
        assert_eq!(detector.peer_count(), 0);
        assert_eq!(detector.next_deadline(), None);
    }

    #[test]
    fn heartbeat_implicitly_registers_peer() {
        let mut detector = fd();
        let now = SimInstant::ZERO + SimDuration::from_millis(10);
        detector.on_heartbeat(NodeId(2), 0, now, SimDuration::from_millis(250), now);
        assert_eq!(detector.peer_count(), 1);
        assert!(detector.is_trusted(NodeId(2)));
        assert!(detector.requested_interval(NodeId(2)).is_some());
        assert!(detector.quality(NodeId(2)).is_some());
    }

    #[test]
    fn poll_reports_suspicions_and_next_deadline_shrinks() {
        let mut detector = fd();
        let now = SimInstant::ZERO;
        detector.ensure_peer(NodeId(1), now);
        detector.ensure_peer(NodeId(2), now + SimDuration::from_millis(500));
        let d1 = detector.next_deadline().unwrap();
        assert_eq!(d1, now + SimDuration::from_secs(1));

        // After the first deadline only peer 1 is suspected.
        let transitions = detector.poll(d1);
        assert_eq!(
            transitions,
            vec![PeerTransition {
                peer: NodeId(1),
                transition: Transition::BecameSuspected
            }]
        );
        assert!(!detector.is_trusted(NodeId(1)));
        assert!(detector.is_trusted(NodeId(2)));
        assert_eq!(
            detector.trusted_peers().collect::<Vec<_>>(),
            vec![NodeId(2)]
        );

        // The next deadline now belongs to peer 2.
        assert_eq!(
            detector.next_deadline().unwrap(),
            now + SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn heartbeat_revives_suspected_peer() {
        let mut detector = fd();
        detector.ensure_peer(NodeId(1), SimInstant::ZERO);
        let deadline = detector.next_deadline().unwrap();
        detector.poll(deadline);
        assert!(!detector.is_trusted(NodeId(1)));

        let sent = deadline + SimDuration::from_millis(5);
        let transition = detector.on_heartbeat(
            NodeId(1),
            7,
            sent,
            SimDuration::from_millis(250),
            sent + SimDuration::from_millis(1),
        );
        assert_eq!(
            transition,
            Some(PeerTransition {
                peer: NodeId(1),
                transition: Transition::BecameTrusted
            })
        );
        assert!(detector.is_trusted(NodeId(1)));
    }

    #[test]
    fn remove_and_reset_peer() {
        let mut detector = fd();
        detector.ensure_peer(NodeId(1), SimInstant::ZERO);
        detector.poll(SimInstant::ZERO + SimDuration::from_secs(2));
        assert!(!detector.is_trusted(NodeId(1)));

        // Reset gives the peer a fresh grace period.
        detector.reset_peer(NodeId(1), SimInstant::ZERO + SimDuration::from_secs(2));
        assert!(detector.is_trusted(NodeId(1)));

        detector.remove_peer(NodeId(1));
        assert_eq!(detector.peer_count(), 0);
        assert!(!detector.is_trusted(NodeId(1)));
    }

    #[test]
    fn peers_iterator_is_sorted() {
        let mut detector = fd();
        for id in [5u32, 1, 3] {
            detector.ensure_peer(NodeId(id), SimInstant::ZERO);
        }
        let peers: Vec<NodeId> = detector.peers().collect();
        assert_eq!(peers, vec![NodeId(1), NodeId(3), NodeId(5)]);
        assert_eq!(detector.qos(), QosSpec::paper_default());
    }

    #[test]
    fn set_peer_params_targets_one_monitor() {
        let mut detector = fd();
        detector.ensure_peer(NodeId(1), SimInstant::ZERO);
        detector.ensure_peer(NodeId(2), SimInstant::ZERO);
        let tuned = crate::config::FdParams {
            interval: SimDuration::from_millis(25),
            shift: SimDuration::from_millis(75),
        };
        assert!(detector.set_peer_params(NodeId(1), tuned));
        assert!(!detector.set_peer_params(NodeId(9), tuned));
        assert_eq!(detector.params(NodeId(1)), Some(tuned));
        assert_eq!(detector.requested_interval(NodeId(1)), Some(tuned.interval));
        assert_ne!(detector.params(NodeId(2)), Some(tuned));
    }

    #[test]
    fn detectors_sharing_an_arena_share_liveness_estimates() {
        // Two "groups" on one workstation monitoring the same peer: the
        // link estimate must be common, the trust state per group.
        let arena = MonitorArena::new();
        let mut group_a = FailureDetector::with_arena(
            QosSpec::paper_default(),
            FdConfigurator::default(),
            arena.clone(),
        );
        let mut group_b = FailureDetector::with_arena(
            QosSpec::paper_default_with_detection(SimDuration::from_millis(500)),
            FdConfigurator::default(),
            arena.clone(),
        );
        let peer = NodeId(7);
        let interval = SimDuration::from_millis(100);
        let mut now = SimInstant::ZERO;
        group_a.ensure_peer(peer, now);
        group_b.ensure_peer(peer, now);
        for seq in 0..50u64 {
            now += interval;
            // Only group A's monitor processes the heartbeats...
            group_a.on_heartbeat(peer, seq, now - SimDuration::from_millis(3), interval, now);
        }
        // ...yet group B sees the same measured link quality.
        let qa = group_a.quality(peer).unwrap();
        let qb = group_b.quality(peer).unwrap();
        assert_eq!(qa, qb);
        assert!((qa.delay_mean.as_millis_f64() - 3.0).abs() < 0.5);
        assert_eq!(arena.peer_count(), 1);

        // Trust remains per group: B heard nothing directly, so its
        // freshness horizon (armed at ensure time) expires independently.
        let b_deadline = group_b.next_deadline().unwrap();
        assert!(group_a.next_deadline().unwrap() > b_deadline);
        assert_eq!(group_b.poll(b_deadline).len(), 1);
        assert!(!group_b.is_trusted(peer));
        assert!(group_a.is_trusted(peer));

        // Dropping both monitors releases the shared record.
        group_a.remove_peer(peer);
        group_b.remove_peer(peer);
        assert_eq!(arena.peer_count(), 0);
    }

    #[test]
    fn steady_heartbeats_never_trigger_suspicion() {
        let mut detector = fd();
        let interval = SimDuration::from_millis(250);
        let mut now = SimInstant::ZERO;
        detector.ensure_peer(NodeId(1), now);
        let mut suspicions = 0;
        for seq in 0..200u64 {
            now += interval;
            detector.on_heartbeat(NodeId(1), seq, now, interval, now);
            suspicions += detector.poll(now).len();
        }
        assert_eq!(suspicions, 0);
    }
}
