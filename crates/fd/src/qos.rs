//! Quality-of-service specifications for failure detection.
//!
//! Following Chen, Toueg and Aguilera ("On the Quality of Service of Failure
//! Detectors", IEEE ToC 2002) and Section 3 of the DSN 2008 paper, an
//! application expresses the QoS it needs from the monitoring of a process q
//! with three parameters:
//!
//! * `T_D^U` — an upper bound on the time to detect q's crash,
//! * `T_MR^L` — a lower bound on the expected time between two consecutive
//!   mistakes (false suspicions) about q,
//! * `P_A^L` — a lower bound on the probability that, at a random time, the
//!   detector's opinion about q is correct.

use sle_sim::time::SimDuration;

/// Errors produced when validating a [`QosSpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QosError {
    /// The detection-time bound is zero.
    ZeroDetectionTime,
    /// The mistake-recurrence bound is zero.
    ZeroMistakeRecurrence,
    /// The availability bound is outside `(0, 1]`.
    InvalidAvailability,
}

impl std::fmt::Display for QosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QosError::ZeroDetectionTime => write!(f, "detection time bound must be positive"),
            QosError::ZeroMistakeRecurrence => {
                write!(f, "mistake recurrence bound must be positive")
            }
            QosError::InvalidAvailability => {
                write!(f, "availability bound must lie in (0, 1]")
            }
        }
    }
}

impl std::error::Error for QosError {}

/// The QoS requirement `(T_D^U, T_MR^L, P_A^L)` of a failure-detector
/// monitoring relationship.
///
/// ```
/// use sle_fd::qos::QosSpec;
/// use sle_sim::time::SimDuration;
///
/// // The paper's default: detect within 1 s, at most one mistake every
/// // 100 days, correct 99.999988% of the time.
/// let qos = QosSpec::paper_default();
/// assert_eq!(qos.detection_time(), SimDuration::from_secs(1));
///
/// let fast = QosSpec::new(
///     SimDuration::from_millis(100),
///     SimDuration::from_secs(86_400),
///     0.9999,
/// ).unwrap();
/// assert!(fast.detection_time() < qos.detection_time());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosSpec {
    detection_time: SimDuration,
    mistake_recurrence: SimDuration,
    availability: f64,
}

impl QosSpec {
    /// Creates a QoS spec after validating its parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`QosError`] if the detection time or mistake recurrence is
    /// zero, or the availability is outside `(0, 1]`.
    pub fn new(
        detection_time: SimDuration,
        mistake_recurrence: SimDuration,
        availability: f64,
    ) -> Result<Self, QosError> {
        if detection_time.is_zero() {
            return Err(QosError::ZeroDetectionTime);
        }
        if mistake_recurrence.is_zero() {
            return Err(QosError::ZeroMistakeRecurrence);
        }
        if !(availability > 0.0 && availability <= 1.0) {
            return Err(QosError::InvalidAvailability);
        }
        Ok(QosSpec {
            detection_time,
            mistake_recurrence,
            availability,
        })
    }

    /// The QoS used for (almost) every experiment in the paper (Section 6.1):
    /// `T_D^U` = 1 s, `T_MR^L` = 100 days, `P_A^L` = 0.99999988.
    pub fn paper_default() -> Self {
        QosSpec {
            detection_time: SimDuration::from_secs(1),
            mistake_recurrence: SimDuration::from_secs(100 * 24 * 3600),
            availability: 0.999_999_88,
        }
    }

    /// The paper's default with a different crash-detection bound `T_D^U`,
    /// as varied in Figure 8.
    pub fn paper_default_with_detection(detection_time: SimDuration) -> Self {
        let mut spec = Self::paper_default();
        spec.detection_time = detection_time.max(SimDuration::from_millis(1));
        spec
    }

    /// Upper bound on crash-detection time, `T_D^U`.
    pub fn detection_time(&self) -> SimDuration {
        self.detection_time
    }

    /// Lower bound on the mean time between consecutive mistakes, `T_MR^L`.
    pub fn mistake_recurrence(&self) -> SimDuration {
        self.mistake_recurrence
    }

    /// Lower bound on the query accuracy probability, `P_A^L`.
    pub fn availability(&self) -> f64 {
        self.availability
    }

    /// The implied upper bound on the expected duration of a mistake,
    /// `T_M^U = (1 − P_A^L) · T_MR^L`.
    ///
    /// With the paper's defaults this is roughly one second: mistakes must be
    /// both very rare and short-lived.
    pub fn mistake_duration_bound(&self) -> SimDuration {
        self.mistake_recurrence.mul_f64(1.0 - self.availability)
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let qos = QosSpec::paper_default();
        assert_eq!(qos.detection_time(), SimDuration::from_secs(1));
        assert_eq!(qos.mistake_recurrence(), SimDuration::from_secs(8_640_000));
        assert!((qos.availability() - 0.999_999_88).abs() < 1e-12);
        // T_M^U = 0.12e-6 * 8.64e6 s ~ 1.04 s
        let tm = qos.mistake_duration_bound().as_secs_f64();
        assert!((tm - 1.0368).abs() < 0.01, "T_M^U = {tm}");
        assert_eq!(QosSpec::default(), qos);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(
            QosSpec::new(SimDuration::ZERO, SimDuration::from_secs(1), 0.9),
            Err(QosError::ZeroDetectionTime)
        );
        assert_eq!(
            QosSpec::new(SimDuration::from_secs(1), SimDuration::ZERO, 0.9),
            Err(QosError::ZeroMistakeRecurrence)
        );
        assert_eq!(
            QosSpec::new(SimDuration::from_secs(1), SimDuration::from_secs(1), 0.0),
            Err(QosError::InvalidAvailability)
        );
        assert_eq!(
            QosSpec::new(SimDuration::from_secs(1), SimDuration::from_secs(1), 1.5),
            Err(QosError::InvalidAvailability)
        );
        assert!(QosSpec::new(SimDuration::from_secs(1), SimDuration::from_secs(1), 1.0).is_ok());
    }

    #[test]
    fn error_messages_are_lowercase_prose() {
        assert_eq!(
            QosError::ZeroDetectionTime.to_string(),
            "detection time bound must be positive"
        );
        assert_eq!(
            QosError::InvalidAvailability.to_string(),
            "availability bound must lie in (0, 1]"
        );
    }

    #[test]
    fn detection_override_clamps_to_a_millisecond() {
        let qos = QosSpec::paper_default_with_detection(SimDuration::ZERO);
        assert_eq!(qos.detection_time(), SimDuration::from_millis(1));
        let qos = QosSpec::paper_default_with_detection(SimDuration::from_millis(250));
        assert_eq!(qos.detection_time(), SimDuration::from_millis(250));
        assert_eq!(
            qos.mistake_recurrence(),
            QosSpec::paper_default().mistake_recurrence()
        );
    }
}
