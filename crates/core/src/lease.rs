//! Leader leases and fencing tokens — the application-facing safety layer.
//!
//! The election service answers "who leads?", but an application acting on
//! that answer needs two more things (the Nerio lesson from PAPERS.md):
//!
//! * a **fencing token** — a value totally ordered across *every* leadership
//!   term of the group, so a state machine can reject writes from a deposed
//!   leader however delayed they arrive, and
//! * a **lease** — a validity window derived from the failure-detection QoS
//!   bound T_D, so a leader only serves requests while its claim to the
//!   leadership is fresh.
//!
//! ## Token monotonicity
//!
//! A [`FencingToken`] orders lexicographically by
//! `(accusation_time, node, epoch, incarnation)`. Successive leaderships
//! mint strictly increasing tokens (see `docs/APP.md` for the full
//! argument):
//!
//! 1. **Distinct successive leaders.** The election ranks candidates by
//!    `(accusation_time, id)` and the *minimum* rank leads, so a successor
//!    necessarily has a strictly larger rank than the leader it replaces —
//!    and the token's two leading fields *are* the rank.
//! 2. **Same leader, re-accused.** A valid accusation sets the elector's
//!    accusation time to "now", which is later than any instant at which the
//!    previous token was minted.
//! 3. **Same leader, voluntary yield and re-win (Ωl).** Withdrawing and
//!    re-entering each bump the accusation epoch — and elector recreation
//!    preserves the epoch across listener/candidate transitions
//!    (`AnyElector::new_with_epoch`), so the epoch never moves backwards.
//!    This is exactly why the stale-epoch accusation guard in
//!    `ServiceNode::handle_accusation` is part of the fencing story: a
//!    replayed old accusation that reset the rank would forge a token
//!    collision.
//! 4. **Crash and recovery.** A recovered workstation runs a higher
//!    incarnation, and rejoins with a fresh (later) accusation time.
//!
//! ## Lease expiry and the T_D bound
//!
//! A lease is valid for the group's configured detection time T_D after its
//! last renewal, and the leader renews only while it is alive and emitting
//! ALIVEs. Under the paper's crash fault model a crashed leader therefore
//! stops renewing at its crash instant t, its last lease dies by t + T_D,
//! and no survivor's detector can complete detection — the precondition for
//! a successor's self-election — before t + T_D either. By the time a
//! successor can mint a token, every lease of the deposed leader has
//! provably expired. (Fencing tokens, not leases, carry the safety argument
//! under arbitrary message delay; the lease bound is what makes the
//! *unavailability window* of `bench_app` a QoS-derived quantity.)
//!
//! Two hardening rules in `ServiceNode::check_leader` close the gap the
//! election's *transient* disagreements would otherwise open (Ω guarantees
//! eventual agreement, not instantaneous):
//!
//! * **Settle delay** — a node mints only after its elector has output
//!   *itself* continuously for one full lease term T_D. Transient claimants
//!   yield before the delay elapses and never serve, so two leases are
//!   never simultaneously valid even while the electors disagree.
//! * **Out-minting** — a minted token must strictly dominate both the
//!   node's previously granted token and the highest remote grant it has
//!   observed, raising the accusation-time component past that floor if
//!   necessary. A claimant that *did* broadcast a grant (under older, more
//!   permissive builds or after pathological timing) therefore cannot fence
//!   out the rightful leader forever: the rightful leader re-mints above
//!   the observed token on its next check.

use sle_sim::actor::NodeId;
use sle_sim::time::{SimDuration, SimInstant};

use crate::process::GroupId;

/// A fencing token: one totally ordered value per leadership term.
///
/// Ordering is lexicographic by field — `(accusation_time, node, epoch,
/// incarnation)` — which makes tokens of successive leaderships strictly
/// increasing (see the module docs). Wire encoding is 28 bytes (see
/// `docs/WIRE.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FencingToken {
    /// The leader's accusation time — the dominant rank component of the
    /// election.
    pub accusation_time: SimInstant,
    /// The leader's node id — the rank tiebreak.
    pub node: NodeId,
    /// The leader's accusation epoch at mint time. Never resets within a
    /// node's life (elector recreation preserves it), so voluntary
    /// yield/re-win cycles still advance the token.
    pub epoch: u64,
    /// The leader's workstation incarnation (bumped on crash recovery).
    pub incarnation: u64,
}

impl FencingToken {
    /// Encoded size of a token: accusation time (8) + node (4) + epoch (8)
    /// + incarnation (8).
    pub const WIRE_SIZE: usize = 8 + 4 + 8 + 8;
}

impl std::fmt::Display for FencingToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "token({}, {}, e{}, i{})",
            self.accusation_time, self.node, self.epoch, self.incarnation
        )
    }
}

/// A leader lease: a fencing token plus the validity window it was granted
/// for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaderLease {
    /// The token this lease carries.
    pub token: FencingToken,
    /// When the lease was last minted or renewed (leader's clock).
    pub renewed_at: SimInstant,
    /// How long past `renewed_at` the lease stays valid — the group's
    /// failure-detection bound T_D.
    pub ttl: SimDuration,
}

impl LeaderLease {
    /// When this lease expires unless renewed first.
    pub fn expires_at(&self) -> SimInstant {
        self.renewed_at + self.ttl
    }

    /// Whether the lease is still valid at `now`.
    pub fn valid_at(&self, now: SimInstant) -> bool {
        now < self.expires_at()
    }
}

/// A write rejected because its fencing token is older than the acceptor's
/// high-water mark: the signature of a deposed leader's delayed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaleToken {
    /// The token the rejected request carried.
    pub presented: FencingToken,
    /// The acceptor's high-water mark at rejection time.
    pub high_water: FencingToken,
}

impl std::fmt::Display for StaleToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stale fencing token: presented {} < high water {}",
            self.presented, self.high_water
        )
    }
}

/// A fenced replicated state machine driven by the service.
///
/// Installing one on a [`crate::node::ServiceNode`] (via
/// [`crate::node::ServiceNode::install_app`] or
/// [`crate::runtime::ClusterHandle::install_app`]) makes the node serve
/// `ClientRequest` messages while it holds a valid leader lease: each
/// accepted request is applied with the lease's fencing token, and the
/// implementation must reject tokens below its high-water mark.
pub trait FencedApp: Send + std::fmt::Debug {
    /// Applies one request under `token`, returning the resulting value.
    ///
    /// # Errors
    ///
    /// Returns [`StaleToken`] when `token` is below the high-water mark of
    /// tokens already accepted — the fencing check this trait exists for.
    fn apply(
        &mut self,
        group: GroupId,
        token: FencingToken,
        payload: u64,
    ) -> Result<u64, StaleToken>;

    /// Observes a token without a write attached (a `LeaseGrant` broadcast
    /// heard from the current leader). Implementations should advance their
    /// high-water mark so a deposed leader's delayed writes are rejected
    /// even before the new leader's first write arrives. The default is a
    /// no-op.
    fn observe_token(&mut self, group: GroupId, token: FencingToken) {
        let _ = (group, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimInstant {
        SimInstant::ZERO + SimDuration::from_millis(ms)
    }

    fn token(ms: u64, node: u32, epoch: u64, incarnation: u64) -> FencingToken {
        FencingToken {
            accusation_time: at(ms),
            node: NodeId(node),
            epoch,
            incarnation,
        }
    }

    #[test]
    fn token_order_is_lexicographic() {
        // Accusation time dominates…
        assert!(token(1, 9, 9, 9) < token(2, 0, 0, 0));
        // …then node id…
        assert!(token(1, 1, 9, 9) < token(1, 2, 0, 0));
        // …then epoch…
        assert!(token(1, 1, 1, 9) < token(1, 1, 2, 0));
        // …then incarnation.
        assert!(token(1, 1, 1, 1) < token(1, 1, 1, 2));
        assert_eq!(token(1, 1, 1, 1), token(1, 1, 1, 1));
    }

    #[test]
    fn lease_expires_after_ttl() {
        let lease = LeaderLease {
            token: token(0, 1, 0, 0),
            renewed_at: at(100),
            ttl: SimDuration::from_millis(250),
        };
        assert_eq!(lease.expires_at(), at(350));
        assert!(lease.valid_at(at(100)));
        assert!(lease.valid_at(at(349)));
        assert!(!lease.valid_at(at(350)));
    }

    #[test]
    fn displays_are_informative() {
        let stale = StaleToken {
            presented: token(1, 2, 3, 4),
            high_water: token(5, 6, 7, 8),
        };
        let text = stale.to_string();
        assert!(text.contains("stale fencing token"));
        assert!(text.contains("e3"));
        assert!(text.contains("i8"));
    }
}
