//! The wire protocol spoken between service instances.
//!
//! Three message families exist, mirroring the paper's architecture
//! (Figure 2): HELLO messages maintain group membership, ALIVE messages are
//! simultaneously failure-detector heartbeats and election-algorithm
//! payloads, and ACCUSE messages implement the accusation mechanism of the
//! Ωl/Ωlc algorithms. Every message reports its encoded size so the
//! simulator can account network bandwidth exactly (Figure 6).

use sle_election::AlivePayload;
use sle_sim::actor::WireSize;
use sle_sim::time::{SimDuration, SimInstant};

use crate::process::{GroupId, ProcessId};

/// Heartbeat/bookkeeping fields shared by ALIVE messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AliveHeader {
    /// The sender's incarnation (bumped every time its workstation recovers).
    pub incarnation: u64,
    /// Per-(group, destination) heartbeat sequence number.
    pub seq: u64,
    /// When the message was sent (sender's clock).
    pub sent_at: SimInstant,
    /// The interval at which the sender is currently emitting ALIVEs for
    /// this group — the monitor uses it to compute the freshness horizon.
    pub sending_interval: SimDuration,
    /// The interval the sender would like the *receiver* to use when sending
    /// ALIVEs back (the output of the sender's FD configurator for the
    /// receiver→sender link).
    pub requested_interval: SimDuration,
}

/// Membership announcement for one group, carried inside HELLO messages.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAnnouncement {
    /// The announced group.
    pub group: GroupId,
    /// The local processes that belong to the group and whether each is a
    /// candidate for its leadership.
    pub processes: Vec<(ProcessId, bool)>,
}

/// A message exchanged between two service instances.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceMessage {
    /// Periodic membership gossip: which local processes belong to which
    /// groups on the sending workstation.
    Hello {
        /// The sender's incarnation.
        incarnation: u64,
        /// When the message was sent.
        sent_at: SimInstant,
        /// One announcement per group the sender participates in.
        announcements: Vec<GroupAnnouncement>,
    },
    /// Failure-detector heartbeat plus election payload for one group.
    Alive {
        /// The group this ALIVE belongs to.
        group: GroupId,
        /// Heartbeat header.
        header: AliveHeader,
        /// Election-algorithm payload (accusation time, epoch, forwarding).
        payload: AlivePayload,
        /// The process that would become leader if this node wins the
        /// election (its representative candidate).
        representative: ProcessId,
    },
    /// Accusation: "I believe you crashed" (paper Sections 6.3/6.4).
    Accuse {
        /// The group in which the suspicion arose.
        group: GroupId,
        /// The accused node's epoch as last seen by the accuser.
        epoch: u64,
    },
    /// Explicit withdrawal of a process from a group.
    Leave {
        /// The group being left.
        group: GroupId,
        /// The leaving process.
        process: ProcessId,
    },
}

impl ServiceMessage {
    /// The group this message concerns, if any (HELLOs concern several).
    pub fn group(&self) -> Option<GroupId> {
        match self {
            ServiceMessage::Hello { .. } => None,
            ServiceMessage::Alive { group, .. }
            | ServiceMessage::Accuse { group, .. }
            | ServiceMessage::Leave { group, .. } => Some(*group),
        }
    }

    /// True for ALIVE messages.
    pub fn is_alive(&self) -> bool {
        matches!(self, ServiceMessage::Alive { .. })
    }
}

impl WireSize for ServiceMessage {
    fn wire_size(&self) -> usize {
        // Sizes follow a straightforward binary encoding: fixed-width
        // integers and timestamps, one byte per message/option tag.
        match self {
            ServiceMessage::Hello { announcements, .. } => {
                // tag + incarnation + sent_at + count
                1 + 8
                    + 8
                    + 2
                    + announcements
                        .iter()
                        .map(|a| 4 + 2 + a.processes.len() * (8 + 1))
                        .sum::<usize>()
            }
            ServiceMessage::Alive { payload, .. } => {
                // tag + group + header (incarnation, seq, sent_at, sending,
                // requested) + representative + payload
                1 + 4 + (8 + 8 + 8 + 8 + 8) + 8 + payload.wire_size()
            }
            ServiceMessage::Accuse { .. } => 1 + 4 + 8,
            ServiceMessage::Leave { .. } => 1 + 4 + 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::NodeId;

    fn sample_alive() -> ServiceMessage {
        ServiceMessage::Alive {
            group: GroupId(1),
            header: AliveHeader {
                incarnation: 0,
                seq: 42,
                sent_at: SimInstant::ZERO,
                sending_interval: SimDuration::from_millis(250),
                requested_interval: SimDuration::from_millis(250),
            },
            payload: AlivePayload {
                accusation_time: SimInstant::ZERO,
                epoch: 0,
                local_leader: None,
            },
            representative: ProcessId::new(NodeId(0), 0),
        }
    }

    #[test]
    fn alive_wire_size_is_stable() {
        let msg = sample_alive();
        assert_eq!(msg.wire_size(), 1 + 4 + 40 + 8 + 17);
        assert!(msg.is_alive());
        assert_eq!(msg.group(), Some(GroupId(1)));
    }

    #[test]
    fn hello_wire_size_scales_with_announcements() {
        let empty = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements: Vec::new(),
        };
        let with_group = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements: vec![GroupAnnouncement {
                group: GroupId(1),
                processes: vec![(ProcessId::new(NodeId(0), 0), true)],
            }],
        };
        assert_eq!(empty.wire_size(), 19);
        assert_eq!(with_group.wire_size(), 19 + 4 + 2 + 9);
        assert_eq!(empty.group(), None);
        assert!(!empty.is_alive());
    }

    #[test]
    fn control_messages_are_small() {
        let accuse = ServiceMessage::Accuse {
            group: GroupId(3),
            epoch: 9,
        };
        let leave = ServiceMessage::Leave {
            group: GroupId(3),
            process: ProcessId::new(NodeId(1), 0),
        };
        assert_eq!(accuse.wire_size(), 13);
        assert_eq!(leave.wire_size(), 13);
        assert_eq!(accuse.group(), Some(GroupId(3)));
        assert_eq!(leave.group(), Some(GroupId(3)));
    }
}
