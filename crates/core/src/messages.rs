//! The wire protocol spoken between service instances.
//!
//! Three message families exist, mirroring the paper's architecture
//! (Figure 2): HELLO messages maintain group membership, ALIVE messages are
//! simultaneously failure-detector heartbeats and election-algorithm
//! payloads, and ACCUSE messages implement the accusation mechanism of the
//! Ωl/Ωlc algorithms. Every message reports its encoded size so the
//! simulator can account network bandwidth exactly (Figure 6).

use std::sync::Arc;

use sle_election::AlivePayload;
use sle_sim::actor::WireSize;
use sle_sim::time::{SimDuration, SimInstant};

use crate::lease::FencingToken;
use crate::process::{GroupId, ProcessId};

/// Heartbeat/bookkeeping fields shared by ALIVE messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AliveHeader {
    /// The sender's incarnation (bumped every time its workstation recovers).
    pub incarnation: u64,
    /// Per-(group, destination) heartbeat sequence number.
    pub seq: u64,
    /// When the message was sent (sender's clock).
    pub sent_at: SimInstant,
    /// The interval at which the sender is currently emitting ALIVEs for
    /// this group — the monitor uses it to compute the freshness horizon.
    pub sending_interval: SimDuration,
    /// The interval the sender would like the *receiver* to use when sending
    /// ALIVEs back (the output of the sender's FD configurator for the
    /// receiver→sender link).
    pub requested_interval: SimDuration,
}

/// Membership announcement for one group, carried inside HELLO messages.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAnnouncement {
    /// The announced group.
    pub group: GroupId,
    /// The local processes that belong to the group and whether each is a
    /// candidate for its leadership.
    pub processes: Vec<(ProcessId, bool)>,
}

/// One group's share of a batched ALIVE datagram: everything that varies
/// per group when a workstation fans its heartbeats out to a peer.
///
/// The fields common to every group — the sender's incarnation, the
/// node-level heartbeat sequence number and the send timestamp — are hoisted
/// into the [`ServiceMessage::AliveBatch`] envelope, which is where the
/// bandwidth saving over one [`ServiceMessage::Alive`] per group comes from.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupAlive {
    /// The group this entry belongs to.
    pub group: GroupId,
    /// The interval at which the sender currently emits ALIVEs for this
    /// group.
    pub sending_interval: SimDuration,
    /// The interval the sender would like the receiver to use towards it
    /// for this group.
    pub requested_interval: SimDuration,
    /// Election-algorithm payload for this group.
    pub payload: AlivePayload,
    /// The sender's representative candidate process in this group.
    pub representative: ProcessId,
}

impl GroupAlive {
    /// Encoded size of one batch entry.
    pub fn wire_size(&self) -> usize {
        // group + sending + requested + representative + payload
        4 + 8 + 8 + 8 + self.payload.wire_size()
    }
}

/// A message exchanged between two service instances.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceMessage {
    /// Periodic membership gossip: which local processes belong to which
    /// groups on the sending workstation.
    Hello {
        /// The sender's incarnation.
        incarnation: u64,
        /// When the message was sent.
        sent_at: SimInstant,
        /// One announcement per group the sender participates in. Shared:
        /// the same HELLO body fans out to every peer, so cloning the
        /// message per destination bumps a refcount instead of deep-copying
        /// one announcement (plus process list) per group.
        announcements: Arc<[GroupAnnouncement]>,
    },
    /// Failure-detector heartbeat plus election payload for one group.
    Alive {
        /// The group this ALIVE belongs to.
        group: GroupId,
        /// Heartbeat header.
        header: AliveHeader,
        /// Election-algorithm payload (accusation time, epoch, forwarding).
        payload: AlivePayload,
        /// The process that would become leader if this node wins the
        /// election (its representative candidate).
        representative: ProcessId,
    },
    /// Heartbeats + election payloads for *several* groups, coalesced into
    /// one datagram by the per-node ALIVE tick (the scale-out form of
    /// [`ServiceMessage::Alive`]: a workstation sharing many groups with a
    /// peer pays the header once per interval instead of once per group).
    AliveBatch {
        /// The sender's incarnation.
        incarnation: u64,
        /// Node-level per-destination heartbeat sequence number (shared by
        /// every entry: one datagram, one point on the link's loss/delay
        /// record).
        seq: u64,
        /// When the datagram was sent.
        sent_at: SimInstant,
        /// One entry per group, in group order.
        alives: Vec<GroupAlive>,
    },
    /// Accusation: "I believe you crashed" (paper Sections 6.3/6.4).
    Accuse {
        /// The group in which the suspicion arose.
        group: GroupId,
        /// The accused node's epoch as last seen by the accuser.
        epoch: u64,
    },
    /// Explicit withdrawal of a process from a group.
    Leave {
        /// The group being left.
        group: GroupId,
        /// The leaving process.
        process: ProcessId,
    },
    /// The current leader's lease broadcast: the fencing token of its
    /// leadership term and how long the lease is valid from receipt.
    /// Followers feed the token to their installed [`crate::lease::FencedApp`]
    /// so a deposed leader's delayed writes are fenced out even before the
    /// new leader's first write arrives.
    LeaseGrant {
        /// The group the lease is for.
        group: GroupId,
        /// The fencing token of the granting leader's current term.
        token: FencingToken,
        /// Validity window from receipt (the group's T_D bound).
        valid_for: SimDuration,
    },
    /// A client-tier request: apply `payload` to the group's fenced state
    /// machine. Sent by `sle-app` client sessions to the node they believe
    /// leads the group.
    ClientRequest {
        /// The group whose state machine is addressed.
        group: GroupId,
        /// The client session the request belongs to.
        session: u64,
        /// The request's sequence number within its session.
        seq: u64,
        /// The operation operand (for the fenced counter: the increment).
        payload: u64,
    },
    /// The leader's answer to a [`ServiceMessage::ClientRequest`] it was
    /// able to serve under a valid lease.
    ClientReply {
        /// The group the request addressed.
        group: GroupId,
        /// Echo of the request's session.
        session: u64,
        /// Echo of the request's sequence number.
        seq: u64,
        /// Whether the state machine applied the write (false: the fencing
        /// check rejected it).
        applied: bool,
        /// The state machine's value after (or at rejection of) the request.
        value: u64,
        /// The fencing token the request was applied under.
        token: FencingToken,
    },
    /// "Not the leader": the polite answer of a node that cannot serve a
    /// [`ServiceMessage::ClientRequest`], carrying its current leader view
    /// so the client can re-route.
    Redirect {
        /// The group the request addressed.
        group: GroupId,
        /// Echo of the request's session.
        session: u64,
        /// Echo of the request's sequence number.
        seq: u64,
        /// The responding node's current view of the group's leader.
        leader: Option<ProcessId>,
    },
}

impl ServiceMessage {
    /// The group this message concerns, if any (HELLOs concern several).
    pub fn group(&self) -> Option<GroupId> {
        match self {
            ServiceMessage::Hello { .. } | ServiceMessage::AliveBatch { .. } => None,
            ServiceMessage::Alive { group, .. }
            | ServiceMessage::Accuse { group, .. }
            | ServiceMessage::Leave { group, .. }
            | ServiceMessage::LeaseGrant { group, .. }
            | ServiceMessage::ClientRequest { group, .. }
            | ServiceMessage::ClientReply { group, .. }
            | ServiceMessage::Redirect { group, .. } => Some(*group),
        }
    }

    /// True for ALIVE messages (single-group or batched).
    pub fn is_alive(&self) -> bool {
        matches!(
            self,
            ServiceMessage::Alive { .. } | ServiceMessage::AliveBatch { .. }
        )
    }

    /// Number of per-group ALIVE payloads this message carries.
    pub fn alive_payloads(&self) -> usize {
        match self {
            ServiceMessage::Alive { .. } => 1,
            ServiceMessage::AliveBatch { alives, .. } => alives.len(),
            _ => 0,
        }
    }
}

impl WireSize for ServiceMessage {
    fn wire_size(&self) -> usize {
        // Sizes follow a straightforward binary encoding: fixed-width
        // integers and timestamps, one byte per message/option tag.
        match self {
            ServiceMessage::Hello { announcements, .. } => {
                // tag + incarnation + sent_at + count
                1 + 8
                    + 8
                    + 2
                    + announcements
                        .iter()
                        .map(|a| 4 + 2 + a.processes.len() * (8 + 1))
                        .sum::<usize>()
            }
            ServiceMessage::Alive { payload, .. } => {
                // tag + group + header (incarnation, seq, sent_at, sending,
                // requested) + representative + payload
                1 + 4 + (8 + 8 + 8 + 8 + 8) + 8 + payload.wire_size()
            }
            ServiceMessage::AliveBatch { alives, .. } => {
                // tag + incarnation + seq + sent_at + count
                1 + 8 + 8 + 8 + 2 + alives.iter().map(GroupAlive::wire_size).sum::<usize>()
            }
            ServiceMessage::Accuse { .. } => 1 + 4 + 8,
            ServiceMessage::Leave { .. } => 1 + 4 + 8,
            ServiceMessage::LeaseGrant { .. } => {
                // tag + group + token + valid_for
                1 + 4 + FencingToken::WIRE_SIZE + 8
            }
            ServiceMessage::ClientRequest { .. } => {
                // tag + group + session + seq + payload
                1 + 4 + 8 + 8 + 8
            }
            ServiceMessage::ClientReply { .. } => {
                // tag + group + session + seq + applied + value + token
                1 + 4 + 8 + 8 + 1 + 8 + FencingToken::WIRE_SIZE
            }
            ServiceMessage::Redirect { leader, .. } => {
                // tag + group + session + seq + option tag (+ process)
                1 + 4 + 8 + 8 + 1 + if leader.is_some() { 8 } else { 0 }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::NodeId;

    fn sample_alive() -> ServiceMessage {
        ServiceMessage::Alive {
            group: GroupId(1),
            header: AliveHeader {
                incarnation: 0,
                seq: 42,
                sent_at: SimInstant::ZERO,
                sending_interval: SimDuration::from_millis(250),
                requested_interval: SimDuration::from_millis(250),
            },
            payload: AlivePayload {
                accusation_time: SimInstant::ZERO,
                epoch: 0,
                local_leader: None,
            },
            representative: ProcessId::new(NodeId(0), 0),
        }
    }

    #[test]
    fn alive_wire_size_is_stable() {
        let msg = sample_alive();
        assert_eq!(msg.wire_size(), 1 + 4 + 40 + 8 + 17);
        assert!(msg.is_alive());
        assert_eq!(msg.group(), Some(GroupId(1)));
    }

    #[test]
    fn hello_wire_size_scales_with_announcements() {
        let empty = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements: Arc::from([]),
        };
        let with_group = ServiceMessage::Hello {
            incarnation: 0,
            sent_at: SimInstant::ZERO,
            announcements: Arc::from([GroupAnnouncement {
                group: GroupId(1),
                processes: vec![(ProcessId::new(NodeId(0), 0), true)],
            }]),
        };
        assert_eq!(empty.wire_size(), 19);
        assert_eq!(with_group.wire_size(), 19 + 4 + 2 + 9);
        assert_eq!(empty.group(), None);
        assert!(!empty.is_alive());
    }

    #[test]
    fn batched_alives_amortise_the_header() {
        let entry = GroupAlive {
            group: GroupId(1),
            sending_interval: SimDuration::from_millis(250),
            requested_interval: SimDuration::from_millis(250),
            payload: AlivePayload {
                accusation_time: SimInstant::ZERO,
                epoch: 0,
                local_leader: None,
            },
            representative: ProcessId::new(NodeId(0), 0),
        };
        assert_eq!(entry.wire_size(), 4 + 8 + 8 + 8 + 17);
        let batch = |n: usize| ServiceMessage::AliveBatch {
            incarnation: 0,
            seq: 1,
            sent_at: SimInstant::ZERO,
            alives: vec![entry.clone(); n],
        };
        assert_eq!(batch(0).wire_size(), 27);
        assert_eq!(batch(3).wire_size(), 27 + 3 * 45);
        // Three groups batched beat three single ALIVEs (70 bytes each).
        assert!(batch(3).wire_size() < 3 * sample_alive().wire_size());
        assert!(batch(2).is_alive());
        assert_eq!(batch(2).group(), None);
        assert_eq!(batch(2).alive_payloads(), 2);
        assert_eq!(sample_alive().alive_payloads(), 1);
    }

    #[test]
    fn client_tier_wire_sizes_are_stable() {
        let token = FencingToken {
            accusation_time: SimInstant::ZERO,
            node: NodeId(1),
            epoch: 3,
            incarnation: 1,
        };
        let grant = ServiceMessage::LeaseGrant {
            group: GroupId(2),
            token,
            valid_for: SimDuration::from_millis(250),
        };
        assert_eq!(grant.wire_size(), 1 + 4 + 28 + 8);
        assert_eq!(grant.group(), Some(GroupId(2)));
        let request = ServiceMessage::ClientRequest {
            group: GroupId(2),
            session: 7,
            seq: 1,
            payload: 1,
        };
        assert_eq!(request.wire_size(), 29);
        assert_eq!(request.alive_payloads(), 0);
        assert!(!request.is_alive());
        let reply = ServiceMessage::ClientReply {
            group: GroupId(2),
            session: 7,
            seq: 1,
            applied: true,
            value: 41,
            token,
        };
        assert_eq!(reply.wire_size(), 58);
        let redirect_none = ServiceMessage::Redirect {
            group: GroupId(2),
            session: 7,
            seq: 1,
            leader: None,
        };
        let redirect_some = ServiceMessage::Redirect {
            group: GroupId(2),
            session: 7,
            seq: 1,
            leader: Some(ProcessId::new(NodeId(3), 0)),
        };
        assert_eq!(redirect_none.wire_size(), 22);
        assert_eq!(redirect_some.wire_size(), 30);
        assert_eq!(redirect_some.group(), Some(GroupId(2)));
    }

    #[test]
    fn control_messages_are_small() {
        let accuse = ServiceMessage::Accuse {
            group: GroupId(3),
            epoch: 9,
        };
        let leave = ServiceMessage::Leave {
            group: GroupId(3),
            process: ProcessId::new(NodeId(1), 0),
        };
        assert_eq!(accuse.wire_size(), 13);
        assert_eq!(leave.wire_size(), 13);
        assert_eq!(accuse.group(), Some(GroupId(3)));
        assert_eq!(leave.group(), Some(GroupId(3)));
    }
}
