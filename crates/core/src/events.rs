//! Application-facing events raised by the service.

use crate::process::{GroupId, ProcessId};

/// An event raised by a service instance towards the applications registered
/// with it (the paper's "interrupt" notification style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceEvent {
    /// The leader of `group`, as seen by this service instance, changed.
    ///
    /// `leader` is `None` when the group currently has no leader from this
    /// node's point of view (e.g. right after the previous leader was
    /// suspected and before a new one was agreed upon).
    LeaderChanged {
        /// The group whose leader changed.
        group: GroupId,
        /// The new leader, if any.
        leader: Option<ProcessId>,
    },
}

impl ServiceEvent {
    /// The group this event concerns.
    pub fn group(&self) -> GroupId {
        match self {
            ServiceEvent::LeaderChanged { group, .. } => *group,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sle_sim::actor::NodeId;

    #[test]
    fn accessors() {
        let event = ServiceEvent::LeaderChanged {
            group: GroupId(4),
            leader: Some(ProcessId::new(NodeId(1), 0)),
        };
        assert_eq!(event.group(), GroupId(4));
    }
}
